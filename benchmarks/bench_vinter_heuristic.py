"""Ablation: the Vinter-style recovery-read heuristic (section 6.2).

The paper suggests Chipmunk "could incorporate this heuristic by recording
PM read functions".  This bench does so and measures its value: for each
mid-syscall bug, how many crash states does a campaign check before the
first report, with plain subset ordering vs recovery-read-ranked ordering?
The heuristic front-loads states whose in-flight writes recovery actually
observes, so it should reach the bug in no more states — usually fewer.
"""

from conftest import print_table, run_once

from repro.analysis.bugdb import TRIGGERS
from repro.core.checker import CheckerConfig, ConsistencyChecker
from repro.core.harness import Chipmunk, ChipmunkConfig
from repro.core.oracle import run_oracle
from repro.core.recovery_reads import rank_units, recovery_read_set
from repro.core.replayer import enumerate_crash_states
from repro.fs.bugs import BUG_REGISTRY, BugConfig

BUGS_TO_TEST = [3, 4, 5, 6, 7, 10, 13, 19, 22]


def _states_to_first_report(fs_name, bug_id, use_heuristic):
    bugs = BugConfig.only(bug_id)
    cm = Chipmunk(fs_name, bugs=bugs, config=ChipmunkConfig(cap=2))
    best = None
    for workload in TRIGGERS[bug_id]:
        base, log, _ = cm.record(workload)
        oracle = run_oracle(cm.fs_class, workload, cm.config.device_size, bugs=bugs)
        checker = ConsistencyChecker(
            cm.fs_class, oracle, "ablation", bugs=bugs, config=CheckerConfig()
        )
        ranker = None
        if use_heuristic:
            read_lines = recovery_read_set(cm.fs_class, base, bugs=bugs)
            ranker = lambda units: rank_units(units, read_lines)  # noqa: E731
        checked = 0
        for state in enumerate_crash_states(base, log, cap=2, unit_ranker=ranker):
            checked += 1
            if checker.check(state):
                best = checked if best is None else min(best, checked)
                break
        if best is not None:
            break
    return best


def _run():
    rows = []
    for bug_id in BUGS_TO_TEST:
        fs_name = BUG_REGISTRY[bug_id].filesystems[0]
        plain = _states_to_first_report(fs_name, bug_id, use_heuristic=False)
        ranked = _states_to_first_report(fs_name, bug_id, use_heuristic=True)
        rows.append((bug_id, fs_name, plain, ranked))
    return rows


def test_vinter_heuristic_ablation(benchmark):
    rows = run_once(benchmark, _run)
    print_table(
        "Recovery-read heuristic ablation — crash states checked before the "
        "first report",
        ["bug", "fs", "plain ordering", "recovery-read ranked"],
        rows,
    )
    # The heuristic must never lose a detection, and should help on average.
    assert all(r[2] is not None and r[3] is not None for r in rows)
    plain_total = sum(r[2] for r in rows)
    ranked_total = sum(r[3] for r in rows)
    print(f"total states to first report: plain={plain_total}, ranked={ranked_total}")
    assert ranked_total <= plain_total * 1.2
