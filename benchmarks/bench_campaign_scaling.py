"""Campaign engine scaling: parallel workers vs the serial pipeline.

The paper's 50k-workload seq-3 campaign was split across ten VMs
(section 4.2); ``repro.campaign`` replays that scale-out pattern with a
local worker pool.  This bench runs the same seq-2 slice serially and
through the engine at increasing worker counts, prints the scaling table,
and — always — checks the parallel runs reproduce the serial bug set
exactly (the engine's core correctness contract).

Speedup is asserted only when the host actually has spare cores: on a
single-CPU container the workers time-slice one core and parallel wall
clock can only match (or slightly trail) serial, which the table then
documents instead.
"""

import itertools
import os
import time

from conftest import print_table, run_once

from repro.analysis.reporting import CampaignSummary
from repro.campaign import CampaignEngine, CampaignSpec, EngineConfig
from repro.workloads import ace

#: ACE workloads per sequence length (seq 1..2): 55 + 120 = 175 workloads,
#: a few seconds of serial wall clock — enough for scheduling overheads to
#: amortize without making the bench slow.
MAX_WORKLOADS = 120
WORKER_COUNTS = (2, 4)


def _fingerprint(clusters):
    return sorted(
        (c.exemplar.consequence.name, c.exemplar.detail, c.count)
        for c in clusters
    )


def _serial_run(spec):
    chipmunk = spec.build_chipmunk()
    summary = CampaignSummary(fs_name=spec.fs, generator="ace")
    for seq in range(1, spec.seq + 1):
        total = min(ace.count(seq), spec.max_workloads)
        for w in itertools.islice(ace.generate(seq, mode=spec.mode), total):
            summary.add_result(chipmunk.test_workload(w.core, setup=w.setup))
    return summary


def test_bench_campaign_scaling(benchmark, tmp_path):
    """Serial vs ``--workers N`` wall clock on a seq-2 slice."""
    spec = CampaignSpec(fs="nova", seq=2, max_workloads=MAX_WORKLOADS)
    cpus = os.cpu_count() or 1

    def experiment():
        start = time.perf_counter()
        serial_summary = _serial_run(spec)
        serial_wall = time.perf_counter() - start

        parallel = []
        for workers in WORKER_COUNTS:
            start = time.perf_counter()
            merged = CampaignEngine(
                spec, str(tmp_path / f"workers-{workers}"),
                EngineConfig(workers=workers),
            ).run()
            wall = time.perf_counter() - start
            parallel.append((workers, wall, merged))
        return serial_summary, serial_wall, parallel

    serial_summary, serial_wall, parallel = run_once(benchmark, experiment)

    rows = [("serial", f"{serial_wall:.2f}", "1.00x", "-", "-")]
    for workers, wall, merged in parallel:
        rows.append((
            f"{workers} workers",
            f"{wall:.2f}",
            f"{serial_wall / wall:.2f}x",
            str(merged.engine["steals"]),
            str(merged.engine["requeues"]),
        ))
    print_table(
        f"Campaign scaling: nova seq-2 slice, "
        f"{serial_summary.workloads_tested} workloads ({cpus} CPU(s))",
        ("configuration", "wall (s)", "speedup", "steals", "requeues"),
        rows,
    )

    best_speedup = max(serial_wall / wall for _, wall, _ in parallel)

    # Ledger append happens before the assertions so a failing gate still
    # leaves the run's numbers in the history.
    from repro.obs.history import append_record

    metrics = {
        "workloads": serial_summary.workloads_tested,
        "serial_seconds": serial_wall,
        "best_speedup": best_speedup,
    }
    for workers, wall, _ in parallel:
        metrics[f"workers_{workers}_seconds"] = wall
    append_record(
        "BENCH_history.jsonl", "campaign_scaling", metrics,
        config={"cpus": cpus, "max_workloads": MAX_WORKLOADS,
                "worker_counts": list(WORKER_COUNTS)},
    )

    # Correctness is unconditional: every worker count must reproduce the
    # serial bug set, workload-for-workload.
    serial_fp = _fingerprint(serial_summary.clusters)
    for workers, _, merged in parallel:
        assert merged.summary.workloads_tested == serial_summary.workloads_tested
        assert _fingerprint(merged.clusters) == serial_fp, (
            f"{workers}-worker campaign diverged from the serial bug set"
        )
        assert not merged.quarantined

    # Speedup is conditional on real parallelism being available.
    if cpus >= 4:
        assert best_speedup >= 2.0, (
            f"expected >=2x speedup with {cpus} CPUs, got {best_speedup:.2f}x"
        )
    elif cpus >= 2:
        assert best_speedup >= 1.2, (
            f"expected >=1.2x speedup with {cpus} CPUs, got {best_speedup:.2f}x"
        )
    else:
        # Single CPU: workers only time-slice; just make sure the engine's
        # overhead is bounded rather than pathological.
        assert best_speedup >= 0.5, (
            f"parallel overhead pathological on 1 CPU: {best_speedup:.2f}x"
        )
