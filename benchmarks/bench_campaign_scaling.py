"""Campaign engine scaling: parallel workers vs the serial pipeline.

The paper's 50k-workload seq-3 campaign was split across ten VMs
(section 4.2); ``repro.campaign`` replays that scale-out pattern with a
local worker pool.  This bench runs the same seq-2 slice serially and
through the engine at increasing worker counts, prints the scaling table,
and — always — checks the parallel runs reproduce the serial bug set
exactly (the engine's core correctness contract).

Speedup is asserted only when the host actually has spare cores: on a
single-CPU container the workers time-slice one core and parallel wall
clock can only match (or slightly trail) serial, which the table then
documents instead.
"""

import itertools
import os
import time

from conftest import print_table, run_once

from repro.analysis.reporting import CampaignSummary
from repro.campaign import CampaignEngine, CampaignSpec, EngineConfig
from repro.workloads import ace

#: ACE workloads per sequence length (seq 1..2): 55 + 120 = 175 workloads,
#: a few seconds of serial wall clock — enough for scheduling overheads to
#: amortize without making the bench slow.
MAX_WORKLOADS = 120
WORKER_COUNTS = (2, 4)


def _fingerprint(clusters):
    return sorted(
        (c.exemplar.consequence.name, c.exemplar.detail, c.count)
        for c in clusters
    )


def _serial_run(spec):
    chipmunk = spec.build_chipmunk()
    summary = CampaignSummary(fs_name=spec.fs, generator="ace")
    for seq in range(1, spec.seq + 1):
        total = min(ace.count(seq), spec.max_workloads)
        for w in itertools.islice(ace.generate(seq, mode=spec.mode), total):
            summary.add_result(chipmunk.test_workload(w.core, setup=w.setup))
    return summary


def test_bench_campaign_scaling(benchmark, tmp_path):
    """Serial vs ``--workers N`` wall clock on a seq-2 slice."""
    spec = CampaignSpec(fs="nova", seq=2, max_workloads=MAX_WORKLOADS)
    cpus = os.cpu_count() or 1

    def experiment():
        start = time.perf_counter()
        serial_summary = _serial_run(spec)
        serial_wall = time.perf_counter() - start

        parallel = []
        for workers in WORKER_COUNTS:
            start = time.perf_counter()
            merged = CampaignEngine(
                spec, str(tmp_path / f"workers-{workers}"),
                EngineConfig(workers=workers),
            ).run()
            wall = time.perf_counter() - start
            parallel.append((workers, wall, merged))
        return serial_summary, serial_wall, parallel

    serial_summary, serial_wall, parallel = run_once(benchmark, experiment)

    rows = [("serial", f"{serial_wall:.2f}", "1.00x", "-", "-")]
    for workers, wall, merged in parallel:
        rows.append((
            f"{workers} workers",
            f"{wall:.2f}",
            f"{serial_wall / wall:.2f}x",
            str(merged.engine["steals"]),
            str(merged.engine["requeues"]),
        ))
    print_table(
        f"Campaign scaling: nova seq-2 slice, "
        f"{serial_summary.workloads_tested} workloads ({cpus} CPU(s))",
        ("configuration", "wall (s)", "speedup", "steals", "requeues"),
        rows,
    )

    best_speedup = max(serial_wall / wall for _, wall, _ in parallel)

    # Ledger append happens before the assertions so a failing gate still
    # leaves the run's numbers in the history.
    from repro.obs.history import append_record

    metrics = {
        "workloads": serial_summary.workloads_tested,
        "serial_seconds": serial_wall,
        "best_speedup": best_speedup,
    }
    for workers, wall, _ in parallel:
        metrics[f"workers_{workers}_seconds"] = wall
    append_record(
        "BENCH_history.jsonl", "campaign_scaling", metrics,
        config={"cpus": cpus, "max_workloads": MAX_WORKLOADS,
                "worker_counts": list(WORKER_COUNTS)},
    )

    # Correctness is unconditional: every worker count must reproduce the
    # serial bug set, workload-for-workload.
    serial_fp = _fingerprint(serial_summary.clusters)
    for workers, _, merged in parallel:
        assert merged.summary.workloads_tested == serial_summary.workloads_tested
        assert _fingerprint(merged.clusters) == serial_fp, (
            f"{workers}-worker campaign diverged from the serial bug set"
        )
        assert not merged.quarantined

    # Speedup is conditional on real parallelism being available.
    if cpus >= 4:
        assert best_speedup >= 2.0, (
            f"expected >=2x speedup with {cpus} CPUs, got {best_speedup:.2f}x"
        )
    elif cpus >= 2:
        assert best_speedup >= 1.2, (
            f"expected >=1.2x speedup with {cpus} CPUs, got {best_speedup:.2f}x"
        )
    else:
        # Single CPU: workers only time-slice; just make sure the engine's
        # overhead is bounded rather than pathological.
        assert best_speedup >= 0.5, (
            f"parallel overhead pathological on 1 CPU: {best_speedup:.2f}x"
        )


#: Workloads per sequence length for the shared-memo bench.  Cross-workload
#: redundancy grows with the seq-2 slice (more workloads sharing each
#: first-op prefix), and 240 puts the measured hit-rate comfortably over
#: the acceptance floor (41.2–41.4% across trials) at ~6s per campaign.
SHARED_MAX_WORKLOADS = 240


def _tranche_hit_rates(campaign_dir):
    """(hit-rate, shared hits) per ``seq`` tranche, from the journal.

    The overall campaign hit-rate under-reports what the shared service
    does, because the seq-1 tranche is cross-workload-disjoint *by
    construction* (each workload is one distinct op, so no two workloads
    produce the same state under the same expectations) and dilutes the
    average.  The seq-2 tranche — workloads with shared multi-op prefixes
    — is where the ISSUE's redundancy claim lives, so it is measured
    separately.
    """
    from repro.campaign.journal import CheckpointJournal

    state = CheckpointJournal.replay(str(campaign_dir))
    tranches = {}
    for item_id, results in state.results.items():
        seq = item_id.split(":")[1] if item_id.startswith("ace:") else "?"
        hits, misses, shared = tranches.setdefault(seq, [0, 0, 0])
        for fields in results:
            hits += int(fields.get("memo_hits", 0))
            misses += int(fields.get("memo_misses", 0))
            shared += int(fields.get("memo_shared_hits", 0))
        tranches[seq] = [hits, misses, shared]
    return {
        seq: (h / (h + m) if h + m else 0.0, s)
        for seq, (h, m, s) in tranches.items()
    }


def test_bench_shared_memo(benchmark, tmp_path):
    """Campaign-wide shared check memo: hit-rate and throughput vs local-only.

    Per-workload memos can only dedup *inside* one workload; the redundancy
    across ACE workloads (shared multi-op prefixes produce byte-identical
    crash states under identical oracle expectations) is only reachable
    through the shared service.  This bench runs the same seq-1..2 slice at
    ``--workers 4`` with the service off and on, prints hit-rate and
    states/sec, and gates on the ISSUE's acceptance numbers: on the
    redundancy-bearing seq-2 tranche the service must lift the hit-rate
    from the local-only baseline (~13%) to >=40%, without touching the
    bug set.
    """
    cpus = os.cpu_count() or 1
    workers = 4

    def one_campaign(shared):
        spec = CampaignSpec(
            fs="nova", seq=2, max_workloads=SHARED_MAX_WORKLOADS,
            shared_memo=shared,
        )
        path = tmp_path / ("shared-on" if shared else "shared-off")
        start = time.perf_counter()
        merged = CampaignEngine(
            spec, str(path), EngineConfig(workers=workers),
        ).run()
        return merged, time.perf_counter() - start, path

    def experiment():
        return one_campaign(False), one_campaign(True)

    (off, off_wall, off_dir), (on, on_wall, on_dir) = run_once(
        benchmark, experiment
    )

    def overall_rate(merged):
        s = merged.summary
        total = s.memo_hits + s.memo_misses
        return s.memo_hits / total if total else 0.0

    def states_per_sec(merged, wall):
        return merged.summary.crash_states / wall if wall > 0 else 0.0

    off_seq2, _ = _tranche_hit_rates(off_dir).get("2", (0.0, 0))
    on_seq2, on_seq2_shared = _tranche_hit_rates(on_dir).get("2", (0.0, 0))

    rows = []
    for label, merged, wall, seq2 in (
        ("local-only", off, off_wall, off_seq2),
        ("shared", on, on_wall, on_seq2),
    ):
        rows.append((
            label,
            f"{wall:.2f}",
            f"{overall_rate(merged) * 100:.1f}%",
            f"{seq2 * 100:.1f}%",
            str(merged.summary.memo_shared_hits),
            f"{states_per_sec(merged, wall):.0f}",
        ))
    print_table(
        f"Shared check memo: nova seq-1..2 slice, "
        f"{on.summary.workloads_tested} workloads, "
        f"{workers} workers ({cpus} CPU(s))",
        ("memo", "wall (s)", "hit-rate", "seq-2 rate", "shared hits",
         "states/s"),
        rows,
    )

    from repro.obs.history import append_record

    append_record(
        "BENCH_history.jsonl", "campaign_shared_memo",
        {
            "workloads": on.summary.workloads_tested,
            "off_seconds": off_wall,
            "on_seconds": on_wall,
            "off_hit_rate": overall_rate(off),
            "on_hit_rate": overall_rate(on),
            "off_seq2_hit_rate": off_seq2,
            "on_seq2_hit_rate": on_seq2,
            "shared_hits": on.summary.memo_shared_hits,
            "off_states_per_sec": states_per_sec(off, off_wall),
            "on_states_per_sec": states_per_sec(on, on_wall),
            "service": dict(on.engine.get("shared_memo") or {}),
        },
        config={"cpus": cpus, "max_workloads": SHARED_MAX_WORKLOADS,
                "workers": workers},
    )

    # Correctness first: the service must not change the bug set.
    assert _fingerprint(on.clusters) == _fingerprint(off.clusters), (
        "shared-memo campaign diverged from the local-only bug set"
    )
    assert not on.quarantined and not off.quarantined

    # The local-only baseline has no cross-workload channel at all ...
    assert off.summary.memo_shared_hits == 0
    # ... and the service is what moves the hit-rate on the tranche that
    # carries cross-workload redundancy.
    assert off_seq2 < 0.20, (
        f"local-only seq-2 hit-rate {off_seq2:.1%} — baseline no longer "
        f"cross-workload-starved; recalibrate the bench"
    )
    assert on_seq2 >= 0.40, (
        f"shared seq-2 hit-rate {on_seq2:.1%} < 40% acceptance floor"
    )
    assert on_seq2_shared > 0
    assert on.summary.memo_shared_hits > 0

    # Throughput is conditional on real parallelism, like the scaling
    # bench above: with spare cores a worker's ~40µs lookup round trip
    # overlaps other workers' checking and the skipped checks are pure
    # gain.  On a single CPU the workers time-slice one core, so every
    # round trip is un-hideable scheduling latency — the service still
    # wins the moment checks cost more than lookups (real fs images,
    # higher seq), but this slice's cheap checks can't show it; the gate
    # degrades to bounding the overhead.
    ratio = states_per_sec(on, on_wall) / max(
        states_per_sec(off, off_wall), 1e-9
    )
    if cpus >= 2:
        assert ratio >= 1.05, (
            f"shared memo gave no measurable states/sec gain with "
            f"{cpus} CPUs: {ratio:.2f}x"
        )
    else:
        assert ratio >= 0.60, (
            f"shared-memo overhead pathological on 1 CPU: {ratio:.2f}x"
        )
