"""Figure 3 reproduction: cumulative time to find bugs, ACE vs Syzkaller.

The paper's result has three parts:

* ACE finds the ACE-findable bugs quickly (its first 19 in under 3 CPU
  hours on the real systems);
* the fuzzer is one to two orders of magnitude slower to find the same
  bugs;
* the fuzzer alone finds four extra bugs whose workload shapes ACE omits
  (unaligned sizes/offsets).

This bench measures, per catalogue bug, the CPU time each generator needs
to produce the first report (ACE: streaming seq-1 then seq-2 workloads;
fuzzer: coverage-guided generation), then prints the cumulative
time-ordered series — the textual Figure 3.  Absolute times are meaningless
against the paper's testbed; the *shape* is the reproduction target.
"""

import itertools

import pytest

from conftest import chipmunk_for_bug, print_table, run_once, time_to_find

from repro.fs.bugs import BUG_REGISTRY
from repro.workloads import ace
from repro.workloads.fuzzer import WorkloadFuzzer

#: Budget per (bug, generator); ACE-findable bugs fall well inside it.
ACE_MAX_WORKLOADS = 3200
FUZZ_MAX_EXECUTIONS = 3000
FUZZ_TIME_BUDGET = 240.0

#: One representative file system per bug (the first in its row).
TARGETS = [(spec.bug_id, spec.filesystems[0]) for spec in BUG_REGISTRY.values()]


def _ace_stream():
    return itertools.chain(ace.generate(1), ace.generate(2))


def _run_ace_campaign():
    results = {}
    for bug_id, fs_name in TARGETS:
        cm = chipmunk_for_bug(fs_name, bug_id)
        elapsed, n_workloads = time_to_find(cm, _ace_stream(), ACE_MAX_WORKLOADS)
        results[bug_id] = (elapsed, n_workloads)
    return results


def _run_fuzzer_campaign():
    results = {}
    for bug_id, fs_name in TARGETS:
        cm = chipmunk_for_bug(fs_name, bug_id)
        fuzzer = WorkloadFuzzer(cm, seed=bug_id)
        stats = fuzzer.run(
            max_executions=FUZZ_MAX_EXECUTIONS,
            time_budget=FUZZ_TIME_BUDGET,
            stop_after_clusters=1,
        )
        found = stats.clusters >= 1
        results[bug_id] = (stats.elapsed if found else None, stats.executions)
    return results


@pytest.fixture(scope="module")
def campaigns():
    return {}


def test_fig3_ace_campaign(benchmark, campaigns):
    campaigns["ace"] = run_once(benchmark, _run_ace_campaign)
    found = {b for b, (t, _) in campaigns["ace"].items() if t is not None}
    fuzzer_only = {s.bug_id for s in BUG_REGISTRY.values() if s.fuzzer_only}
    # ACE finds exactly the non-fuzzer-only bugs (19 unique / 21 rows).
    assert found == set(BUG_REGISTRY) - fuzzer_only


def test_fig3_fuzzer_campaign(benchmark, campaigns):
    campaigns["fuzz"] = run_once(benchmark, _run_fuzzer_campaign)
    found = {b for b, (t, _) in campaigns["fuzz"].items() if t is not None}
    # The fuzzer must find every fuzzer-only bug (and most others).
    fuzzer_only = {s.bug_id for s in BUG_REGISTRY.values() if s.fuzzer_only}
    assert fuzzer_only <= found
    assert len(found) >= len(BUG_REGISTRY) - 3  # near-complete coverage
    if "ace" in campaigns:
        _print_series(campaigns)


def _print_series(campaigns):
    ace_results, fuzz_results = campaigns["ace"], campaigns["fuzz"]

    def cumulative(results):
        times = sorted(t for t, _ in results.values() if t is not None)
        return list(itertools.accumulate(times))

    ace_cum, fuzz_cum = cumulative(ace_results), cumulative(fuzz_results)
    rows = []
    for i in range(max(len(ace_cum), len(fuzz_cum))):
        rows.append(
            (
                i + 1,
                f"{ace_cum[i]:8.2f}" if i < len(ace_cum) else "—",
                f"{fuzz_cum[i]:8.2f}" if i < len(fuzz_cum) else "—",
            )
        )
    print_table(
        "Figure 3 — cumulative CPU seconds to find the nth bug",
        ["# bugs found", "ACE (s)", "fuzzer (s)"],
        rows,
    )
    per_bug = [
        (
            b,
            BUG_REGISTRY[b].filesystems[0],
            f"{ace_results[b][0]:.2f}" if ace_results[b][0] is not None else "not found",
            f"{fuzz_results[b][0]:.2f}" if fuzz_results[b][0] is not None else "not found",
            "fuzzer-only" if BUG_REGISTRY[b].fuzzer_only else "",
        )
        for b in sorted(BUG_REGISTRY)
    ]
    print_table(
        "Per-bug time to first report",
        ["bug", "fs", "ACE (s)", "fuzzer (s)", "note"],
        per_bug,
    )

    # Shape assertions (paper section 4.3):
    # 1. ACE finds fewer bugs overall than the fuzzer.
    assert len(ace_cum) < len(fuzz_cum)
    # 2. For the bugs both find, the fuzzer needs substantially more
    #    cumulative CPU time (paper: ~6-20x; we assert >2x).
    common = [
        b
        for b in BUG_REGISTRY
        if ace_results[b][0] is not None and fuzz_results[b][0] is not None
    ]
    ace_total = sum(ace_results[b][0] for b in common)
    fuzz_total = sum(fuzz_results[b][0] for b in common)
    print(
        f"common bugs: {len(common)}; ACE total {ace_total:.1f}s, "
        f"fuzzer total {fuzz_total:.1f}s ({fuzz_total / ace_total:.1f}x slower)"
    )
    assert fuzz_total > 2 * ace_total
