"""Table 2 reproduction: observations and the bugs associated with them.

Prints the paper's observation → bug mapping next to the associations
derived from this reproduction (the registry's machine-readable metadata
plus one measured column: which bugs the post-syscall-only baseline misses,
i.e. which really need mid-syscall crashes here).
"""

from conftest import print_table, run_once

from repro.analysis.bugdb import TRIGGERS
from repro.analysis.observations import PAPER_OBSERVATIONS, derived_associations
from repro.baselines.crashmonkey import CrashMonkeyStyleTester
from repro.fs.bugs import BUG_REGISTRY, BugConfig


def _measure_mid_syscall_set():
    """Bugs the between-syscalls baseline cannot find."""
    missed = set()
    for bug_id, spec in BUG_REGISTRY.items():
        fs_name = spec.filesystems[0]
        tester = CrashMonkeyStyleTester(
            fs_name, bugs=BugConfig.only(bug_id), policy="post"
        )
        if not any(tester.test_workload(w).buggy for w in TRIGGERS[bug_id]):
            missed.add(bug_id)
    return missed


def _fmt(bugs):
    return ",".join(str(b) for b in sorted(bugs)) or "—"


def test_table2_observations(benchmark):
    measured_mid = run_once(benchmark, _measure_mid_syscall_set)
    derived = derived_associations()
    rows = []
    for obs in PAPER_OBSERVATIONS:
        if obs.key == "midsyscall":
            ours = measured_mid
            source = "measured (baseline misses)"
        elif obs.key in derived:
            ours = derived[obs.key]
            source = "registry metadata"
        else:
            ours = obs.paper_bugs
            source = "by construction"
        rows.append((obs.text[:58], _fmt(obs.paper_bugs), _fmt(ours), source))
    print_table(
        "Table 2 — observations and associated bugs (paper vs reproduction)",
        ["observation", "paper bugs", "this repro", "source"],
        rows,
    )

    # Headline claims:
    logic = derived["logic"]
    assert len(logic) == 19, "19 of 23 unique bugs are logic bugs (Obs. 1)"
    # Observation 5's count: the paper says 11 of 23 need mid-syscall
    # crashes; our mechanisms put a comparable majority-of-a-dozen there.
    assert 8 <= len(measured_mid) <= 18, measured_mid
    # Every bug the paper lists as needing mid-syscall crashes is missed by
    # the baseline here too, up to mechanism differences for 9 and 12
    # (whose checksum staleness is visible post-syscall in our build).
    paper_mid = next(o for o in PAPER_OBSERVATIONS if o.key == "midsyscall").paper_bugs
    overlap = measured_mid & paper_mid
    assert len(overlap) >= 8
