"""Micro-benchmarks of the testing machinery itself.

Not a paper table — these keep the harness honest: how fast is one
record/replay/check pipeline, a mount, a crash-state enumeration?  Useful
for spotting performance regressions in the reproduction itself (the paper
makes the same point about Chipmunk being fast enough for developer use).
"""

import pytest

from repro.core import Chipmunk, ChipmunkConfig
from repro.core.replayer import enumerate_crash_states
from repro.fs.bugs import BugConfig
from repro.fs.registry import FS_CLASSES
from repro.pm.device import PMDevice
from repro.workloads.ops import Op

WORKLOAD = [
    Op("mkdir", ("/A",)),
    Op("creat", ("/A/f",)),
    Op("write", ("/A/f", 0, 0x41, 1024)),
    Op("rename", ("/A/f", "/g")),
    Op("truncate", ("/g", 100)),
]


@pytest.mark.parametrize("fs_name", ["nova", "pmfs", "winefs", "splitfs"])
def test_bench_full_pipeline(benchmark, fs_name):
    """One complete Chipmunk test of a 5-op workload."""
    cm = Chipmunk(fs_name, bugs=BugConfig.fixed())
    result = benchmark(cm.test_workload, WORKLOAD)
    assert not result.buggy


@pytest.mark.parametrize("fs_name", ["nova", "nova-fortis", "pmfs", "ext4-dax"])
def test_bench_mount(benchmark, fs_name):
    """Mount-time recovery on a populated image."""
    cls = FS_CLASSES()[fs_name]
    device = PMDevice(256 * 1024)
    fs = cls.mkfs(device, bugs=BugConfig.fixed())
    for i in range(10):
        fs.creat(f"/f{i}")
        fs.write(f"/f{i}", 0, bytes([i]) * 512)
    fs.sync()
    snapshot = device.snapshot()

    def mount():
        return cls.mount(PMDevice.from_snapshot(snapshot), bugs=BugConfig.fixed())

    mounted = benchmark(mount)
    assert len(mounted.readdir("/")) == 10


def test_bench_record(benchmark):
    """Probe-instrumented workload execution."""
    cm = Chipmunk("nova", bugs=BugConfig.fixed())
    base, log, errnos = benchmark(cm.record, WORKLOAD)
    assert errnos == [None] * len(WORKLOAD)
    assert len(log) > 0


def test_bench_enumeration(benchmark):
    """Crash-state construction from a recorded log."""
    cm = Chipmunk("nova", bugs=BugConfig.fixed())
    base, log, _ = cm.record(WORKLOAD)

    def enumerate_all():
        return sum(1 for _ in enumerate_crash_states(base, log, cap=2))

    count = benchmark(enumerate_all)
    assert count > 10


def test_bench_fs_write_throughput(benchmark):
    """Raw simulated-FS write path (no probes).

    A fresh instance per round: NOVA's per-inode log grows with every write
    and this reproduction performs no log garbage collection, so reusing one
    instance across thousands of rounds would exhaust the device.
    """
    cls = FS_CLASSES()["nova"]
    data = bytes(range(256)) * 4

    def make_fs():
        fs = cls.mkfs(PMDevice(1024 * 1024), bugs=BugConfig.fixed())
        fs.creat("/f")
        return (fs,), {}

    def write_loop(fs):
        for offset in range(0, 8192, 1024):
            fs.write("/f", offset, data)

    benchmark.pedantic(write_loop, setup=make_fs, rounds=25)
