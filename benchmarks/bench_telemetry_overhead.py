"""Telemetry overhead on the record/replay/check pipeline.

Policy (DESIGN.md, Observability): telemetry must be pay-for-what-you-use.
With the default null telemetry the pipeline may regress < 10% against the
uninstrumented call shape, and full instrumentation (spans, counters,
device telemetry, trace events) should stay a small fraction of pipeline
time — the work per crash state (mount + walk + compare) dwarfs a span's
two ``perf_counter`` reads.

Measures ``bench_micro``'s 5-op pipeline workload three ways and prints the
comparison table.
"""

import pytest

from conftest import best_of, print_table, run_once

from repro.core import Chipmunk, ChipmunkConfig
from repro.fs.bugs import BugConfig
from repro.obs import NullTelemetry, Telemetry

from bench_micro import WORKLOAD

ROUNDS = 7


def _pipeline(telemetry=None, config=None):
    cm = Chipmunk("nova", bugs=BugConfig.fixed(), telemetry=telemetry,
                  config=config)

    def run():
        result = cm.test_workload(WORKLOAD)
        assert not result.buggy

    return run


def test_bench_telemetry_overhead(benchmark):
    """Instrumented vs null-telemetry pipeline cost."""

    def experiment():
        baseline = best_of(_pipeline(), rounds=ROUNDS)
        disabled = best_of(_pipeline(NullTelemetry()), rounds=ROUNDS)
        enabled = best_of(_pipeline(Telemetry()), rounds=ROUNDS)
        return baseline, disabled, enabled

    baseline, disabled, enabled = run_once(benchmark, experiment)

    rows = [
        ("default (null telemetry)", f"{baseline * 1000:.2f}", "1.00x"),
        ("explicit NullTelemetry", f"{disabled * 1000:.2f}",
         f"{disabled / baseline:.2f}x"),
        ("full Telemetry", f"{enabled * 1000:.2f}",
         f"{enabled / baseline:.2f}x"),
    ]
    print_table(
        "Telemetry overhead: 5-op pipeline workload (nova, fixed)",
        ("configuration", "best-of-%d (ms)" % ROUNDS, "relative"),
        rows,
    )

    # Disabled telemetry is the default path; an explicit null object must
    # not add measurable work (<10% is the DESIGN.md ceiling, with headroom
    # for timer noise on a ~100ms measurement).
    assert disabled < baseline * 1.10, (
        f"null telemetry must stay within 10% of the default path "
        f"({disabled * 1000:.2f}ms vs {baseline * 1000:.2f}ms)"
    )
    # Full instrumentation records per-syscall and per-crash-state spans,
    # device counters, and a result event; it must remain a modest fraction
    # of pipeline cost.
    assert enabled < baseline * 1.5, (
        f"enabled telemetry overhead out of bounds "
        f"({enabled * 1000:.2f}ms vs {baseline * 1000:.2f}ms)"
    )


def test_bench_profile_overhead(benchmark):
    """Hot-path profiling must be pay-for-what-you-use.

    Disabled (the default) the instrumented sites cost one module-global
    read and an ``is None`` check each — that must stay inside the same
    <10% ceiling as null telemetry.  Enabled profiling adds two
    ``perf_counter`` reads and a dict update per hot call; the byte-copy
    work it measures dwarfs that, so a 1.25x ceiling has ample headroom.
    """

    def experiment():
        baseline = best_of(_pipeline(), rounds=ROUNDS)
        disabled = best_of(
            _pipeline(config=ChipmunkConfig(profile=False)), rounds=ROUNDS
        )
        enabled = best_of(
            _pipeline(config=ChipmunkConfig(profile=True)), rounds=ROUNDS
        )
        return baseline, disabled, enabled

    baseline, disabled, enabled = run_once(benchmark, experiment)

    rows = [
        ("default (profile off)", f"{baseline * 1000:.2f}", "1.00x"),
        ("explicit profile=False", f"{disabled * 1000:.2f}",
         f"{disabled / baseline:.2f}x"),
        ("profile=True", f"{enabled * 1000:.2f}",
         f"{enabled / baseline:.2f}x"),
    ]
    print_table(
        "Profiler overhead: 5-op pipeline workload (nova, fixed)",
        ("configuration", "best-of-%d (ms)" % ROUNDS, "relative"),
        rows,
    )

    assert disabled < baseline * 1.10, (
        f"disabled profiling must stay within 10% of the default path "
        f"({disabled * 1000:.2f}ms vs {baseline * 1000:.2f}ms)"
    )
    assert enabled < baseline * 1.25, (
        f"enabled profiling overhead out of bounds "
        f"({enabled * 1000:.2f}ms vs {baseline * 1000:.2f}ms)"
    )


def test_bench_forensics_overhead(benchmark):
    """Forensics capture must be pay-for-what-you-use, like telemetry.

    Provenance is only materialized when a checker emits a report, so on a
    clean run the enabled path costs one recorder construction per workload
    and nothing per crash state.  The disabled path must therefore track the
    enabled path within noise — and, per the DESIGN.md ceiling, enabled
    capture may not regress the clean pipeline by more than 5%.
    """

    def experiment():
        disabled = best_of(
            _pipeline(config=ChipmunkConfig(forensics=False)), rounds=ROUNDS
        )
        enabled = best_of(
            _pipeline(config=ChipmunkConfig(forensics=True)), rounds=ROUNDS
        )
        return disabled, enabled

    disabled, enabled = run_once(benchmark, experiment)

    rows = [
        ("forensics disabled", f"{disabled * 1000:.2f}", "1.00x"),
        ("forensics enabled", f"{enabled * 1000:.2f}",
         f"{enabled / disabled:.2f}x"),
    ]
    print_table(
        "Forensics overhead: 5-op pipeline workload (nova, fixed)",
        ("configuration", "best-of-%d (ms)" % ROUNDS, "relative"),
        rows,
    )

    assert enabled < disabled * 1.05, (
        f"forensics capture on a clean run must stay within 5% of the "
        f"disabled path ({enabled * 1000:.2f}ms vs {disabled * 1000:.2f}ms)"
    )


def test_bench_trace_export_cost(benchmark, tmp_path):
    """Exporting a trace is off the hot path; this tracks its raw cost."""
    tel = Telemetry()
    cm = Chipmunk("nova", bugs=BugConfig.fixed(), telemetry=tel)
    for _ in range(5):
        cm.test_workload(WORKLOAD)
    path = str(tmp_path / "bench.jsonl")

    n = benchmark(tel.export_jsonl, path)
    assert n > 0
