"""Table 1 reproduction: the 23 unique bugs across five PM file systems.

For every catalogue row, run Chipmunk against the file system with that bug
enabled and record the detection and its consequence; ext4-DAX and XFS-DAX
are swept with fsync-mode ACE workloads and must stay clean (the paper found
zero bugs in them).  Prints the regenerated table next to the paper's
consequence column.
"""

import itertools

from conftest import chipmunk_for_bug, print_table, run_once

from repro.analysis.bugdb import SHARED_PAIRS, TRIGGERS, unique_bug_count
from repro.core import Chipmunk
from repro.fs.bugs import BUG_REGISTRY, BugConfig
from repro.workloads import ace


def _detect_all():
    rows = []
    found_ids = set()
    for bug_id, spec in sorted(BUG_REGISTRY.items()):
        for fs_name in spec.filesystems:
            cm = chipmunk_for_bug(fs_name, bug_id)
            detection = None
            for workload in TRIGGERS[bug_id]:
                result = cm.test_workload(workload)
                if result.buggy:
                    detection = result.clusters[0].exemplar
                    break
            if detection is not None:
                found_ids.add(bug_id)
            rows.append(
                (
                    bug_id,
                    fs_name,
                    spec.consequence,
                    detection.consequence.value if detection else "NOT FOUND",
                    spec.bug_type,
                    "fuzzer" if spec.fuzzer_only else "ACE",
                    "yes" if detection else "NO",
                )
            )
    return rows, found_ids


def _sweep_weak_fs():
    results = {}
    for fs_name in ("ext4-dax", "xfs-dax"):
        cm = Chipmunk(fs_name, bugs=BugConfig.fixed())
        n_reports = 0
        for w in itertools.islice(ace.generate(1, mode="fsync"), 0, None, 2):
            n_reports += len(cm.test_workload(w.core, setup=w.setup).reports)
        results[fs_name] = n_reports
    return results


def test_table1_bug_corpus(benchmark):
    rows, found_ids = run_once(benchmark, _detect_all)
    print_table(
        "Table 1 — bugs found by Chipmunk (paper vs this reproduction)",
        ["bug", "file system", "paper consequence", "measured consequence", "type", "generator", "found"],
        rows,
    )
    per_fs = {}
    for bug_id, fs_name, *_ in rows:
        per_fs.setdefault(fs_name, set()).add(bug_id)
    print_table(
        "Bugs per file system (paper: NOVA 8, NOVA-Fortis 12, PMFS 4, WineFS 4, SplitFS 5)",
        ["file system", "bugs"],
        [(fs, len(ids)) for fs, ids in sorted(per_fs.items())],
    )
    shared = {b for pair in SHARED_PAIRS for b in pair}
    unique_found = len(found_ids) - sum(
        1 for a, b in SHARED_PAIRS if a in found_ids and b in found_ids
    )
    print(f"unique bugs found: {unique_found} (paper: {unique_bug_count()})")
    assert found_ids == set(BUG_REGISTRY), "every catalogue bug must be detected"
    assert unique_found == unique_bug_count() == 23


def test_table1_weak_fs_clean(benchmark):
    results = run_once(benchmark, _sweep_weak_fs)
    print_table(
        "ext4-DAX / XFS-DAX (paper section 4.4: zero crash-consistency bugs)",
        ["file system", "reports over ACE seq-1 (fsync mode)"],
        sorted(results.items()),
    )
    assert all(count == 0 for count in results.values())
