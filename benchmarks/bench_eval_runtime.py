"""Section 4.3 runtime characterization.

The paper reports that seq-1 suites complete in under 15 minutes per file
system on their VMs, that seq-2 takes hours, and that the number of crash
states checked per workload varies by as much as 3x between file systems
(PMFS checking the most, WineFS the fewest).

This bench runs the full ACE seq-1 suite on every file system (fixed
configuration, so the run measures the testing machinery rather than bug
floods) and reports wall time, crash-state counts, and fence counts.  It
also times a slice of seq-2 to extrapolate the full suite.
"""

import itertools

from conftest import print_table, run_once

from repro.core import Chipmunk
from repro.fs.bugs import BugConfig
from repro.workloads import ace

STRONG = ("nova", "nova-fortis", "pmfs", "winefs", "splitfs")
WEAK = ("ext4-dax", "xfs-dax")


def _suite(fs_name, workloads):
    cm = Chipmunk(fs_name, bugs=BugConfig.fixed())
    states = fences = n = 0
    elapsed = 0.0
    for w in workloads:
        result = cm.test_workload(w.core, setup=w.setup)
        states += result.n_crash_states
        fences += result.n_fences
        elapsed += result.elapsed
        n += 1
    return n, states, fences, elapsed


def _run_seq1():
    rows = []
    for fs_name in STRONG:
        n, states, fences, elapsed = _suite(fs_name, ace.generate(1))
        rows.append((fs_name, n, states, round(states / n, 1), fences, f"{elapsed:.1f}s"))
    for fs_name in WEAK:
        n, states, fences, elapsed = _suite(fs_name, ace.generate(1, mode="fsync"))
        rows.append((fs_name, n, states, round(states / n, 1), fences, f"{elapsed:.1f}s"))
    return rows


def _run_seq2_slice():
    rows = []
    slice_size = 100
    for fs_name in STRONG:
        workloads = itertools.islice(ace.generate(2), slice_size)
        n, states, fences, elapsed = _suite(fs_name, workloads)
        projected = elapsed / n * ace.count(2)
        rows.append((fs_name, n, f"{elapsed:.1f}s", f"{projected / 60:.1f} min"))
    return rows


def test_eval_seq1_runtime(benchmark):
    rows = run_once(benchmark, _run_seq1)
    print_table(
        "ACE seq-1 suite (paper: <15 min per FS on their VMs; crash-state "
        "counts vary ~3x between file systems)",
        ["file system", "workloads", "crash states", "states/workload", "fences", "wall time"],
        rows,
    )
    per_workload = {r[0]: r[3] for r in rows if r[0] in STRONG}
    spread = max(per_workload.values()) / min(per_workload.values())
    print(f"crash-state spread across strong-guarantee FSs: {spread:.1f}x")
    # The paper observed up to ~3x variation; we require a visible spread.
    assert spread >= 1.3
    # Weak FSs check far fewer states (fsync-only crash points).
    weak_states = [r[3] for r in rows if r[0] in WEAK]
    assert max(weak_states) < min(per_workload.values())


def test_eval_seq2_projection(benchmark):
    rows = run_once(benchmark, _run_seq2_slice)
    print_table(
        "ACE seq-2 slice (100 workloads) with full-suite projection",
        ["file system", "workloads run", "slice time", "projected full seq-2"],
        rows,
    )
