"""Observation 2 performance claims: the cost of fixing in-place-update bugs.

The paper measured on Optane:

* fixing NOVA's rename atomicity bugs (4, 5) made a rename-heavy
  microbenchmark ~25% slower (the fix journals more data);
* a metadata-light macrobenchmark showed negligible overhead (<1%);
* fixing the link bug (6) made a link microbenchmark ~7% *faster*, because
  the buggy in-place path needed an extra media read to check it was safe.

We reproduce the *directions and rough magnitudes* with the persistence-
operation cost model (latency constants from published Optane
measurements); absolute times are not comparable.
"""

from conftest import print_table, run_once

from repro.fs.bugs import BugConfig
from repro.fs.registry import fs_class
from repro.pm.costmodel import CostModel
from repro.pm.device import PMDevice

MODEL = CostModel()
NOVA = fs_class("nova")
ITERS = 60


def _fresh(bugs):
    from repro.fs.nova.layout import NovaGeometry

    geom = NovaGeometry(device_size=1024 * 1024, inode_blocks=32)
    return NOVA.mkfs(PMDevice(geom.device_size), geometry=geom, bugs=bugs)


def _cost_of(fs, func) -> float:
    before = fs.ops.counters.snapshot()
    func()
    return MODEL.cost_us(fs.ops.counters.delta(before))


def rename_microbench(bugs) -> float:
    """The paper's atomic-replace pattern: write a temp file, rename it
    over the target; measure the rename cost."""
    fs = _fresh(bugs)
    total = 0.0
    for i in range(ITERS):
        def iteration():
            fs.creat("/tmpfile")
            fs.write("/tmpfile", 0, bytes([i % 256]) * 256)
            fs.rename("/tmpfile", f"/target{i}")

        total += _cost_of(fs, iteration)
    return total


def link_microbench(bugs) -> float:
    """Repeatedly create links to one file; measure the link cost."""
    fs = _fresh(bugs)
    fs.creat("/target")
    total = 0.0
    for i in range(ITERS):
        name = f"/link{i}"
        total += _cost_of(fs, lambda: fs.link("/target", name))
    return total


def metadata_macrobench(bugs) -> float:
    """A checkout-like workload: mostly creates, writes, and deletes, with
    renames only occasionally (the paper's git-checkout analogue)."""
    fs = _fresh(bugs)
    total = 0.0
    before = fs.ops.counters.snapshot()
    for i in range(ITERS):
        d = f"/d{i % 6}"
        if not fs.exists(d):
            fs.mkdir(d)
        fs.creat(f"{d}/f{i}")
        fs.write(f"{d}/f{i}", 0, bytes([i % 256]) * 512)
        if i % 10 == 9:
            fs.rename(f"{d}/f{i}", f"{d}/g{i}")
            fs.unlink(f"{d}/g{i}")
        elif i % 3 == 0:
            fs.unlink(f"{d}/f{i}")
    return MODEL.cost_us(fs.ops.counters.delta(before))


def _run():
    buggy_rename = rename_microbench(BugConfig.only(4, 5))
    fixed_rename = rename_microbench(BugConfig.fixed())
    buggy_link = link_microbench(BugConfig.only(6))
    fixed_link = link_microbench(BugConfig.fixed())
    buggy_macro = metadata_macrobench(BugConfig.only(4, 5))
    fixed_macro = metadata_macrobench(BugConfig.fixed())
    return {
        "rename": (buggy_rename, fixed_rename),
        "link": (buggy_link, fixed_link),
        "macro": (buggy_macro, fixed_macro),
    }


def test_obs2_fix_overheads(benchmark):
    results = run_once(benchmark, _run)

    def delta(pair):
        buggy, fixed = pair
        return (fixed - buggy) / buggy * 100.0

    rows = [
        (
            "rename microbench (bugs 4+5)",
            f"{results['rename'][0]:.1f}",
            f"{results['rename'][1]:.1f}",
            f"{delta(results['rename']):+.1f}%",
            "+25% (fix slower)",
        ),
        (
            "link microbench (bug 6)",
            f"{results['link'][0]:.1f}",
            f"{results['link'][1]:.1f}",
            f"{delta(results['link']):+.1f}%",
            "-7% (fix faster)",
        ),
        (
            "metadata macrobench (bugs 4+5)",
            f"{results['macro'][0]:.1f}",
            f"{results['macro'][1]:.1f}",
            f"{delta(results['macro']):+.1f}%",
            "<1% overhead",
        ),
    ]
    print_table(
        "Observation 2 — modelled cost of the in-place-update fixes (µs)",
        ["benchmark", "buggy", "fixed", "fix overhead", "paper"],
        rows,
    )
    # Directions must match the paper.
    assert delta(results["rename"]) > 5.0, "rename fix must be slower"
    assert delta(results["link"]) < 0.0, "link fix must be faster"
    assert abs(delta(results["macro"])) < 8.0, "macro overhead must be small"
