"""Delta crash states vs the eager baseline: states/sec, memo hit-rate,
peak allocation.

The eager baseline reproduces the pre-delta pipeline exactly: every crash
state is materialized to flat ``bytes`` (an O(device) copy), deduped by a
whole-image sha1, and checked on a per-state ``PMDevice.from_snapshot``
copy.  The delta path is what the harness runs today: shared fence bases +
sparse overlays, content-addressed memoization, and a copy-on-write mount
view — a clean check of a one-replay state touches kilobytes regardless of
device size.

Both paths check the same seq-2 workload across device sizes and must
produce identical report lists; the acceptance gate is >= 3x states/sec at
16 MiB.  The delta path is additionally measured on both image backends
(pure-python reference and the vectorized numpy backend) with a second
gate: the numpy backend must hit >= 10x the python delta states/sec at
16 MiB, with a byte-identical report list.  Results land in
``BENCH_replay.json``; one history record per backend is appended to the
ledger (``backend`` rides in the config fingerprint).

Runs two ways::

    pytest benchmarks/bench_replay_delta.py --benchmark-only -s   # full
    python benchmarks/bench_replay_delta.py --smoke               # CI gate
"""

import argparse
import dataclasses
import hashlib
import json
import sys
import time
import tracemalloc

from repro.core.checker import CheckMemo, ConsistencyChecker
from repro.core.harness import Chipmunk, ChipmunkConfig
from repro.core.oracle import run_oracle
from repro.core.replayer import enumerate_crash_states
from repro.obs import Telemetry
from repro.pm.backend import numpy_available
from repro.workloads import ace
from repro.workloads.ops import describe_workload

KIB = 1024
MIB = 1024 * KIB

#: Full sweep; the 16 MiB point is the acceptance gate.
SIZES = (256 * KIB, 1 * MIB, 16 * MIB)
SMOKE_SIZES = (256 * KIB,)

#: seq-2 ace workload: ``creat('/foo'); write('/bar', 0, 66, 1024)`` —
#: metadata stores plus a coalesced file-data write.
SEQ2 = ace.workload_at(2, 9)

MIN_SPEEDUP = 3.0

#: Numpy-backend gate: >= 10x the python delta backend's states/sec at the
#: 16 MiB gate size (the vectorized-replay acceptance criterion).
MIN_BACKEND_SPEEDUP = 10.0

#: Minimum mid-syscall state reduction for ``--crash-plans mech`` on the
#: bench workload (fixed-bug config) — the mechanism-plan acceptance gate.
MECH_MIN_REDUCTION = 5.0


def build_pipeline(device_size):
    """Record the workload once and set up a checker (untimed)."""
    cm = Chipmunk("nova", config=ChipmunkConfig(device_size=device_size))
    base, log, _ = cm.record(SEQ2.core, setup=SEQ2.setup)
    oracle = run_oracle(cm.fs_class, SEQ2.core, device_size, bugs=cm.bugs,
                        setup=SEQ2.setup)
    checker = ConsistencyChecker(
        cm.fs_class, oracle, describe_workload(SEQ2.core), bugs=cm.bugs
    )
    return cm, base, log, checker


def run_eager(cm, base, log, checker):
    """The seed pipeline: flat-bytes states, sha1 dedup, per-state device."""
    seen = set()
    reports = []
    n_states = 0
    for state in enumerate_crash_states(base, log, cap=cm.config.cap):
        n_states += 1
        flat = bytes(state.image)
        key = (hashlib.sha1(flat).digest(), state.syscall, state.mid_syscall,
               state.after_syscall)
        if key in seen:
            continue
        seen.add(key)
        reports.extend(checker.check(dataclasses.replace(state, image=flat)))
    return n_states, reports


def run_delta(cm, base, log, checker, telemetry=None, backend="python"):
    """Today's pipeline: CrashImage states through the memoized entry point."""
    memo = CheckMemo(checker, telemetry=telemetry, delta=True)
    n_states = 0
    reports = []
    for state in enumerate_crash_states(base, log, cap=cm.config.cap,
                                        image_backend=backend):
        n_states += 1
        found = memo.check(state)
        if found is not None:
            reports.extend(found)
    return n_states, reports, memo


def _best_seconds(func, rounds):
    func()  # untimed warmup: caches, buffer pools, branch predictors
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _peak_alloc(func):
    tracemalloc.start()
    try:
        func()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def measure_size(device_size, rounds=5):
    """Benchmark one device size; returns the BENCH_replay.json entry."""
    cm, base, log, checker = build_pipeline(device_size)

    # Correctness first: both paths must report the same bugs, and the
    # delta images must materialize to the eager flat bytes.
    n_eager, eager_reports = run_eager(cm, base, log, checker)
    tel = Telemetry()
    n_delta, delta_reports, memo = run_delta(cm, base, log, checker, tel)
    assert n_eager == n_delta, (n_eager, n_delta)
    assert eager_reports == delta_reports, "delta path changed the bug set"
    metric_names = {r["name"] for r in tel.metrics.snapshot()}
    assert {"checker.memo.hits", "checker.memo.misses"} <= metric_names, (
        "memo hit-rate telemetry absent from metrics snapshot"
    )

    if numpy_available():
        # The backends must agree byte-for-byte before being timed.
        n_np, np_reports, _ = run_delta(cm, base, log, checker,
                                        backend="numpy")
        assert n_np == n_delta, (n_np, n_delta)
        assert np_reports == delta_reports, (
            "numpy backend changed the bug set"
        )

    # Time the two delta backends back to back, *before* the eager timing
    # and tracemalloc passes: those churn dozens of full-device flats
    # through the allocator, and the resulting page-fault noise would be
    # charged to whichever backend ran after them rather than measuring
    # backend cost.
    np_s = None
    if numpy_available():
        np_s = _best_seconds(
            lambda: run_delta(cm, base, log, checker, backend="numpy"), rounds
        )
    delta_s = _best_seconds(lambda: run_delta(cm, base, log, checker), rounds)
    eager_s = _best_seconds(lambda: run_eager(cm, base, log, checker), rounds)
    eager_peak = _peak_alloc(lambda: run_eager(cm, base, log, checker))
    delta_peak = _peak_alloc(lambda: run_delta(cm, base, log, checker))

    hit_rate = memo.hits / (memo.hits + memo.misses) if n_delta else 0.0
    entry = {
        "device_size": device_size,
        "n_states": n_delta,
        "eager": {
            "seconds": eager_s,
            "states_per_sec": n_eager / eager_s,
            "peak_alloc_bytes": eager_peak,
        },
        "delta": {
            "seconds": delta_s,
            "states_per_sec": n_delta / delta_s,
            "peak_alloc_bytes": delta_peak,
            "memo_hits": memo.hits,
            "memo_misses": memo.misses,
            "memo_hit_rate": hit_rate,
        },
        "speedup": eager_s / delta_s,
    }
    if np_s is not None:
        np_peak = _peak_alloc(
            lambda: run_delta(cm, base, log, checker, backend="numpy")
        )
        entry["delta_np"] = {
            "seconds": np_s,
            "states_per_sec": n_delta / np_s,
            "peak_alloc_bytes": np_peak,
        }
        entry["backend_speedup"] = delta_s / np_s
    return entry


def measure_mech(device_size=256 * KIB):
    """Mech-vs-subset enumerated-state reduction on the bench workload.

    Runs the full harness pipeline in both plan modes, demands identical
    triaged clusters (the byte-equality invariant the equivalence tests
    pin campaign-wide), and reports the state ratios.  Mid-syscall counts
    exclude the workload's post-syscall and final states (one per core
    syscall plus the final tail), which both modes always emit.
    """
    from repro.fs.bugs import BugConfig

    n_always = len(SEQ2.core) + 1
    entry = {"min_mid_reduction": MECH_MIN_REDUCTION}
    for label, bugs in (
        ("fixed", BugConfig.fixed()),
        ("buggy", BugConfig.buggy("nova")),
    ):
        runs = {}
        for mode in ("subset", "mech"):
            cm = Chipmunk("nova", bugs=bugs, config=ChipmunkConfig(
                device_size=device_size, crash_plans=mode,
            ))
            runs[mode] = cm.test_workload(SEQ2.core, setup=SEQ2.setup)
        subset, mech = runs["subset"], runs["mech"]
        assert [c.exemplar.to_dict() for c in subset.clusters] == [
            c.exemplar.to_dict() for c in mech.clusters
        ], f"mech plans changed the {label}-config bug clusters"
        mid_subset = subset.n_crash_states - n_always
        mid_mech = mech.n_crash_states - n_always
        entry[label] = {
            "subset_states": subset.n_crash_states,
            "mech_states": mech.n_crash_states,
            "mid_subset_states": mid_subset,
            "mid_mech_states": mid_mech,
            "states_ratio": subset.n_crash_states / mech.n_crash_states,
            "mid_states_ratio": mid_subset / max(mid_mech, 1),
            "mech_plans_emitted": mech.mech_plans_emitted,
            "mech_fallback_epochs": mech.mech_fallback_epochs,
        }
    return entry


def run_bench(sizes, rounds=5):
    from repro.obs.history import host_fingerprint

    results = [measure_size(size, rounds=rounds) for size in sizes]
    return {
        "workload": describe_workload(SEQ2.core),
        "fs": "nova",
        "host": host_fingerprint(),
        "memo_hit_rate": results[-1]["delta"]["memo_hit_rate"],
        "results": results,
        "mech": measure_mech(),
    }


def record_history(doc, ledger, smoke=False):
    """Append this run's gate-size metrics to the benchmark history ledger.

    One record per backend: ``replay_delta`` is the python reference,
    ``replay_delta_np`` the vectorized backend (present when numpy is
    importable, including under ``--smoke``).  The backend rides in the
    config fingerprint so a ledger line is self-describing.
    """
    from repro.obs.history import append_record

    gate = doc["results"][-1]
    metrics = {
        "n_states": gate["n_states"],
        "eager": gate["eager"],
        "delta": gate["delta"],
        "speedup": gate["speedup"],
        "mech_mid_states_ratio": doc["mech"]["fixed"]["mid_states_ratio"],
    }
    config = {
        "device_size": gate["device_size"],
        "smoke": smoke,
        "workload": doc["workload"],
        "backend": "python",
    }
    append_record(ledger, "replay_delta", metrics, config=config)
    print(f"appended replay_delta record to {ledger}")
    if "delta_np" in gate:
        np_metrics = {
            "n_states": gate["n_states"],
            "delta": gate["delta_np"],
            "backend_speedup": gate["backend_speedup"],
        }
        append_record(ledger, "replay_delta_np", np_metrics,
                      config=dict(config, backend="numpy"))
        print(f"appended replay_delta_np record to {ledger}")


def render(doc):
    rows = []
    for r in doc["results"]:
        np_stats = r.get("delta_np")
        rows.append((
            f"{r['device_size'] // KIB} KiB",
            r["n_states"],
            f"{r['eager']['states_per_sec']:.0f}",
            f"{r['delta']['states_per_sec']:.0f}",
            f"{np_stats['states_per_sec']:.0f}" if np_stats else "-",
            f"{r['speedup']:.1f}x",
            f"{r['backend_speedup']:.1f}x" if np_stats else "-",
            f"{r['delta']['memo_hit_rate'] * 100:.0f}%",
            f"{r['eager']['peak_alloc_bytes'] // KIB} KiB",
            f"{r['delta']['peak_alloc_bytes'] // KIB} KiB",
        ))
    try:
        from conftest import print_table
    except ImportError:  # running as a script from the repo root
        sys.path.insert(0, "benchmarks")
        from conftest import print_table
    print_table(
        f"Delta crash states vs eager baseline ({doc['workload']})",
        ("device", "states", "eager st/s", "delta st/s", "numpy st/s",
         "speedup", "np speedup", "memo hits", "eager peak", "delta peak"),
        rows,
    )
    mech = doc.get("mech")
    if mech:
        mech_rows = [
            (
                label,
                mech[label]["subset_states"],
                mech[label]["mech_states"],
                f"{mech[label]['states_ratio']:.1f}x",
                f"{mech[label]['mid_states_ratio']:.1f}x",
                mech[label]["mech_fallback_epochs"],
            )
            for label in ("fixed", "buggy")
        ]
        print_table(
            "Mech plans vs subset enumeration (identical bug clusters)",
            ("bugs", "subset states", "mech states", "total ratio",
             "mid-syscall ratio", "fallbacks"),
            mech_rows,
        )


def write_json(doc, path):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    print(f"wrote {path}")


def test_bench_replay_delta(benchmark):
    """Full sweep under pytest-benchmark; gates the 16 MiB speedup."""
    from conftest import run_once

    doc = run_once(benchmark, lambda: run_bench(SIZES))
    render(doc)
    write_json(doc, "BENCH_replay.json")
    record_history(doc, "BENCH_history.jsonl")
    gate = doc["results"][-1]
    assert gate["device_size"] == 16 * MIB
    assert gate["speedup"] >= MIN_SPEEDUP, (
        f"delta path only {gate['speedup']:.1f}x over eager at 16 MiB "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    assert gate["delta"]["memo_hit_rate"] > 0
    if "backend_speedup" in gate:
        assert gate["backend_speedup"] >= MIN_BACKEND_SPEEDUP, (
            f"numpy backend only {gate['backend_speedup']:.1f}x over the "
            f"python delta path at 16 MiB (need >= {MIN_BACKEND_SPEEDUP}x)"
        )
    mech_gate = doc["mech"]["fixed"]["mid_states_ratio"]
    assert mech_gate >= MECH_MIN_REDUCTION, (
        f"mech plans only cut mid-syscall states {mech_gate:.1f}x "
        f"(need >= {MECH_MIN_REDUCTION}x)"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small device only, one round (CI gate)")
    parser.add_argument("--out", default="BENCH_replay.json",
                        help="output JSON path")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="benchmark history ledger to append to "
                        "(see `python -m repro perf`)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the history-ledger append")
    args = parser.parse_args(argv)
    if args.smoke:
        doc = run_bench(SMOKE_SIZES, rounds=1)
    else:
        doc = run_bench(SIZES)
    render(doc)
    write_json(doc, args.out)
    if not args.no_history:
        record_history(doc, args.history, smoke=args.smoke)
    mech_gate = doc["mech"]["fixed"]["mid_states_ratio"]
    if mech_gate < MECH_MIN_REDUCTION:
        print(f"FAIL: mech mid-syscall reduction {mech_gate:.1f}x "
              f"< {MECH_MIN_REDUCTION}x", file=sys.stderr)
        return 1
    if not args.smoke:
        gate = doc["results"][-1]
        if gate["speedup"] < MIN_SPEEDUP:
            print(f"FAIL: speedup {gate['speedup']:.1f}x < {MIN_SPEEDUP}x",
                  file=sys.stderr)
            return 1
        if ("backend_speedup" in gate
                and gate["backend_speedup"] < MIN_BACKEND_SPEEDUP):
            print(f"FAIL: numpy backend speedup "
                  f"{gate['backend_speedup']:.1f}x < {MIN_BACKEND_SPEEDUP}x",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
