"""Section 3.2: write coalescing makes data-heavy workloads tractable.

The paper's example: a 1 KiB file write is 128 8-byte stores — 2^128 crash
states if each store were tracked individually.  Function-level logging plus
the data-write coalescing heuristic collapse it to a handful of replay
units.  This bench measures actual crash-state counts for growing write
sizes, with and without coalescing, against the theoretical per-store count.
"""

from conftest import print_table, run_once

from repro.core import Chipmunk, ChipmunkConfig
from repro.fs.bugs import BugConfig
from repro.workloads.ops import Op


def _count_states(write_size: int, coalesce_threshold: int) -> int:
    cm = Chipmunk(
        "nova",
        bugs=BugConfig.fixed(),
        config=ChipmunkConfig(cap=None, coalesce_threshold=coalesce_threshold),
    )
    result = cm.test_workload(
        [Op("creat", ("/f",)), Op("write", ("/f", 0, 0x41, write_size))]
    )
    return result.n_crash_states


def _run():
    rows = []
    for size in (256, 512, 1024, 2048):
        with_coalescing = _count_states(size, coalesce_threshold=256)
        # Disable coalescing by making the threshold unreachably large; the
        # function-level log entries are still whole memcpy calls.
        without = _count_states(size, coalesce_threshold=1 << 30)
        per_store_states = f"2^{size // 8}"
        rows.append((size, per_store_states, without, with_coalescing))
    return rows


def test_coalescing_state_counts(benchmark):
    rows = run_once(benchmark, _run)
    print_table(
        "Crash states for a single write (paper 3.2: 1 KiB = 2^128 "
        "per-store states; function-level logging + coalescing -> a handful)",
        ["write size", "per-store (theoretical)", "function-level only", "with coalescing"],
        rows,
    )
    for size, _, without, with_c in rows:
        assert with_c <= without
        assert with_c < 64, f"coalesced count must stay small for {size}B writes"
    # Bigger writes must not blow up the coalesced count.
    assert rows[-1][3] <= rows[0][3] * 4
