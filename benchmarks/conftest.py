"""Shared helpers for the reproduction benches.

Every bench regenerates one of the paper's tables or figures and prints it
(run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables).
The heavy experiment body runs inside the ``benchmark`` fixture so the
pytest-benchmark machinery records its runtime.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import Chipmunk, ChipmunkConfig
from repro.fs.bugs import BugConfig


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render an aligned text table (the bench's "figure")."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print("=" * len(title))
    print(title)
    print("=" * len(title))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    print()


def run_once(benchmark, func):
    """Execute ``func`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def best_of(func, rounds: int = 5, warmup: int = 1) -> float:
    """Minimum wall time of ``func`` over ``rounds`` runs (after warm-up).

    The minimum is the standard noise-robust estimator for comparing two
    implementations of the same work (used by the telemetry-overhead bench).
    """
    for _ in range(warmup):
        func()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def chipmunk_for_bug(fs_name: str, bug_id: int, cap: Optional[int] = 2) -> Chipmunk:
    return Chipmunk(
        fs_name, bugs=BugConfig.only(bug_id), config=ChipmunkConfig(cap=cap)
    )


def time_to_find(chipmunk, workloads, max_workloads: int) -> Tuple[Optional[float], int]:
    """CPU time and workload count until the first bug report (None if not
    found within the budget)."""
    start = time.perf_counter()
    for count, w in enumerate(workloads, 1):
        if count > max_workloads:
            return None, count - 1
        setup = getattr(w, "setup", ())
        core = getattr(w, "core", w)
        if chipmunk.test_workload(core, setup=setup).buggy:
            return time.perf_counter() - start, count
    return None, max_workloads
