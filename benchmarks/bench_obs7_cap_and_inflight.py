"""Observation 7 and section 3.2: in-flight write counts are small for
metadata operations, and replaying one or two in-flight writes exposes
(almost) every bug.

Regenerates:

* the per-syscall in-flight statistics (paper: average 3, maximum 10);
* the cap sweep: bugs found with a replay cap of 1, 2, 5, and unlimited
  (paper: a cap of two suffices for all bugs; most need only one write).
"""

from conftest import chipmunk_for_bug, print_table, run_once

from repro.analysis.bugdb import TRIGGERS
from repro.core import Chipmunk
from repro.fs.bugs import BUG_REGISTRY, BugConfig
from repro.workloads import ace


def _inflight_stats():
    rows = []
    for fs_name in ("nova", "nova-fortis", "pmfs", "winefs", "splitfs"):
        cm = Chipmunk(fs_name, bugs=BugConfig.fixed())
        per_syscall = {}
        for w in ace.generate(1):
            result = cm.test_workload(w.core, setup=w.setup)
            for name, counts in result.inflight.items():
                per_syscall.setdefault(name, []).extend(counts)
        counts = [c for values in per_syscall.values() for c in values]
        rows.append(
            (
                fs_name,
                f"{sum(counts) / len(counts):.1f}",
                max(counts),
                len(counts),
            )
        )
    return rows


def _cap_sweep():
    caps = (1, 2, 5, None)
    rows = []
    for bug_id, spec in sorted(BUG_REGISTRY.items()):
        fs_name = spec.filesystems[0]
        found = []
        for cap in caps:
            cm = chipmunk_for_bug(fs_name, bug_id, cap=cap)
            hit = any(cm.test_workload(w).buggy for w in TRIGGERS[bug_id])
            found.append("yes" if hit else "no")
        rows.append((bug_id, fs_name, *found))
    return rows


def test_obs7_inflight_counts(benchmark):
    rows = run_once(benchmark, _inflight_stats)
    print_table(
        "In-flight write units per fence, ACE seq-1 (paper: avg ~3, max 10)",
        ["file system", "average", "maximum", "fence regions"],
        rows,
    )
    for fs_name, avg, maximum, _ in rows:
        assert float(avg) <= 6.0, fs_name
        assert maximum <= 12, fs_name


def test_obs7_cap_sweep(benchmark):
    rows = run_once(benchmark, _cap_sweep)
    print_table(
        "Observation 7 — bugs found by replay cap",
        ["bug", "fs", "cap=1", "cap=2", "cap=5", "uncapped"],
        rows,
    )
    cap1 = sum(1 for r in rows if r[2] == "yes")
    cap2 = sum(1 for r in rows if r[3] == "yes")
    print(f"cap=1 finds {cap1}/25 rows; cap=2 finds {cap2}/25 rows")
    # Paper: a cap of two is enough to find every bug; one finds almost all.
    assert cap2 == len(rows)
    assert cap1 >= len(rows) - 3
    # cap=5 and uncapped find everything too.
    assert all(r[4] == "yes" and r[5] == "yes" for r in rows)
