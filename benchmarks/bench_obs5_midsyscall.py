"""Observation 5: many bugs require crashes *during* system calls.

Compares three crash-point policies on every catalogue bug:

* Chipmunk (``fence``): crash states during and after every syscall;
* CrashMonkey-upgraded (``post``): after every syscall, never during one;
* CrashMonkey-actual (``fsync``): only after fsync-family calls — on
  strong-guarantee PM workloads (which contain no fsync) this checks almost
  nothing, which is exactly why the paper calls the existing tools
  incompatible with PM file systems.
"""

from conftest import print_table, run_once

from repro.analysis.bugdb import TRIGGERS
from repro.baselines.crashmonkey import CrashMonkeyStyleTester
from repro.core import Chipmunk, ChipmunkConfig
from repro.fs.bugs import BUG_REGISTRY, BugConfig


def _policy_finds(fs_name, bug_id, policy):
    if policy == "fence":
        tester = Chipmunk(
            fs_name, bugs=BugConfig.only(bug_id), config=ChipmunkConfig(cap=2)
        )
    else:
        tester = CrashMonkeyStyleTester(fs_name, bugs=BugConfig.only(bug_id), policy=policy)
    return any(tester.test_workload(w).buggy for w in TRIGGERS[bug_id])


def _run():
    rows = []
    for bug_id, spec in sorted(BUG_REGISTRY.items()):
        fs_name = spec.filesystems[0]
        rows.append(
            (
                bug_id,
                fs_name,
                "yes" if _policy_finds(fs_name, bug_id, "fence") else "NO",
                "yes" if _policy_finds(fs_name, bug_id, "post") else "no",
                "yes" if _policy_finds(fs_name, bug_id, "fsync") else "no",
            )
        )
    return rows


def test_obs5_crash_point_policies(benchmark):
    rows = run_once(benchmark, _run)
    print_table(
        "Observation 5 — detection by crash-point policy",
        ["bug", "fs", "Chipmunk (fence)", "baseline (post-syscall)", "baseline (fsync-only)"],
        rows,
    )
    chipmunk_found = [r for r in rows if r[2] == "yes"]
    post_missed = [r[0] for r in rows if r[3] == "no"]
    fsync_found = [r[0] for r in rows if r[4] == "yes"]
    print(
        f"Chipmunk finds {len(chipmunk_found)}/25 rows; the post-syscall "
        f"baseline misses {len(post_missed)} ({post_missed}); the fsync-only "
        f"baseline finds {len(fsync_found)}."
    )
    # Chipmunk finds everything.
    assert len(chipmunk_found) == len(rows)
    # A substantial set of bugs needs mid-syscall crashes (paper: 11 of 23).
    assert len(post_missed) >= 8
    # The true CrashMonkey policy is near-useless on PM workloads.
    assert len(fsync_found) <= 2
