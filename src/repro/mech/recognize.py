"""Persistence-mechanism recognizers.

Every PM file system funnels durable writes through a handful of
*mechanisms* — journal transactions, log-structured appends, in-place
commit-pointer updates, replica mirrors, bulk initialization — and real
crash-consistency bugs cluster at the boundaries of those mechanisms, not
at arbitrary store subsets (WITCHER and the LeBlanc et al. bug study in
PAPERS.md).  This module classifies each fence epoch of a recorded
:class:`~repro.pm.log.PMLog` into a mechanism, using only three inputs
that already exist for every file system:

* the persistence-function tags on each log entry (``func``),
* the per-FS ``layout_map()`` region containing each store, and
* a small per-FS :class:`MechanismHints` declaration living next to the
  ``layout_map()`` it refines.

The classification is a *partition*: every coalesced replay unit of every
epoch receives exactly one role, and every epoch receives exactly one
mechanism kind; anything the recognizers cannot explain — mixed roles,
stores from several syscalls (stale in-flight windows are how missing-
fence bugs look), unmapped regions — lands in the ``unstructured``
fallback, which downstream planning treats as "enumerate like today".

This module deliberately imports nothing from ``repro.fs`` or
``repro.core`` so the file systems themselves can declare hints without
an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.pm.log import Fence, NTStore, PMLog, SyscallBegin, SyscallEnd, WriteEntry

#: Unit roles, in recognition-priority order.
UNIT_ROLES = ("replica", "journal", "commit", "bulk", "append", "other")

#: Epoch mechanism kinds the recognizers can produce.  ``unstructured`` is
#: the fallback and always legal; the others are claims strong enough to
#: justify targeted crash plans.
MECH_KINDS = (
    "journal_update",
    "log_append",
    "log_commit",
    "replica_update",
    "bulk_init",
    "unstructured",
)


@dataclass(frozen=True)
class MechanismHints:
    """Per-FS declaration of where each persistence mechanism lives.

    Declared by each file system next to its ``layout_map()`` (see
    ``FileSystem.mechanism_hints``).  All fields name layout regions as
    ``layout_map().region_of()`` spells them; an empty tuple means the FS
    does not use that mechanism.
    """

    #: Regions holding journal/undo-log/redo-log transaction records.
    journal_regions: Tuple[str, ...] = ()
    #: Regions where log-structured entries are appended (per-inode logs,
    #: operation logs).  Large NT stores here are file data; small writes
    #: are log entries.
    append_regions: Tuple[str, ...] = ()
    #: Regions whose small in-place writes act as commit pointers (e.g.
    #: NOVA's inode-table tail updates making appended entries reachable).
    commit_regions: Tuple[str, ...] = ()
    #: Regions holding shadow/replica copies of primary structures.
    replica_regions: Tuple[str, ...] = ()
    #: NT stores at least this large are bulk data initialization
    #: (matches the replayer's coalescing threshold).
    bulk_threshold: int = 256
    #: Per-kind crash-plan policy overrides (``mech/plans.py`` policy
    #: names); absent kinds use the conservative defaults.  This is how a
    #: file system with, say, a redo journal that ignores uncommitted
    #: records opts into more aggressive pruning than an undo-journal FS
    #: can tolerate.
    plan_overrides: Mapping[str, str] = field(default_factory=dict)
    #: Opt into the cross-epoch boundary-redundancy rules of
    #: :class:`repro.mech.plans.MechPlanner`: journal-transaction phase
    #: tracking and fresh-append visibility, which let the planner drop
    #: empty combos that duplicate already-emitted boundary states.  Only
    #: sound for file systems whose recovery provably ignores
    #: uncommitted journal records and unreachable log tails.
    sequence_rules: bool = False


@dataclass(frozen=True)
class EpochClass:
    """Classification of one fence epoch's in-flight store group."""

    fence_index: int
    kind: str
    #: One role per coalesced replay unit, in program order — the partition
    #: the property tests pin (each unit classified exactly once).
    roles: Tuple[str, ...]
    #: Distinct syscall indices whose stores share the epoch (>1 is itself
    #: an anomaly: a fence should retire one operation's stores).
    syscalls: Tuple[int, ...] = ()
    #: A ``SyscallEnd`` marker fell inside this epoch's fence window.  The
    #: replayer's persistent base only advances at fences, so the
    #: post-syscall state it emitted there is byte-identical to this
    #: epoch's empty combo — which boundary-redundancy rules may then drop.
    post_aligned: bool = False

    @property
    def n_units(self) -> int:
        return len(self.roles)


def unit_role(
    unit: Sequence[WriteEntry], layout, hints: MechanismHints
) -> str:
    """Assign one mechanism role to a coalesced replay unit.

    ``layout`` is duck-typed: only ``region_of(addr)`` is used.  The unit's
    first entry decides (coalesced units never straddle regions in this
    codebase: coalescing only merges address-contiguous data stores).
    """
    head = unit[0]
    region = layout.region_of(head.addr)
    if region in hints.replica_regions:
        return "replica"
    if region in hints.journal_regions:
        return "journal"
    total = sum(len(e.data) for e in unit)
    is_bulk = (
        isinstance(head, NTStore)
        and (len(unit) > 1 or total >= hints.bulk_threshold)
    )
    if region in hints.commit_regions and not is_bulk:
        return "commit"
    if is_bulk:
        return "bulk"
    if region in hints.append_regions:
        return "append"
    return "other"


def classify_roles(roles: Sequence[str], n_syscalls: int) -> str:
    """Fold a program-ordered role sequence into an epoch mechanism kind.

    The rules are conjunctive and conservative: any role mix the table
    below does not explicitly claim — in particular anything containing an
    ``other`` unit, or stores left in flight across a syscall boundary —
    is ``unstructured``.
    """
    if not roles:
        return "unstructured"
    if n_syscalls > 1:
        # Stores from several syscalls share the window: a fence is
        # missing somewhere (that is what several Table-1 bugs look like),
        # so no mechanism claim is safe.
        return "unstructured"
    kinds = set(roles)
    if "other" in kinds:
        return "unstructured"
    if "replica" in kinds:
        # Primary+replica mirror updates, possibly with their commit write.
        if kinds <= {"replica", "commit", "journal", "append", "bulk"}:
            return "replica_update"
        return "unstructured"
    if kinds == {"journal"}:
        return "journal_update"
    if "journal" in kinds:
        # Journal records mixed with in-place or data writes in a single
        # epoch: the transaction discipline (records persist strictly
        # before their protected writes) is broken or being broken.
        return "unstructured"
    if "commit" in kinds:
        # Appends/data plus the in-place pointer that commits them; a
        # pure-commit epoch is the second half of the same mechanism.
        return "log_commit"
    if kinds == {"bulk"}:
        return "bulk_init"
    # Remaining mixes are {append} or {append, bulk}: log-structured
    # appends, optionally alongside the data blocks they describe.
    return "log_append"


def iter_epochs(
    log: PMLog,
    layout,
    hints: MechanismHints,
    coalesce_units,
    coalesce_threshold: int = 256,
):
    """Walk a recorded log, yielding ``(EpochClass, units)`` per epoch.

    ``coalesce_units`` is injected (normally
    :func:`repro.core.replayer.coalesce_units`) so the grouping here is
    *identical* to the replayer's — the plan indices line up by
    construction.  The walk covers every epoch that has in-flight
    writes, including the trailing partial epoch after the last fence,
    keyed by ``fence_index`` exactly as the replayer counts it.  The
    yielded ``units`` are the coalesced replay units the roles were
    assigned to, in program order — the planner needs their raw entries
    for its visibility analysis.
    """
    inflight: List[WriteEntry] = []
    fence_index = 0
    saw_syscall_end = False

    def flush_epoch():
        units = coalesce_units(inflight, coalesce_threshold)
        roles = tuple(unit_role(unit, layout, hints) for unit in units)
        syscalls = tuple(sorted({
            e.syscall for e in inflight if e.syscall is not None
        }))
        kind = classify_roles(roles, len(syscalls))
        return (
            EpochClass(fence_index, kind, roles, syscalls, saw_syscall_end),
            units,
        )

    for entry in log:
        if isinstance(entry, SyscallBegin):
            continue
        if isinstance(entry, SyscallEnd):
            saw_syscall_end = True
        elif isinstance(entry, Fence):
            if inflight:
                yield flush_epoch()
            inflight.clear()
            fence_index += 1
            saw_syscall_end = False
        else:
            inflight.append(entry)
    if inflight:
        yield flush_epoch()


def classify_log(
    log: PMLog,
    layout,
    hints: MechanismHints,
    coalesce_units,
    coalesce_threshold: int = 256,
) -> List[EpochClass]:
    """Classify every fence epoch of a recorded log (see :func:`iter_epochs`)."""
    return [
        epoch
        for epoch, _units in iter_epochs(
            log, layout, hints, coalesce_units, coalesce_threshold
        )
    ]
