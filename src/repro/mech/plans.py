"""Mechanism-targeted crash-plan generation.

Given the per-epoch mechanism classification from
:mod:`repro.mech.recognize`, :class:`MechPlanner` replaces the replayer's
combinatorial subset enumeration with a handful of *targeted* crash plans
per epoch — the states where the recognized mechanism can actually break:

* ``journal_update`` — all-but-commit-record persisted, commit-record-only
  persisted (torn transaction);
* ``log_append`` — torn tail: individual appended entries persisted alone;
* ``log_commit`` — the commit pointer persisted without (some of) the
  entries it publishes, and vice versa;
* ``replica_update`` — primary/replica divergence needs the full subset
  space at today's cap (divergence is inherently pairwise);
* ``bulk_init`` — torn bulk initialization;
* ``unstructured`` — no claim: fall back to capped subset enumeration.

Two invariants make ``--crash-plans mech`` safe to substitute for subset
mode:

1. **Subsequence.**  Every plan is a subset of the combos subset mode
   would enumerate for the same epoch, emitted in the same canonical
   order (size-ascending, lexicographic).  The mech state stream is
   therefore a subsequence of the subset state stream, so triage founds
   clusters in the same order and ``bugs.json`` stays byte-equal whenever
   the plans cover every cluster-founding state.
2. **Fallback on doubt.**  Epochs the recognizers cannot explain — which
   is what fence-discipline bugs look like in the log — enumerate exactly
   as subset mode does, so perturbed traces lose nothing.

A file system opts individual mechanism kinds into more aggressive
policies via ``MechanismHints.plan_overrides`` when its recovery
semantics provably ignore the pruned states (e.g. a redo journal that
discards uncommitted records).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.mech.recognize import EpochClass, MechanismHints, iter_epochs

Combo = Tuple[int, ...]
Plan = Optional[List[Combo]]  # None = full subset enumeration (fallback)

#: Plan policies by name.  ``subset`` means "no pruning for this epoch";
#: ``skip`` emits nothing (legal only when the epoch's boundary states are
#: provably redundant for the FS at hand — never a default).
PLAN_POLICIES = (
    "subset",
    "skip",
    "empty",
    "empty+singles",
    "empty+tail",
    "journal",
    "commit-pairs",
)

#: Conservative defaults per mechanism kind.  These already cut the
#: quadratic pair space to O(n) for every recognized epoch; hints opt
#: specific kinds into sharper policies per FS.
DEFAULT_POLICY: Dict[str, str] = {
    "journal_update": "journal",
    "log_append": "empty+singles",
    "log_commit": "commit-pairs",
    "replica_update": "subset",
    "bulk_init": "empty+singles",
    "unstructured": "subset",
}


def _canonical(combos) -> List[Combo]:
    """Dedup and order combos exactly as subset enumeration emits them."""
    return sorted({tuple(sorted(c)) for c in combos}, key=lambda c: (len(c), c))


def plan_epoch(epoch: EpochClass, max_size: int, policy: str) -> Plan:
    """Targeted combos for one epoch, or ``None`` for full enumeration.

    ``max_size`` is the replayer's effective subset-size bound for the
    epoch (``min(cap, n_units - 1)``); every combo respects it so the plan
    stays inside the subset-mode state space.
    """
    n = epoch.n_units
    if policy == "subset":
        return None
    if policy == "skip":
        return []
    combos: List[Combo] = [()]
    if policy == "empty":
        pass
    elif policy == "empty+singles":
        combos += [(i,) for i in range(n) if max_size >= 1]
    elif policy == "empty+tail":
        # Torn tail: the last unit persisted without its predecessors.
        if n >= 1 and max_size >= 1:
            combos.append((n - 1,))
    elif policy == "journal":
        # The two canonical torn-transaction states: commit record alone,
        # and everything but the commit record (the journal's last unit is
        # its most recently written — the commit/tail write).
        if max_size >= 1:
            combos += [(i,) for i in range(n)]
        if n - 1 <= max_size:
            combos.append(tuple(range(n - 1)))
    elif policy == "commit-pairs":
        # Commit-pointer divergence: each unit alone (pointer without
        # payload, payload without pointer) plus every pair coupling a
        # commit unit with one published unit.
        if max_size >= 1:
            combos += [(i,) for i in range(n)]
        if max_size >= 2:
            commits = [i for i, r in enumerate(epoch.roles) if r == "commit"]
            combos += [
                (i, c)
                for c in commits
                for i in range(n)
                if i != c
            ]
    else:
        raise ValueError(f"unknown plan policy {policy!r}")
    return _canonical(c for c in combos if len(c) <= max_size)


#: Journal-transaction phases for the sequence-aware rules.  One journal
#: transaction, as the recognized FSes write it, is four epochs: *record*
#: the undo/redo entries (invisible until armed), *flag* the transaction
#: valid (the visibility edge), apply the protected in-place writes
#: (a ``log_commit``/``unstructured`` epoch), then *clear* the flag.
_JOURNAL_PHASES = ("idle", "recording", "armed", "applied")


def _journal_step(epoch: EpochClass, phase: str):
    """Advance the journal state machine through one epoch.

    Returns ``(visible, next_phase)`` where ``visible`` is ``None`` when
    the epoch's visibility must be decided by the recovery-read test
    instead (log appends and bulk init).
    """
    kind = epoch.kind
    if kind == "journal_update":
        if phase == "idle":
            # Recording undo/redo entries: recovery ignores a journal
            # whose valid flag is unset, so these writes are invisible.
            return False, "recording"
        if phase == "recording":
            # The valid/commit flag: THE visibility edge of the whole
            # transaction — always worth crashing around.
            return True, "armed"
        if phase == "applied" and epoch.n_units == 1:
            # Clearing the flag after the apply: recovery replays an
            # armed journal idempotently, so the cleared boundary
            # recovers like the applied one.
            return False, "idle"
        # Unexpected journal traffic (e.g. a second flag write, or a
        # multi-unit clear): no claim — visible, restart the machine.
        return True, "idle"
    if kind == "log_commit":
        if phase == "armed":
            return True, "applied"
        if phase == "recording":
            return True, "idle"
        return True, phase
    if kind in ("unstructured", "replica_update"):
        return True, "idle"
    # log_append / bulk_init: recovery reads decide; phase unaffected.
    return None, phase


def _unit_visible(unit, read_bytes) -> bool:
    """True when recovery, mounted at the epoch's boundary, reads any
    byte the unit writes.

    Recovery is deterministic, so if its read set at the boundary image
    is disjoint from the unit's bytes, persisting the unit cannot change
    any value recovery observes — the crash state recovers identically to
    the boundary.  This catches what a static freshness test cannot: an
    append slot already *published* by an earlier (possibly buggy) commit
    is in the read set even though its bytes are still zero.  The read
    set is byte-granular (``recovery_read_set(granularity=1)``): at cache
    -line granularity a published 16-byte log entry's read bleeds into
    the adjacent unpublished slot and defeats the pruning.
    """
    from repro.core.recovery_reads import write_overlap

    return any(write_overlap(e, read_bytes, granularity=1) for e in unit)


class MechPlanner:
    """Precomputed per-epoch crash plans for one recorded workload.

    Built by the harness when ``--crash-plans mech`` is active and handed
    to :func:`repro.core.replayer.enumerate_crash_states`, which consults
    :meth:`plan_for` at each fence epoch.  Classification runs once, up
    front, over the whole log; ``plan_for`` is a dict lookup.
    """

    def __init__(
        self,
        fs_class,
        log,
        device_size: int,
        base_image: Optional[bytes] = None,
        bugs=None,
        cap: Optional[int] = 2,
        coalesce_threshold: int = 256,
        telemetry=None,
    ) -> None:
        # Imported here, not at module top: fs modules import
        # repro.mech.recognize for their hint declarations, and triage
        # imports the fs registry — a top-level import would cycle.
        from repro.core.replayer import coalesce_units
        from repro.core.triage import layout_map_for

        self.cap = cap
        self.recognized: Dict[str, int] = {}
        self.plans_emitted = 0
        self.fallback_epochs = 0
        self._tel = telemetry if telemetry is not None and telemetry.enabled else None
        self._plans: Dict[int, Tuple[int, Plan]] = {}
        hints: Optional[MechanismHints] = fs_class.mechanism_hints()
        if hints is None:
            # No hints declared: every epoch falls back to subset
            # enumeration.  plan_for() misses on every index.
            return
        try:
            layout = layout_map_for(fs_class.name, device_size)
        except Exception:  # noqa: BLE001 — a torn layout means no claims
            return
        # Sequence-aware boundary-redundancy rules (opt-in per FS): drop
        # an epoch's empty combo when the boundary it reproduces was
        # already emitted — because the previous epoch's writes are
        # invisible to recovery (unread appends, unarmed journal
        # records), because a post-syscall state at the same persistent
        # base preceded it, or because it is the pristine pre-workload
        # base — and drop append/bulk singles whose unit recovery never
        # reads at the boundary.
        seq = hints.sequence_rules and base_image is not None
        if seq:
            from repro.core.recovery_reads import recovery_read_set
        # The boundary image evolves by per-epoch deltas; keep it as the
        # shared base plus an ordered overlay so each read-set mount is
        # O(overlay + bytes read) instead of a device copy per epoch.
        overlay = [] if seq else None
        phase = "idle"
        prev_visible = True
        first_epoch = True
        for epoch, units in iter_epochs(
            log, layout, hints, coalesce_units, coalesce_threshold
        ):
            self.recognized[epoch.kind] = self.recognized.get(epoch.kind, 0) + 1
            if self._tel is not None:
                self._tel.count(f"mech.recognized.{epoch.kind}")
            max_size = epoch.n_units - 1
            if cap is not None and cap < max_size:
                max_size = cap
            policy = hints.plan_overrides.get(
                epoch.kind, DEFAULT_POLICY[epoch.kind]
            )
            plan = plan_epoch(epoch, max_size, policy)
            if seq:
                entries = [e for unit in units for e in unit]
                armed_apply = epoch.kind == "log_commit" and phase == "armed"
                visible, phase = _journal_step(epoch, phase)
                unit_vis = None
                if visible is None:
                    # Append/bulk epoch: mount the boundary image (with
                    # the same seeded-bug configuration the campaign
                    # runs) on a read-tracking device and test each unit
                    # against recovery's actual read set.
                    reads = recovery_read_set(
                        fs_class, base_image, bugs=bugs, granularity=1,
                        writes=overlay,
                    )
                    unit_vis = [_unit_visible(u, reads) for u in units]
                    visible = any(unit_vis)
                if plan is not None:
                    if armed_apply:
                        # Rule F: in-place applies under an armed
                        # journal — recovery replays the journal over
                        # these slots regardless of which subset
                        # persisted, so only the armed boundary (the
                        # empty combo) is a distinct recovery input.
                        plan = [c for c in plan if c == ()]
                    if unit_vis is not None:
                        # Rule A: a single whose unit recovery never
                        # reads recovers identically to the boundary.
                        plan = [
                            c for c in plan
                            if len(c) != 1 or unit_vis[c[0]]
                        ]
                    if first_epoch or not prev_visible or epoch.post_aligned:
                        # Rules D / B / C: the empty combo duplicates
                        # the pristine base, the previous (invisible)
                        # epoch's boundary, or a post-syscall state
                        # at the same base.
                        plan = [c for c in plan if c != ()]
                for e in entries:
                    overlay.append((e.addr, e.data))
                prev_visible = visible
                first_epoch = False
            if plan is None:
                self.fallback_epochs += 1
                if self._tel is not None:
                    self._tel.count("mech.fallback_epochs")
            self._plans[epoch.fence_index] = (epoch.n_units, plan)

    def plan_for(self, fence_index: int, n_units: int) -> Plan:
        """The epoch's combo list, or ``None`` to enumerate the full subset.

        ``n_units`` is the replayer's coalesced unit count; a mismatch with
        the classification-time count (impossible while both sides share
        one coalescer, but cheap to check) falls back rather than emitting
        combos against the wrong index space.
        """
        expected, plan = self._plans.get(fence_index, (n_units, None))
        if plan is None or expected != n_units:
            return None
        self.plans_emitted += len(plan)
        if self._tel is not None:
            self._tel.count("mech.plans.emitted", len(plan))
        return plan

    def subset_size(self, n_units: int) -> int:
        """How many states subset mode would emit for an ``n_units`` epoch."""
        max_size = n_units - 1
        if self.cap is not None and self.cap < max_size:
            max_size = self.cap
        return sum(
            1
            for size in range(0, max_size + 1)
            for _ in itertools.combinations(range(n_units), size)
        )
