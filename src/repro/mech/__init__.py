"""Mechanism-aware crash planning (``--crash-plans mech``).

Recognize the persistence mechanism behind each fence epoch's store group
(:mod:`repro.mech.recognize`) and emit a handful of targeted crash plans
per mechanism instead of the capped combinatorial subset space
(:mod:`repro.mech.plans`), falling back to subset enumeration for any
epoch the recognizers cannot explain.
"""

from repro.mech.recognize import (
    MECH_KINDS,
    UNIT_ROLES,
    EpochClass,
    MechanismHints,
    classify_log,
    classify_roles,
    iter_epochs,
    unit_role,
)
from repro.mech.plans import DEFAULT_POLICY, PLAN_POLICIES, MechPlanner, plan_epoch

__all__ = [
    "MECH_KINDS",
    "UNIT_ROLES",
    "EpochClass",
    "MechanismHints",
    "classify_log",
    "classify_roles",
    "iter_epochs",
    "unit_role",
    "DEFAULT_POLICY",
    "PLAN_POLICIES",
    "MechPlanner",
    "plan_epoch",
]
