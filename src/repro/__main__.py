"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list-bugs``
    Print the Table-1 bug catalogue.
``test``
    Run one workload through Chipmunk against a file system.
``ace``
    Run an ACE campaign (seq-1 and optionally seq-2) against a file system.
``fuzz``
    Run the gray-box fuzzer against a file system for a time budget.
``campaign``
    Run a campaign across a parallel worker pool (the paper's ten-VM
    split as a subsystem) with checkpoint/resume; see ``--workers``,
    ``--out``, ``--resume``.  ``--shared-memo`` dedups clean check
    verdicts across all workers through an engine-hosted service;
    ``--memo-server HOST:PORT`` attaches to an external ``memod`` so
    campaigns on several hosts share one table.
``memod``
    Serve a standalone shared check-memo service (the multi-host side of
    ``campaign --memo-server``); prints the bound address on startup.
``stats``
    Render a campaign summary from one or more JSONL traces written with
    ``--trace`` (multiple files merge — e.g. a parallel campaign's
    per-worker traces), or directly from a campaign directory (the merged
    ``trace.jsonl`` / per-worker traces are auto-discovered); ``--json``
    emits the same aggregates as JSON.
``coverage``
    Exploration-coverage analytics: in-flight window CDFs, fence/store
    histograms, persistence-mechanism breakdowns, memo-miss attribution,
    and recovery-read redundancy, from a campaign directory (journal) or
    trace files; ``--out`` writes the markdown report to a file.
``watch``
    Live dashboard for a running campaign directory: progress, throughput,
    ETA, per-worker liveness, memo hit-rate, bugs so far.  Exits when the
    campaign completes (``--once`` renders a single frame).
``diff``
    Compare two campaigns (directories, ``bugs.json`` files, or telemetry
    traces): bug clusters are matched through the provenance-aware triage
    layer and classified appeared/disappeared/persisting, headline metrics
    are reported as deltas.  Exits non-zero on bug-set divergence;
    ``--strict`` additionally demands byte-level report equality (the old
    ``cmp bugs.json`` CI contract).
``profile``
    Run workloads with the hot-path profiler enabled and print per-stage /
    per-callsite wall-time and byte attribution (bytes materialized,
    overlay bytes applied, digest bytes hashed, rollback bytes);
    ``--chrome OUT`` also exports the span timeline as a Chrome trace.
``perf``
    Render the append-only benchmark history ledger
    (``BENCH_history.jsonl``): per-bench trend tables plus regression
    flagging against the same-host median; ``--check`` turns flags into a
    non-zero exit for CI.
``explain``
    Offline bug forensics: rebuild the crash state of a saved report
    (``--save-reports`` / a campaign's ``bugs.json``), confirm it still
    reproduces, optionally minimize the culprit store set
    (``--minimize``), and print the fence-epoch ordering timeline plus an
    annotated image diff; ``--chrome OUT`` also writes the lineage as a
    Chrome trace.

The testing commands accept ``--trace FILE`` (write a JSONL telemetry
trace) and ``--metrics`` (print the metrics snapshot); the file system can
be given positionally or with ``--fs``.  ``ace``/``fuzz``/``campaign``
handle Ctrl-C gracefully: partial results are flushed and the exit status
is 130 (a killed ``campaign`` additionally resumes from its journal).

Examples
--------

::

    python -m repro list-bugs
    python -m repro test nova --bugs 4 --op "mkdir /A" --op "creat /foo" \
        --op "rename /foo /A/bar"
    python -m repro ace pmfs --seq 2 --max-workloads 500
    python -m repro ace --fs nova --trace /tmp/t.jsonl
    python -m repro fuzz winefs --seconds 30 --seed 7
    python -m repro campaign nova --workers 4 --seq 2 --out /tmp/camp
    python -m repro campaign --resume /tmp/camp --workers 4
    python -m repro stats /tmp/t.jsonl --chrome /tmp/t.chrome.json
    python -m repro stats /tmp/camp
    python -m repro coverage /tmp/camp --out /tmp/camp/coverage.md
    python -m repro watch /tmp/camp --interval 2
    python -m repro ace nova --seq 2 --save-reports /tmp/bugs.json
    python -m repro explain /tmp/bugs.json --minimize --chrome /tmp/bug.trace
    python -m repro diff /tmp/camp-subset /tmp/camp-mech --strict --out diff.md
    python -m repro profile nova --max-workloads 10 --out profile.md
    python -m repro perf BENCH_history.jsonl --check
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import sys
from typing import List, Optional

from repro.core import Chipmunk, ChipmunkConfig
from repro.fs.bugs import BUG_REGISTRY, BugConfig
from repro.fs.registry import FS_CLASSES
from repro.obs import Telemetry
from repro.obs.campaign import CampaignStats
from repro.obs.tracing import jsonl_to_chrome
from repro.pm.backend import BACKEND_CHOICES
from repro.workloads import ace
from repro.workloads.fuzzer import WorkloadFuzzer
from repro.workloads.ops import Op


def _parse_op(text: str) -> Op:
    """Parse ``"write /foo 0 65 512"``-style op specifications."""
    parts = text.split()
    if not parts:
        raise argparse.ArgumentTypeError("empty operation")
    name, args = parts[0], parts[1:]
    converted = tuple(int(a) if a.lstrip("-").isdigit() else a for a in args)
    return Op(name, converted)


def _bug_config(fs_name: str, bug_ids: List[int], fixed: bool) -> BugConfig:
    if fixed:
        return BugConfig.fixed()
    if bug_ids:
        return BugConfig.only(*bug_ids)
    return BugConfig.buggy(fs_name)


def _telemetry_for(args, generator: str) -> Optional[Telemetry]:
    """Build a Telemetry object when ``--trace``/``--metrics`` ask for one."""
    if not getattr(args, "trace", None) and not getattr(args, "metrics", False):
        return None
    tel = Telemetry()
    tel.meta.update(fs=args.fs, generator=generator)
    tel.event("campaign_start", fs=args.fs, generator=generator)
    return tel


def _finish_telemetry(args, tel: Optional[Telemetry]) -> None:
    """Export the trace and/or print the metrics snapshot, as requested."""
    if tel is None:
        return
    if getattr(args, "trace", None):
        try:
            n = tel.export_jsonl(args.trace)
        except OSError as exc:
            print(
                f"[telemetry] error: cannot write trace {args.trace!r}: "
                f"{exc.strerror or exc}",
                file=sys.stderr,
            )
        else:
            print(f"[telemetry] wrote {n} trace record(s) to {args.trace}")
    if getattr(args, "metrics", False):
        print("[telemetry] metrics snapshot:")
        for record in tel.metrics.snapshot():
            if record["kind"] == "histogram":
                print(
                    f"  {record['name']}: count={record['count']} "
                    f"sum={record['sum']:.6g} min={record['min']} "
                    f"max={record['max']}"
                )
            else:
                print(f"  {record['name']}: {record['value']}")


def _save_reports(path: str, reports) -> None:
    """Write bug reports (with provenance) as a ``{"reports": [...]}`` doc."""
    doc = {"reports": [r.to_dict() for r in reports]}
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
    except OSError as exc:
        print(
            f"[reports] error: cannot write {path!r}: {exc.strerror or exc}",
            file=sys.stderr,
        )
    else:
        print(f"[reports] saved {len(doc['reports'])} report(s) to {path}")


def cmd_list_bugs(_args) -> int:
    print(f"{'id':>3}  {'file systems':<20} {'type':<6} consequence")
    print("-" * 78)
    for bug_id, spec in sorted(BUG_REGISTRY.items()):
        print(
            f"{bug_id:>3}  {','.join(spec.filesystems):<20} "
            f"{spec.bug_type:<6} {spec.consequence}"
        )
    return 0


def cmd_test(args) -> int:
    tel = _telemetry_for(args, "test")
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(
            cap=args.cap,
            memoize=args.memoize,
            crash_plans=args.crash_plans,
            image_backend=args.image_backend,
        ),
        telemetry=tel,
    )
    result = chipmunk.test_workload(args.op or [Op("creat", ("/probe",))])
    print(result.summary())
    for cluster in result.clusters:
        print()
        print(cluster.describe())
    if args.save_reports:
        _save_reports(args.save_reports, result.reports)
    _finish_telemetry(args, tel)
    return 1 if result.buggy else 0


def cmd_ace(args) -> int:
    tel = _telemetry_for(args, "ace")
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(
            cap=args.cap,
            memoize=args.memoize,
            crash_plans=args.crash_plans,
            image_backend=args.image_backend,
        ),
        telemetry=tel,
    )
    mode = "pm" if FS_CLASSES()[args.fs].strong_guarantees else "fsync"
    stats = CampaignStats(fs_name=args.fs, generator="ace", telemetry=tel)
    saved_reports: List = []
    interrupted = False
    try:
        for seq in range(1, args.seq + 1):
            workloads = ace.generate(seq, mode=mode)
            if args.max_workloads:
                workloads = itertools.islice(workloads, args.max_workloads)
            for w in workloads:
                result = chipmunk.test_workload(w.core, setup=w.setup)
                stats.add_result(result)
                if args.save_reports:
                    saved_reports.extend(result.reports)
    except KeyboardInterrupt:
        # Flush what we have rather than dying with a raw traceback: the
        # partial summary and telemetry of a long campaign are still data.
        interrupted = True
        print("\n[interrupted] flushing partial campaign results",
              file=sys.stderr)
    print(
        f"{stats.n_workloads} workloads, {stats.n_crash_states} crash states, "
        f"{len(stats.clusters)} clusters, {stats.wall_time:.1f}s"
        + (" [interrupted]" if interrupted else "")
    )
    for cluster in stats.clusters:
        print()
        print(cluster.describe())
    if args.save_reports:
        _save_reports(args.save_reports, saved_reports)
    _finish_telemetry(args, tel)
    if interrupted:
        return 130
    return 1 if stats.clusters else 0


def cmd_fuzz(args) -> int:
    tel = _telemetry_for(args, "fuzz")
    if tel is not None:
        # The seed lands in the trace header so a campaign is reproducible
        # from its trace file alone.
        tel.meta["seed"] = args.seed
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(
            cap=args.cap,
            memoize=args.memoize,
            crash_plans=args.crash_plans,
            image_backend=args.image_backend,
        ),
        telemetry=tel,
    )
    fuzzer = WorkloadFuzzer(chipmunk, seed=args.seed)
    interrupted = False
    try:
        stats = fuzzer.run(time_budget=args.seconds)
    except KeyboardInterrupt:
        # fuzzer.run finalizes its stats on the way out, so the partial
        # campaign is fully reportable.
        interrupted = True
        stats = fuzzer.stats
        print("\n[interrupted] flushing partial campaign results",
              file=sys.stderr)
    print(
        f"{stats.executions} executions, {stats.crash_states} crash states, "
        f"coverage {stats.coverage_points}, corpus {stats.corpus_size}, "
        f"{stats.clusters} clusters, {stats.elapsed:.1f}s"
        + (" [interrupted]" if interrupted else "")
    )
    for cluster in fuzzer.clusters:
        print()
        print(cluster.describe())
    _finish_telemetry(args, tel)
    if interrupted:
        return 130
    return 1 if stats.clusters else 0


def cmd_campaign(args) -> int:
    from repro.campaign import (
        CampaignEngine,
        CampaignSpec,
        CheckpointJournal,
        EngineConfig,
        SpecMismatch,
    )

    if args.resume:
        # Resuming re-reads the spec from the journal: the campaign is
        # defined by what was started, not by what flags accompany the
        # resume.  Engine knobs (--workers etc.) may differ freely.
        campaign_dir = args.resume
        state = CheckpointJournal.replay(campaign_dir)
        if state.spec_dict is None:
            print(f"error: no campaign journal in {campaign_dir!r}",
                  file=sys.stderr)
            return 2
        spec = CampaignSpec.from_dict(state.spec_dict)
        if args.fs is not None and args.fs != spec.fs:
            print(
                f"error: journal in {campaign_dir!r} is a {spec.fs} campaign, "
                f"not {args.fs}", file=sys.stderr,
            )
            return 2
    else:
        if args.fs is None:
            print("error: campaign: a file system is required "
                  "(positional or --fs), or --resume DIR", file=sys.stderr)
            return 2
        campaign_dir = args.out or f"campaign-{args.fs}-{args.generator}"
        bug_ids: Optional[List[int]] = None
        if args.fixed:
            bug_ids = []
        elif args.bugs:
            bug_ids = list(args.bugs)
        try:
            spec = CampaignSpec(
                fs=args.fs,
                generator=args.generator,
                bug_ids=bug_ids,
                cap=args.cap,
                seq=args.seq,
                max_workloads=args.max_workloads,
                seed=args.seed,
                segments=args.segments,
                executions=args.executions,
                trace=args.trace,
                memoize=args.memoize,
                crash_plans=args.crash_plans,
                profile=args.profile,
                image_backend=args.image_backend,
                shared_memo=args.shared_memo or bool(args.memo_server),
                memo_address=args.memo_server,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    engine = CampaignEngine(
        spec,
        campaign_dir,
        EngineConfig(
            workers=args.workers,
            batch_size=args.batch,
            item_timeout=args.timeout,
            max_retries=args.max_retries,
        ),
        resume=bool(args.resume),
    )
    try:
        merged = engine.run()
    except SpecMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(merged.console_summary())
    for cluster in merged.clusters:
        print()
        print(cluster.describe())
    print(f"\n[campaign] dir: {campaign_dir}  report: "
          f"{campaign_dir}/report.md  journal: {campaign_dir}/journal.jsonl")
    if merged.trace_path:
        print(f"[campaign] merged telemetry trace: {merged.trace_path}")
    if merged.interrupted:
        return 130
    return 1 if merged.clusters else 0


def _expand_stats_targets(targets: List[str]) -> List[str]:
    """Expand campaign directories among stats targets into trace files.

    Prefers the merged ``trace.jsonl``; falls back to per-worker traces
    (an interrupted campaign has not merged yet).  Raises ``ValueError``
    with a hint when a directory holds no traces at all.
    """
    import glob as _glob

    traces: List[str] = []
    for target in targets:
        if not os.path.isdir(target):
            traces.append(target)
            continue
        merged = os.path.join(target, "trace.jsonl")
        if os.path.exists(merged):
            traces.append(merged)
            continue
        workers = sorted(_glob.glob(
            os.path.join(target, "worker-*.trace.jsonl")
        ))
        if not workers:
            raise ValueError(
                f"no telemetry traces in {target!r} — run the campaign "
                f"with --trace (expected trace.jsonl or "
                f"worker-*.trace.jsonl)"
            )
        traces.extend(workers)
    return traces


def cmd_memod(args) -> int:
    from repro.memo.server import run_memod

    return run_memod(
        host=args.host, port=args.port, max_entries=args.max_entries
    )


def cmd_stats(args) -> int:
    try:
        traces: List[str] = _expand_stats_targets(args.traces)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        stats = CampaignStats.from_traces(traces)
    except OSError as exc:
        print(f"error: cannot read trace: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        print(f"error: not a JSONL telemetry trace: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(stats.to_json_dict(), sort_keys=True, indent=2))
        return 0
    if len(traces) > 1:
        print(f"[stats] merged {len(traces)} trace files")
    print(stats.render())
    if args.chrome:
        if len(traces) > 1:
            print("error: --chrome requires a single trace file",
                  file=sys.stderr)
            return 2
        n = jsonl_to_chrome(traces[0], args.chrome)
        print(f"\nwrote {n} Chrome trace event(s) to {args.chrome}")
    return 0


def cmd_coverage(args) -> int:
    from repro.obs.coverage import (
        coverage_from_campaign_dir,
        coverage_from_traces,
    )

    targets: List[str] = args.target
    try:
        if len(targets) == 1 and os.path.isdir(targets[0]):
            campaign_dir = targets[0]
            if not os.path.exists(os.path.join(campaign_dir, "journal.jsonl")):
                print(
                    f"error: no journal.jsonl in {campaign_dir!r} "
                    f"(not a campaign directory?)",
                    file=sys.stderr,
                )
                return 2
            report = coverage_from_campaign_dir(campaign_dir)
        else:
            for target in targets:
                if os.path.isdir(target):
                    print(
                        "error: mixing campaign directories and trace files "
                        "is not supported — pass one directory, or only "
                        "trace files",
                        file=sys.stderr,
                    )
                    return 2
            report = coverage_from_traces(targets)
    except OSError as exc:
        print(f"error: cannot read coverage input: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        print(f"error: not a JSONL telemetry trace: {exc}", file=sys.stderr)
        return 2
    if not report.workloads:
        print("error: no workload results found in the input(s)",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json_dict(), sort_keys=True, indent=2))
        return 0
    markdown = report.render_markdown()
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(markdown)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"[coverage] wrote {args.out} "
              f"({report.workloads} workload(s), "
              f"{report.states_checked} checked state(s))")
    else:
        print(markdown)
    return 0


def cmd_watch(args) -> int:
    from repro.campaign.watch import watch

    return watch(
        args.dir,
        interval=args.interval,
        once=args.once,
        timeout=args.timeout,
    )


def cmd_diff(args) -> int:
    from repro.obs.diff import diff_sides, load_side, render_diff

    try:
        side_a = load_side(args.a)
        side_b = load_side(args.b)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read diff input: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        print(f"error: not a campaign/report input: {exc}", file=sys.stderr)
        return 2
    try:
        diff = diff_sides(side_a, side_b, strict=args.strict)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    text = render_diff(diff, tol=args.tol)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"[diff] wrote {args.out}")
    else:
        print(text)
    if diff.clusters_compared or diff.strict_equal is not None:
        if diff.clusters_compared:
            print(
                f"[diff] {len(diff.appeared)} appeared, "
                f"{len(diff.disappeared)} disappeared, "
                f"{len(diff.persisting)} persisting — "
                + ("DIVERGENT" if diff.divergent else "bug sets match")
            )
        return 1 if diff.divergent else 0
    # Trace-vs-trace comparison: metric deltas only, nothing to gate on.
    print("[diff] metrics-only comparison (no reports on either side)")
    return 0


def cmd_profile(args) -> int:
    from repro.obs.profile import merge_profiles, render_profile

    tel = _telemetry_for(args, "profile")
    if args.chrome and tel is None:
        # The Chrome export rides on the span layer, so force telemetry on
        # even when --trace/--metrics were not requested.
        tel = Telemetry()
        tel.meta.update(fs=args.fs, generator="profile")
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(
            cap=args.cap,
            memoize=args.memoize,
            crash_plans=args.crash_plans,
            profile=True,
            image_backend=args.image_backend,
        ),
        telemetry=tel,
    )
    results: List = []
    interrupted = False
    try:
        if args.op:
            results.append(chipmunk.test_workload(args.op))
        else:
            mode = "pm" if FS_CLASSES()[args.fs].strong_guarantees else "fsync"
            for seq in range(1, args.seq + 1):
                workloads = ace.generate(seq, mode=mode)
                if args.max_workloads:
                    workloads = itertools.islice(workloads, args.max_workloads)
                for w in workloads:
                    results.append(chipmunk.test_workload(w.core, setup=w.setup))
    except KeyboardInterrupt:
        interrupted = True
        print("\n[interrupted] rendering partial profile", file=sys.stderr)
    if not results:
        print("error: no workloads ran", file=sys.stderr)
        return 2
    merged = merge_profiles([r.profile for r in results if r.profile])
    elapsed = sum(r.elapsed for r in results)
    states = sum(r.n_crash_states for r in results)
    stages = dict(merged.get("stages", {}))
    attributed = sum(t for s, t in stages.items() if s != "other")
    share = attributed / elapsed if elapsed else 0.0
    header = [
        f"# Profile: {args.fs}",
        "",
        f"- workloads: {len(results)}",
        f"- crash states: {states}",
        f"- harness elapsed: {elapsed:.4f}s",
        f"- attributed to pipeline stages: {attributed:.4f}s "
        f"({share * 100:.1f}% of elapsed)",
        "",
        "",
    ]
    text = "\n".join(header) + render_profile(merged, top=args.top)
    if args.json:
        print(json.dumps(merged, sort_keys=True, indent=2))
    elif args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 2
        print(f"[profile] wrote {args.out} ({len(results)} workload(s), "
              f"{states} crash state(s))")
    else:
        print(text)
    if args.chrome and tel is not None:
        from repro.obs.tracing import spans_to_chrome

        doc = spans_to_chrome(tel.export_records())
        try:
            with open(args.chrome, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        except OSError as exc:
            print(f"error: cannot write {args.chrome!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        print(f"[profile] wrote {len(doc['traceEvents'])} Chrome trace "
              f"event(s) to {args.chrome}")
    _finish_telemetry(args, tel)
    return 130 if interrupted else 0


def cmd_perf(args) -> int:
    from repro.obs.history import (
        DEFAULT_LEDGER,
        check_regressions,
        read_ledger,
        render_history,
    )

    path = args.ledger or DEFAULT_LEDGER
    try:
        records, torn = read_ledger(path)
    except OSError as exc:
        print(f"error: cannot read {path!r}: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    if not records:
        print(f"error: no ledger records in {path!r} (benchmarks append "
              "to the ledger when run with --history)", file=sys.stderr)
        return 2
    if torn:
        print(f"[perf] warning: skipped {torn} torn/unparsable line(s)",
              file=sys.stderr)
    if args.json:
        print(json.dumps(records, sort_keys=True, indent=2))
        return 0
    print(render_history(records, last=args.last, bench=args.bench,
                         tol=args.tol))
    if args.check:
        flags = check_regressions(records, tol=args.tol, last=args.last)
        if args.bench:
            flags = [f for f in flags if f["bench"] == args.bench]
        return 1 if flags else 0
    return 0


def cmd_explain(args) -> int:
    from repro.core.report import BugReport
    from repro.forensics.explain import explain_report, load_report_dicts

    if args.all:
        return _cmd_explain_all(args)
    if os.path.isdir(args.report):
        print(
            f"error: {args.report!r} is a directory — pass --all for batch "
            "forensics, or point at a report JSON file",
            file=sys.stderr,
        )
        return 2
    try:
        dicts = load_report_dicts(args.report)
    except OSError as exc:
        print(f"error: cannot read {args.report!r}: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, ValueError) as exc:
        print(f"error: not a bug-report document: {exc}", file=sys.stderr)
        return 2
    if not dicts:
        print(f"error: {args.report!r} contains no reports", file=sys.stderr)
        return 2
    if not (0 <= args.index < len(dicts)):
        print(
            f"error: --index {args.index} out of range "
            f"({len(dicts)} report(s) in {args.report!r})",
            file=sys.stderr,
        )
        return 2
    report = BugReport.from_dict(dicts[args.index])
    if len(dicts) > 1:
        print(f"[explain] report {args.index} of {len(dicts)} in {args.report}")
    try:
        explanation = explain_report(
            report,
            minimize=args.minimize,
            budget=args.budget,
            chrome_out=args.chrome,
            minimize_ops=args.minimize_workload,
            workload_budget=args.workload_budget,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(explanation.text)
    return 0 if explanation.reproduced else 3


def _cmd_explain_all(args) -> int:
    """Batch forensics over a campaign directory (or report file)."""
    from repro.forensics.batch import FORENSICS_BASENAME, explain_campaign

    target = args.report
    if os.path.isdir(target) and not os.path.exists(
        os.path.join(target, "bugs.json")
    ):
        print(f"error: no bugs.json in {target!r} (not a campaign directory?)",
              file=sys.stderr)
        return 2
    try:
        batch = explain_campaign(
            target,
            minimize=args.minimize,
            budget=args.budget,
            minimize_ops=args.minimize_workload,
            workload_budget=args.workload_budget,
            out=args.out,
        )
    except OSError as exc:
        print(f"error: cannot read {target!r}: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, ValueError) as exc:
        print(f"error: not a bug-report document: {exc}", file=sys.stderr)
        return 2
    out_path = args.out or os.path.join(
        target if os.path.isdir(target) else (os.path.dirname(target) or "."),
        FORENSICS_BASENAME,
    )
    stats = batch.cache.stats()
    print(
        f"[explain] {len(batch.explanations)} report(s) explained, "
        f"{batch.reproduced} reproduced, {len(batch.clusters)} cluster(s); "
        f"{stats['recordings']} recording(s) "
        f"({stats['session_hits']} session cache hit(s)), "
        f"{stats['verdict_hits']} verdict cache hit(s)"
    )
    if batch.skipped:
        print(f"[explain] skipped {len(batch.skipped)} report(s) without "
              f"provenance")
    print(f"wrote {out_path}")
    return 0 if all(e.reproduced for e in batch.explanations) else 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Chipmunk reproduction: crash-consistency testing for "
        "simulated PM file systems.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-bugs", help="print the Table-1 bug catalogue")

    def add_common(p):
        p.add_argument(
            "fs",
            nargs="?",
            choices=sorted(FS_CLASSES()),
            help="file system (or use --fs)",
        )
        p.add_argument(
            "--fs",
            dest="fs_flag",
            choices=sorted(FS_CLASSES()),
            help="file system (alternative to the positional argument)",
        )
        p.add_argument(
            "--trace",
            metavar="FILE",
            help="write a JSONL telemetry trace (see `python -m repro stats`)",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="print the telemetry metrics snapshot after the run",
        )
        p.add_argument(
            "--bugs",
            type=int,
            nargs="*",
            default=[],
            help="enable only these bug ids (default: all of the FS's bugs)",
        )
        p.add_argument(
            "--fixed", action="store_true", help="run the fully fixed variant"
        )
        p.add_argument("--cap", type=int, default=2, help="replay cap (default 2)")
        p.add_argument(
            "--no-memoize",
            dest="memoize",
            action="store_false",
            help="disable content-addressed check memoization (eager "
            "whole-image dedup; same reports, slower)",
        )
        p.add_argument(
            "--crash-plans",
            choices=("subset", "mech"),
            default="subset",
            help="crash-plan selection: capped subset enumeration "
            "(default) or mechanism-targeted plans with subset fallback",
        )
        p.add_argument(
            "--image-backend",
            choices=BACKEND_CHOICES,
            default="auto",
            help="crash-image replay backend: auto picks numpy when "
            "importable, falling back to the pure-python reference "
            "(same reports either way)",
        )

    p_test = sub.add_parser("test", help="test one workload")
    add_common(p_test)
    p_test.add_argument(
        "--op",
        type=_parse_op,
        action="append",
        help='operation, e.g. "write /foo 0 65 512" (repeatable)',
    )
    p_test.add_argument(
        "--save-reports", metavar="FILE",
        help="save bug reports (with provenance) as JSON for `repro explain`",
    )

    p_ace = sub.add_parser("ace", help="run an ACE campaign")
    add_common(p_ace)
    p_ace.add_argument("--seq", type=int, default=1, choices=(1, 2, 3))
    p_ace.add_argument("--max-workloads", type=int, default=0)
    p_ace.add_argument(
        "--save-reports", metavar="FILE",
        help="save bug reports (with provenance) as JSON for `repro explain`",
    )

    p_fuzz = sub.add_parser("fuzz", help="run the gray-box fuzzer")
    add_common(p_fuzz)
    p_fuzz.add_argument("--seconds", type=float, default=30.0)
    p_fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fuzzer RNG seed; recorded in the trace header so a campaign "
        "is reproducible from its trace file",
    )

    p_camp = sub.add_parser(
        "campaign",
        help="run a parallel campaign with checkpoint/resume",
    )
    p_camp.add_argument(
        "fs",
        nargs="?",
        choices=sorted(FS_CLASSES()),
        help="file system (or use --fs; not needed with --resume)",
    )
    p_camp.add_argument(
        "--fs",
        dest="fs_flag",
        choices=sorted(FS_CLASSES()),
        help="file system (alternative to the positional argument)",
    )
    p_camp.add_argument(
        "--generator", choices=("ace", "fuzz"), default="ace",
        help="workload generator (default: ace)",
    )
    p_camp.add_argument("--workers", type=int, default=2,
                        help="worker processes (default 2)")
    p_camp.add_argument("--out", metavar="DIR",
                        help="campaign directory (journal, report, traces); "
                        "default campaign-<fs>-<generator>")
    p_camp.add_argument("--resume", metavar="DIR",
                        help="resume a killed campaign from its directory, "
                        "skipping journaled workloads")
    p_camp.add_argument("--seq", type=int, default=1, choices=(1, 2, 3),
                        help="ACE sequence lengths to run (1..seq)")
    p_camp.add_argument("--max-workloads", type=int, default=0,
                        help="cap ACE workloads per sequence length")
    p_camp.add_argument("--seed", type=int, default=0,
                        help="fuzzer base seed (seed space is split into "
                        "segments)")
    p_camp.add_argument("--segments", type=int, default=4,
                        help="fuzzer seed segments (work items)")
    p_camp.add_argument("--executions", type=int, default=25,
                        help="fuzzer executions per segment")
    p_camp.add_argument("--bugs", type=int, nargs="*", default=[],
                        help="enable only these bug ids")
    p_camp.add_argument("--fixed", action="store_true",
                        help="run the fully fixed variant")
    p_camp.add_argument("--cap", type=int, default=2,
                        help="replay cap (default 2)")
    p_camp.add_argument(
        "--no-memoize",
        dest="memoize",
        action="store_false",
        help="disable content-addressed check memoization (eager "
        "whole-image dedup; same reports, slower)",
    )
    p_camp.add_argument(
        "--crash-plans",
        choices=("subset", "mech"),
        default="subset",
        help="crash-plan selection: capped subset enumeration (default) "
        "or mechanism-targeted plans with subset fallback",
    )
    p_camp.add_argument(
        "--image-backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="crash-image replay backend for every worker: auto picks "
        "numpy when importable, falling back to the pure-python reference",
    )
    p_camp.add_argument(
        "--shared-memo",
        action="store_true",
        help="share one check-memo table across all workers (engine-hosted "
        "loopback service): clean verdicts dedup campaign-wide, bug "
        "reports are unaffected",
    )
    p_camp.add_argument(
        "--memo-server",
        metavar="HOST:PORT",
        help="attach to an external `repro memod` shared check-memo "
        "service (multi-host campaigns dedup against one table); "
        "implies --shared-memo",
    )
    p_camp.add_argument("--batch", type=int, default=8,
                        help="work items per dispatch (default 8)")
    p_camp.add_argument("--timeout", type=float, default=60.0,
                        help="per-workload timeout in seconds before a "
                        "worker is presumed hung (default 60)")
    p_camp.add_argument("--max-retries", type=int, default=2,
                        help="re-executions per workload before quarantine")
    p_camp.add_argument("--trace", action="store_true",
                        help="write per-worker telemetry traces plus a "
                        "merged trace.jsonl into the campaign directory")
    p_camp.add_argument("--profile", action="store_true",
                        help="enable hot-path time/byte attribution in "
                        "every worker (recorded per result; see "
                        "`python -m repro profile`)")

    p_memod = sub.add_parser(
        "memod",
        help="serve a standalone shared check-memo service for "
        "`campaign --memo-server` (multi-host dedup)",
    )
    p_memod.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 for multi-host)",
    )
    p_memod.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = pick an ephemeral port and print it)",
    )
    p_memod.add_argument(
        "--max-entries", type=int, default=262144,
        help="LRU cap on clean verdict entries (default 262144; "
        "0 = unbounded)",
    )

    p_stats = sub.add_parser(
        "stats",
        help="render a campaign summary from JSONL trace(s) or a campaign "
        "directory",
    )
    p_stats.add_argument(
        "traces", nargs="+", metavar="trace",
        help="trace file(s) written with --trace, or a campaign directory "
        "(auto-discovers trace.jsonl / worker-*.trace.jsonl); multiple "
        "files merge",
    )
    p_stats.add_argument(
        "--chrome",
        metavar="OUT",
        help="also convert the trace to a Chrome trace-event file "
        "(load in chrome://tracing or Perfetto); single trace only",
    )
    p_stats.add_argument(
        "--json",
        action="store_true",
        help="emit the campaign aggregates as JSON instead of tables",
    )

    p_cov = sub.add_parser(
        "coverage",
        help="exploration-coverage analytics (window CDFs, store "
        "breakdowns, memo-miss attribution) from a campaign dir or traces",
    )
    p_cov.add_argument(
        "target", nargs="+", metavar="TARGET",
        help="a campaign directory (reads its checkpoint journal) or one "
        "or more --trace JSONL files",
    )
    p_cov.add_argument(
        "--out", metavar="FILE",
        help="write the markdown report to FILE instead of stdout",
    )
    p_cov.add_argument(
        "--json", action="store_true",
        help="emit the aggregates as JSON instead of markdown",
    )

    p_watch = sub.add_parser(
        "watch",
        help="live dashboard for a running campaign directory",
    )
    p_watch.add_argument(
        "dir", metavar="CAMPAIGN_DIR",
        help="campaign directory (the one passed to `campaign --out`)",
    )
    p_watch.add_argument(
        "--interval", type=float, default=1.0,
        help="poll interval in seconds (default 1)",
    )
    p_watch.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (for scripts and tests)",
    )
    p_watch.add_argument(
        "--timeout", type=float, default=None,
        help="give up (exit 3) after this many seconds without completion",
    )

    p_diff = sub.add_parser(
        "diff",
        help="compare two campaigns: bug-cluster divergence (exit status) "
        "plus metric deltas",
    )
    p_diff.add_argument(
        "a", metavar="A",
        help="baseline: campaign directory, bugs.json-style report file, "
        "or JSONL telemetry trace",
    )
    p_diff.add_argument(
        "b", metavar="B",
        help="candidate: campaign directory, report file, or trace",
    )
    p_diff.add_argument(
        "--strict", action="store_true",
        help="additionally require the serialized report lists to be equal "
        "object-for-object (the byte-level `cmp bugs.json` contract)",
    )
    p_diff.add_argument(
        "--tol", type=float, default=0.1,
        help="metric-delta flag threshold as a fraction (default 0.1); "
        "informational only, never affects the exit status",
    )
    p_diff.add_argument(
        "--out", metavar="FILE",
        help="write the diff.md document to FILE instead of stdout",
    )

    p_prof = sub.add_parser(
        "profile",
        help="run workloads with hot-path time/byte attribution enabled",
    )
    add_common(p_prof)
    p_prof.add_argument(
        "--op",
        type=_parse_op,
        action="append",
        help="profile this workload instead of an ACE slice (repeatable)",
    )
    p_prof.add_argument("--seq", type=int, default=1, choices=(1, 2, 3),
                        help="ACE sequence lengths to run (1..seq)")
    p_prof.add_argument("--max-workloads", type=int, default=25,
                        help="cap ACE workloads per sequence length "
                        "(default 25; 0 = the whole sequence space)")
    p_prof.add_argument("--top", type=int, default=15,
                        help="hot-callsite rows to show (default 15)")
    p_prof.add_argument(
        "--out", metavar="FILE",
        help="write the profile markdown to FILE instead of stdout",
    )
    p_prof.add_argument(
        "--json", action="store_true",
        help="emit the merged profile dict as JSON instead of markdown",
    )
    p_prof.add_argument(
        "--chrome", metavar="OUT",
        help="also export the telemetry span timeline as a Chrome "
        "trace-event file",
    )

    p_perf = sub.add_parser(
        "perf",
        help="render the benchmark history ledger and flag regressions",
    )
    p_perf.add_argument(
        "ledger", nargs="?", metavar="LEDGER",
        help="ledger path (default ./BENCH_history.jsonl)",
    )
    p_perf.add_argument(
        "--bench", metavar="NAME",
        help="restrict to one bench (e.g. replay_delta)",
    )
    p_perf.add_argument("--last", type=int, default=10,
                        help="history window per bench (default 10)")
    p_perf.add_argument(
        "--tol", type=float, default=0.2,
        help="regression threshold vs same-host median (default 0.2)",
    )
    p_perf.add_argument(
        "--check", action="store_true",
        help="exit non-zero when a regression is flagged (for CI)",
    )
    p_perf.add_argument(
        "--json", action="store_true",
        help="emit the raw ledger records as JSON",
    )

    p_explain = sub.add_parser(
        "explain",
        help="offline bug forensics from a saved report "
        "(timeline, minimization, image diff)",
    )
    p_explain.add_argument(
        "report", metavar="REPORT",
        help="report JSON: `--save-reports` output, a campaign's bugs.json, "
        "or a single serialized report; with --all, a campaign directory",
    )
    p_explain.add_argument(
        "--index", type=int, default=0,
        help="which report to explain when the file holds several (default 0)",
    )
    p_explain.add_argument(
        "--all", action="store_true",
        help="batch mode: explain every report in a campaign's bugs.json "
        "through a shared minimization cache and write forensics.md next "
        "to report.md",
    )
    p_explain.add_argument(
        "--minimize", action="store_true",
        help="delta-debug the dropped store set down to a minimal culprit set",
    )
    p_explain.add_argument(
        "--budget", type=int, default=128,
        help="maximum checker replays for --minimize (default 128)",
    )
    p_explain.add_argument(
        "--minimize-workload", action="store_true",
        help="also delta-debug the op sequence down to the essential ops "
        "(each candidate is a full harness run)",
    )
    p_explain.add_argument(
        "--workload-budget", type=int, default=24,
        help="maximum harness runs for --minimize-workload (default 24)",
    )
    p_explain.add_argument(
        "--out", metavar="PATH",
        help="with --all: write forensics.md to PATH instead of the "
        "campaign directory",
    )
    p_explain.add_argument(
        "--chrome", metavar="OUT",
        help="also write the store lineage as a Chrome trace-event file",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # The testing commands accept the file system positionally or via --fs.
    if hasattr(args, "fs_flag"):
        if args.fs is None:
            args.fs = args.fs_flag
        if args.fs is None and not getattr(args, "resume", None):
            parser.error(f"{args.command}: a file system is required "
                         "(positional or --fs)")
    handlers = {
        "list-bugs": cmd_list_bugs,
        "test": cmd_test,
        "ace": cmd_ace,
        "fuzz": cmd_fuzz,
        "campaign": cmd_campaign,
        "memod": cmd_memod,
        "stats": cmd_stats,
        "coverage": cmd_coverage,
        "watch": cmd_watch,
        "diff": cmd_diff,
        "profile": cmd_profile,
        "perf": cmd_perf,
        "explain": cmd_explain,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output was piped into something that exited early (`... | head`);
        # that is the reader's prerogative, not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
