"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list-bugs``
    Print the Table-1 bug catalogue.
``test``
    Run one workload through Chipmunk against a file system.
``ace``
    Run an ACE campaign (seq-1 and optionally seq-2) against a file system.
``fuzz``
    Run the gray-box fuzzer against a file system for a time budget.
``stats``
    Render a campaign summary from a JSONL trace written with ``--trace``.

The testing commands accept ``--trace FILE`` (write a JSONL telemetry
trace) and ``--metrics`` (print the metrics snapshot); the file system can
be given positionally or with ``--fs``.

Examples
--------

::

    python -m repro list-bugs
    python -m repro test nova --bugs 4 --op "mkdir /A" --op "creat /foo" \
        --op "rename /foo /A/bar"
    python -m repro ace pmfs --seq 2 --max-workloads 500
    python -m repro ace --fs nova --trace /tmp/t.jsonl
    python -m repro fuzz winefs --seconds 30 --seed 7
    python -m repro stats /tmp/t.jsonl --chrome /tmp/t.chrome.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from typing import List, Optional

from repro.core import Chipmunk, ChipmunkConfig
from repro.fs.bugs import BUG_REGISTRY, BugConfig
from repro.fs.registry import FS_CLASSES
from repro.obs import Telemetry
from repro.obs.campaign import CampaignStats
from repro.obs.tracing import jsonl_to_chrome
from repro.workloads import ace
from repro.workloads.fuzzer import WorkloadFuzzer
from repro.workloads.ops import Op


def _parse_op(text: str) -> Op:
    """Parse ``"write /foo 0 65 512"``-style op specifications."""
    parts = text.split()
    if not parts:
        raise argparse.ArgumentTypeError("empty operation")
    name, args = parts[0], parts[1:]
    converted = tuple(int(a) if a.lstrip("-").isdigit() else a for a in args)
    return Op(name, converted)


def _bug_config(fs_name: str, bug_ids: List[int], fixed: bool) -> BugConfig:
    if fixed:
        return BugConfig.fixed()
    if bug_ids:
        return BugConfig.only(*bug_ids)
    return BugConfig.buggy(fs_name)


def _telemetry_for(args, generator: str) -> Optional[Telemetry]:
    """Build a Telemetry object when ``--trace``/``--metrics`` ask for one."""
    if not getattr(args, "trace", None) and not getattr(args, "metrics", False):
        return None
    tel = Telemetry()
    tel.meta.update(fs=args.fs, generator=generator)
    tel.event("campaign_start", fs=args.fs, generator=generator)
    return tel


def _finish_telemetry(args, tel: Optional[Telemetry]) -> None:
    """Export the trace and/or print the metrics snapshot, as requested."""
    if tel is None:
        return
    if getattr(args, "trace", None):
        try:
            n = tel.export_jsonl(args.trace)
        except OSError as exc:
            print(
                f"[telemetry] error: cannot write trace {args.trace!r}: "
                f"{exc.strerror or exc}",
                file=sys.stderr,
            )
        else:
            print(f"[telemetry] wrote {n} trace record(s) to {args.trace}")
    if getattr(args, "metrics", False):
        print("[telemetry] metrics snapshot:")
        for record in tel.metrics.snapshot():
            if record["kind"] == "histogram":
                print(
                    f"  {record['name']}: count={record['count']} "
                    f"sum={record['sum']:.6g} min={record['min']} "
                    f"max={record['max']}"
                )
            else:
                print(f"  {record['name']}: {record['value']}")


def cmd_list_bugs(_args) -> int:
    print(f"{'id':>3}  {'file systems':<20} {'type':<6} consequence")
    print("-" * 78)
    for bug_id, spec in sorted(BUG_REGISTRY.items()):
        print(
            f"{bug_id:>3}  {','.join(spec.filesystems):<20} "
            f"{spec.bug_type:<6} {spec.consequence}"
        )
    return 0


def cmd_test(args) -> int:
    tel = _telemetry_for(args, "test")
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(cap=args.cap),
        telemetry=tel,
    )
    result = chipmunk.test_workload(args.op or [Op("creat", ("/probe",))])
    print(result.summary())
    for cluster in result.clusters:
        print()
        print(cluster.describe())
    _finish_telemetry(args, tel)
    return 1 if result.buggy else 0


def cmd_ace(args) -> int:
    tel = _telemetry_for(args, "ace")
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(cap=args.cap),
        telemetry=tel,
    )
    mode = "pm" if FS_CLASSES()[args.fs].strong_guarantees else "fsync"
    stats = CampaignStats(fs_name=args.fs, generator="ace", telemetry=tel)
    for seq in range(1, args.seq + 1):
        workloads = ace.generate(seq, mode=mode)
        if args.max_workloads:
            workloads = itertools.islice(workloads, args.max_workloads)
        for w in workloads:
            stats.add_result(chipmunk.test_workload(w.core, setup=w.setup))
    print(
        f"{stats.n_workloads} workloads, {stats.n_crash_states} crash states, "
        f"{len(stats.clusters)} clusters, {stats.wall_time:.1f}s"
    )
    for cluster in stats.clusters:
        print()
        print(cluster.describe())
    _finish_telemetry(args, tel)
    return 1 if stats.clusters else 0


def cmd_fuzz(args) -> int:
    tel = _telemetry_for(args, "fuzz")
    if tel is not None:
        # The seed lands in the trace header so a campaign is reproducible
        # from its trace file alone.
        tel.meta["seed"] = args.seed
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(cap=args.cap),
        telemetry=tel,
    )
    fuzzer = WorkloadFuzzer(chipmunk, seed=args.seed)
    stats = fuzzer.run(time_budget=args.seconds)
    print(
        f"{stats.executions} executions, {stats.crash_states} crash states, "
        f"coverage {stats.coverage_points}, corpus {stats.corpus_size}, "
        f"{stats.clusters} clusters, {stats.elapsed:.1f}s"
    )
    for cluster in fuzzer.clusters:
        print()
        print(cluster.describe())
    _finish_telemetry(args, tel)
    return 1 if stats.clusters else 0


def cmd_stats(args) -> int:
    try:
        stats = CampaignStats.from_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        print(f"error: {args.trace!r} is not a JSONL telemetry trace: {exc}",
              file=sys.stderr)
        return 2
    print(stats.render())
    if args.chrome:
        n = jsonl_to_chrome(args.trace, args.chrome)
        print(f"\nwrote {n} Chrome trace event(s) to {args.chrome}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Chipmunk reproduction: crash-consistency testing for "
        "simulated PM file systems.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-bugs", help="print the Table-1 bug catalogue")

    def add_common(p):
        p.add_argument(
            "fs",
            nargs="?",
            choices=sorted(FS_CLASSES()),
            help="file system (or use --fs)",
        )
        p.add_argument(
            "--fs",
            dest="fs_flag",
            choices=sorted(FS_CLASSES()),
            help="file system (alternative to the positional argument)",
        )
        p.add_argument(
            "--trace",
            metavar="FILE",
            help="write a JSONL telemetry trace (see `python -m repro stats`)",
        )
        p.add_argument(
            "--metrics",
            action="store_true",
            help="print the telemetry metrics snapshot after the run",
        )
        p.add_argument(
            "--bugs",
            type=int,
            nargs="*",
            default=[],
            help="enable only these bug ids (default: all of the FS's bugs)",
        )
        p.add_argument(
            "--fixed", action="store_true", help="run the fully fixed variant"
        )
        p.add_argument("--cap", type=int, default=2, help="replay cap (default 2)")

    p_test = sub.add_parser("test", help="test one workload")
    add_common(p_test)
    p_test.add_argument(
        "--op",
        type=_parse_op,
        action="append",
        help='operation, e.g. "write /foo 0 65 512" (repeatable)',
    )

    p_ace = sub.add_parser("ace", help="run an ACE campaign")
    add_common(p_ace)
    p_ace.add_argument("--seq", type=int, default=1, choices=(1, 2, 3))
    p_ace.add_argument("--max-workloads", type=int, default=0)

    p_fuzz = sub.add_parser("fuzz", help="run the gray-box fuzzer")
    add_common(p_fuzz)
    p_fuzz.add_argument("--seconds", type=float, default=30.0)
    p_fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fuzzer RNG seed; recorded in the trace header so a campaign "
        "is reproducible from its trace file",
    )

    p_stats = sub.add_parser(
        "stats", help="render a campaign summary from a JSONL trace"
    )
    p_stats.add_argument("trace", help="trace file written with --trace")
    p_stats.add_argument(
        "--chrome",
        metavar="OUT",
        help="also convert the trace to a Chrome trace-event file "
        "(load in chrome://tracing or Perfetto)",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # The testing commands accept the file system positionally or via --fs.
    if hasattr(args, "fs_flag"):
        if args.fs is None:
            args.fs = args.fs_flag
        if args.fs is None:
            parser.error(f"{args.command}: a file system is required "
                         "(positional or --fs)")
    handlers = {
        "list-bugs": cmd_list_bugs,
        "test": cmd_test,
        "ace": cmd_ace,
        "fuzz": cmd_fuzz,
        "stats": cmd_stats,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
