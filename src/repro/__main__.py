"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list-bugs``
    Print the Table-1 bug catalogue.
``test``
    Run one workload through Chipmunk against a file system.
``ace``
    Run an ACE campaign (seq-1 and optionally seq-2) against a file system.
``fuzz``
    Run the gray-box fuzzer against a file system for a time budget.

Examples
--------

::

    python -m repro list-bugs
    python -m repro test nova --bugs 4 --op "mkdir /A" --op "creat /foo" \
        --op "rename /foo /A/bar"
    python -m repro ace pmfs --seq 2 --max-workloads 500
    python -m repro fuzz winefs --seconds 30 --seed 7
"""

from __future__ import annotations

import argparse
import itertools
import sys
import time
from typing import List

from repro.core import Chipmunk, ChipmunkConfig
from repro.core.triage import Triage
from repro.fs.bugs import BUG_REGISTRY, BugConfig
from repro.fs.registry import FS_CLASSES
from repro.workloads import ace
from repro.workloads.fuzzer import WorkloadFuzzer
from repro.workloads.ops import Op


def _parse_op(text: str) -> Op:
    """Parse ``"write /foo 0 65 512"``-style op specifications."""
    parts = text.split()
    if not parts:
        raise argparse.ArgumentTypeError("empty operation")
    name, args = parts[0], parts[1:]
    converted = tuple(int(a) if a.lstrip("-").isdigit() else a for a in args)
    return Op(name, converted)


def _bug_config(fs_name: str, bug_ids: List[int], fixed: bool) -> BugConfig:
    if fixed:
        return BugConfig.fixed()
    if bug_ids:
        return BugConfig.only(*bug_ids)
    return BugConfig.buggy(fs_name)


def cmd_list_bugs(_args) -> int:
    print(f"{'id':>3}  {'file systems':<20} {'type':<6} consequence")
    print("-" * 78)
    for bug_id, spec in sorted(BUG_REGISTRY.items()):
        print(
            f"{bug_id:>3}  {','.join(spec.filesystems):<20} "
            f"{spec.bug_type:<6} {spec.consequence}"
        )
    return 0


def cmd_test(args) -> int:
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(cap=args.cap),
    )
    result = chipmunk.test_workload(args.op or [Op("creat", ("/probe",))])
    print(result.summary())
    for cluster in result.clusters:
        print()
        print(cluster.describe())
    return 1 if result.buggy else 0


def cmd_ace(args) -> int:
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(cap=args.cap),
    )
    mode = "pm" if FS_CLASSES()[args.fs].strong_guarantees else "fsync"
    triage = Triage()
    tested = states = 0
    start = time.perf_counter()
    for seq in range(1, args.seq + 1):
        workloads = ace.generate(seq, mode=mode)
        if args.max_workloads:
            workloads = itertools.islice(workloads, args.max_workloads)
        for w in workloads:
            result = chipmunk.test_workload(w.core, setup=w.setup)
            tested += 1
            states += result.n_crash_states
            triage.add_all(result.reports)
    elapsed = time.perf_counter() - start
    print(
        f"{tested} workloads, {states} crash states, "
        f"{len(triage.clusters)} clusters, {elapsed:.1f}s"
    )
    for cluster in triage.clusters:
        print()
        print(cluster.describe())
    return 1 if triage.clusters else 0


def cmd_fuzz(args) -> int:
    chipmunk = Chipmunk(
        args.fs,
        bugs=_bug_config(args.fs, args.bugs, args.fixed),
        config=ChipmunkConfig(cap=args.cap),
    )
    fuzzer = WorkloadFuzzer(chipmunk, seed=args.seed)
    stats = fuzzer.run(time_budget=args.seconds)
    print(
        f"{stats.executions} executions, {stats.crash_states} crash states, "
        f"coverage {stats.coverage_points}, corpus {stats.corpus_size}, "
        f"{stats.clusters} clusters, {stats.elapsed:.1f}s"
    )
    for cluster in fuzzer.clusters:
        print()
        print(cluster.describe())
    return 1 if stats.clusters else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Chipmunk reproduction: crash-consistency testing for "
        "simulated PM file systems.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-bugs", help="print the Table-1 bug catalogue")

    def add_common(p):
        p.add_argument("fs", choices=sorted(FS_CLASSES()), help="file system")
        p.add_argument(
            "--bugs",
            type=int,
            nargs="*",
            default=[],
            help="enable only these bug ids (default: all of the FS's bugs)",
        )
        p.add_argument(
            "--fixed", action="store_true", help="run the fully fixed variant"
        )
        p.add_argument("--cap", type=int, default=2, help="replay cap (default 2)")

    p_test = sub.add_parser("test", help="test one workload")
    add_common(p_test)
    p_test.add_argument(
        "--op",
        type=_parse_op,
        action="append",
        help='operation, e.g. "write /foo 0 65 512" (repeatable)',
    )

    p_ace = sub.add_parser("ace", help="run an ACE campaign")
    add_common(p_ace)
    p_ace.add_argument("--seq", type=int, default=1, choices=(1, 2, 3))
    p_ace.add_argument("--max-workloads", type=int, default=0)

    p_fuzz = sub.add_parser("fuzz", help="run the gray-box fuzzer")
    add_common(p_fuzz)
    p_fuzz.add_argument("--seconds", type=float, default=30.0)
    p_fuzz.add_argument("--seed", type=int, default=0)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list-bugs": cmd_list_bugs,
        "test": cmd_test,
        "ace": cmd_ace,
        "fuzz": cmd_fuzz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
