"""Chipmunk reproduction: crash-consistency testing for PM file systems.

This package reproduces "Chipmunk: Investigating Crash-Consistency in
Persistent-Memory File Systems" (EuroSys '23): a simulated persistent-memory
substrate, six PM file systems carrying the paper's 23 bug mechanisms, and
the Chipmunk record-and-replay testing framework with ACE and fuzzer
workload generators.
"""

__version__ = "1.0.0"
