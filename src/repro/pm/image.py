"""Zero-copy crash-state images: shared fence bases plus sparse overlays.

The replayer used to build every crash state eagerly — ``bytearray`` copy of
the persistent image, replay the subset, freeze to ``bytes`` — an
O(device_size) cost paid per *state* even though all states of one fence
region share the same persistent base and differ only in a handful of
replayed byte ranges.  This module holds the lazy representation:

* :class:`FenceBase` — one immutable snapshot of the persistent image per
  fence region, tagged with a content digest.  Every crash state of the
  region shares the same object; nothing is copied per subset.
* :class:`CrashImage` — a fence base plus a sparse overlay of replayed
  ``(addr, payload)`` ranges.  Materialization to flat ``bytes`` happens
  only on demand (forensics image diffs, legacy consumers) and is cached.
* :class:`ChunkedDigest` — an incrementally maintained content digest over
  the replayer's mutable persistent buffer, so taking a fence base at every
  region costs O(bytes written since the last fence), not O(device).

The content address of a crash state is
``sha1(base.digest ‖ (addr, len, payload) per effective replayed range)``.
*Effective* ranges are the overlay after dropping no-op writes: a write
whose payload is byte-equal to the content it overwrites — the base slice
it covers, patched with whatever earlier *kept* writes it overlaps —
cannot change the materialized image, because replaying an idempotent
store is indistinguishable from losing it.  (Overlap resolution matters
because later writes win: a base-equal write layered over an earlier kept
write restores base content, which is an effect, and is kept; conversely
a write that merely repeats an earlier kept write's visible bytes is a
no-op even though it overlaps it.)
Digest equality therefore implies byte-identical images, which is the
direction check memoization needs: a memo hit can never skip a state that
might have checked differently.  The converse still does not fully hold —
partial or overlapping rewrites of base content survive canonicalization
and yield distinct digests for identical images — so memoization may
rarely re-check a duplicate, which costs time but can never mask a bug.
:func:`flatten_overlay` computes the exact byte-level diff from base
(:mod:`repro.obs.attribution` uses it to measure how often that residual
case actually bites).
"""

from __future__ import annotations

import hashlib
import struct
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from repro.obs import profile as _profile

#: Granularity of the incremental digest over the persistent buffer.  Small
#: enough that a fence region dirtying a few metadata lines rehashes a few
#: chunks; large enough that the per-chunk bookkeeping stays negligible.
CHUNK = 16 * 1024

#: One overlay range: (device address, payload bytes).
OverlayWrite = Tuple[int, bytes]


def flatten_overlay(
    base, writes: Sequence[OverlayWrite]
) -> Tuple[OverlayWrite, ...]:
    """The exact byte-level diff from ``base`` after applying ``writes``.

    Flattens the overlay with later-writes-win semantics down to single
    bytes, drops every byte equal to the base, and merges the survivors
    back into maximal contiguous runs.  The result is a pure function of
    the *materialized* image: two overlays materializing identically
    flatten identically, regardless of how their writes partition, order,
    or overlap the ranges.  Cost is O(total overlay bytes), never
    O(device), so it is usable per crash state.

    ``base`` is flat ``bytes`` or any fence-base object; a base providing
    its own ``flatten_overlay`` (the numpy backend's
    :class:`repro.pm.image_np.LazyFenceBase`) computes the identical value
    vectorized, without ever materializing the base.
    """
    vectorized = getattr(base, "flatten_overlay", None)
    if vectorized is not None:
        return vectorized(writes)
    if not isinstance(base, (bytes, bytearray, memoryview)):
        base = base.data  # python FenceBase: flat snapshot, free to index
    prof = _profile.ACTIVE
    t0 = perf_counter() if prof is not None else 0.0
    latest: dict = {}
    for addr, data in writes:
        for i, b in enumerate(data):
            latest[addr + i] = b
    runs: List[Tuple[int, bytearray]] = []
    for pos in sorted(latest):
        b = latest[pos]
        if base[pos] == b:
            continue
        if runs and runs[-1][0] + len(runs[-1][1]) == pos:
            runs[-1][1].append(b)
        else:
            runs.append((pos, bytearray((b,))))
    flat = tuple((addr, bytes(data)) for addr, data in runs)
    if prof is not None:
        prof.add("image.flatten_overlay", perf_counter() - t0,
                 sum(len(d) for _, d in writes))
    return flat


class ChunkedDigest:
    """Incrementally maintained content digest of a mutable buffer.

    The buffer is divided into :data:`CHUNK`-sized pieces, each with a
    cached sha1.  Writers call :meth:`invalidate` for every mutated range;
    :meth:`digest` rehashes only the dirty chunks and combines the chunk
    digests.  The combined value is a pure function of the buffer contents
    (chunking is fixed), so equal contents always produce equal digests.
    """

    __slots__ = ("buf", "_chunks")

    def __init__(self, buf: bytearray) -> None:
        self.buf = buf
        self._chunks: List[Optional[bytes]] = [None] * (
            (len(buf) + CHUNK - 1) // CHUNK or 1
        )

    def invalidate(self, addr: int, length: int) -> None:
        """Mark every chunk overlapping ``[addr, addr+length)`` dirty."""
        if length <= 0:
            return
        for i in range(addr // CHUNK, (addr + length - 1) // CHUNK + 1):
            self._chunks[i] = None

    def digest(self) -> bytes:
        """sha1 over the per-chunk sha1s, rehashing only dirty chunks.

        The combine hashes one joined buffer instead of feeding the chunk
        digests to sha1 one update at a time — same byte stream, same
        value, without an O(chunks) python loop of hashlib calls per call.
        """
        prof = _profile.ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        chunks = self._chunks
        view = memoryview(self.buf)
        rehashed = 0
        for i, cached in enumerate(chunks):
            if cached is None:
                piece = view[i * CHUNK : (i + 1) * CHUNK]
                chunks[i] = hashlib.sha1(piece).digest()
                rehashed += len(piece)
        combined = hashlib.sha1(b"".join(chunks))
        if prof is not None:
            prof.add("image.chunk_rehash", perf_counter() - t0, rehashed,
                     "digest_hashed")
        return combined.digest()


class FenceBase:
    """One fence region's immutable persistent snapshot, content-tagged.

    Created once per fence region (lazily, at the region's first crash
    state) and shared by reference across every state of the region — the
    per-subset O(device) copy of the eager path becomes a per-region one.
    ``digest`` is a content digest, so two regions whose persistent images
    happen to coincide (e.g. a region whose writes were all idempotent)
    share a content address even though they are distinct objects.
    """

    __slots__ = ("data", "digest")

    def __init__(self, data: bytes, digest: Optional[bytes] = None) -> None:
        self.data = data
        self.digest = digest if digest is not None else hashlib.sha1(data).digest()

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, key):
        # Random access mirrors the numpy backend's LazyFenceBase so image
        # code can slice a base without caring which backend built it.
        return self.data[key]


class CrashImage:
    """A lazy crash-state image: shared fence base + sparse overlay.

    Behaves like ``bytes`` for every consumer the pipeline has — length,
    indexing/slicing, equality and ordering against other images or raw
    ``bytes``, hashing — but costs O(overlay) to construct and to digest.
    Flat ``bytes`` are produced only by :meth:`materialize` (cached), which
    comparisons and subscripts fall back on; the hot check path (COW mount
    via :meth:`repro.pm.device.PMDevice.cow_view` + digest memoization)
    never materializes at all.
    """

    __slots__ = ("base", "writes", "_digest", "_mat", "_effective", "_noop_dropped")

    def __init__(self, base: FenceBase, writes: Sequence[OverlayWrite] = ()) -> None:
        self.base = base
        #: Overlay ranges in replay (program) order; later writes win.
        self.writes: Tuple[OverlayWrite, ...] = tuple(writes)
        self._digest: Optional[bytes] = None
        self._mat: Optional[bytes] = None
        self._effective: Optional[Tuple[OverlayWrite, ...]] = None
        self._noop_dropped: Optional[int] = None

    # ------------------------------------------------------------------
    def effective_writes(self) -> Tuple[OverlayWrite, ...]:
        """The overlay with no-op writes dropped (cached).

        A write is a no-op — and safe to drop — when its payload is
        byte-equal to the content it overwrites: the base slice it covers,
        patched with the earlier *kept* writes it overlaps.  Comparing
        against the overlap-resolved content (not the raw base) is what
        keeps the drop sound under later-writes-win materialization in
        both directions: a base-equal write on top of a kept write
        restores base content — an effect, kept — while a write that
        merely repeats a kept write's visible bytes (e.g. a rewrite whose
        visible suffix is idempotent) changes nothing and drops.  (Overlap
        with earlier *dropped* writes needs no patching: a dropped write
        left the prior content in place by definition.)
        """
        if self._effective is None:
            base = self.base
            kept: List[OverlayWrite] = []
            dropped = 0
            for addr, data in self.writes:
                end = addr + len(data)
                current = None
                for a, d in kept:
                    e = a + len(d)
                    if a < end and addr < e:
                        if current is None:
                            current = bytearray(base[addr:end])
                        s, t = max(a, addr), min(e, end)
                        current[s - addr : t - addr] = d[s - a : t - a]
                if (bytes(current) if current is not None else base[addr:end]) == data:
                    dropped += 1
                    continue
                kept.append((addr, data))
            self._effective = tuple(kept)
            self._noop_dropped = dropped
        return self._effective

    @property
    def noop_dropped(self) -> int:
        """Overlay writes :meth:`digest` ignored as no-ops."""
        if self._noop_dropped is None:
            self.effective_writes()
        return self._noop_dropped  # type: ignore[return-value]

    def digest(self) -> bytes:
        """Content address: sha1(base digest ‖ each effective overlay range).

        No-op writes (see :meth:`effective_writes`) are dropped before
        hashing, so a state that replays only idempotent stores shares the
        digest of the state that dropped them — the two images are
        byte-identical and now memoize as such.  Equal digests imply
        byte-identical materialized images; see the module docstring for
        why the one-way implication is the safe one.
        """
        if self._digest is None:
            prof = _profile.ACTIVE
            t0 = perf_counter() if prof is not None else 0.0
            h = hashlib.sha1(self.base.digest)
            hashed = len(self.base.digest)
            for addr, data in self.effective_writes():
                h.update(struct.pack("<QQ", addr, len(data)))
                h.update(data)
                hashed += 16 + len(data)
            self._digest = h.digest()
            if prof is not None:
                prof.add("image.digest", perf_counter() - t0, hashed,
                         "digest_hashed")
        return self._digest

    def materialize(self) -> bytes:
        """The flat ``bytes`` image (cached after the first call)."""
        if self._mat is None:
            prof = _profile.ACTIVE
            t0 = perf_counter() if prof is not None else 0.0
            m0 = prof.mark() if prof is not None else 0.0
            if not self.writes:
                # Zero-copy: shares the base snapshot, nothing materialized.
                self._mat = self.base.data
                copied = 0
            else:
                buf = bytearray(self.base.data)
                for addr, data in self.writes:
                    buf[addr : addr + len(data)] = data
                self._mat = bytes(buf)
                copied = len(self._mat)
            if prof is not None:
                # Exclusive of a lazy fence base materializing itself.
                prof.add_exclusive("image.materialize", perf_counter() - t0,
                                   m0, copied, "materialized")
        return self._mat

    # ------------------------------------------------------------------
    # bytes-compatible surface
    # ------------------------------------------------------------------
    def __bytes__(self) -> bytes:
        return self.materialize()

    def __len__(self) -> int:
        return len(self.base)

    def __getitem__(self, key):
        return self.materialize()[key]

    def _content_of(self, other) -> Optional[bytes]:
        if isinstance(other, CrashImage):
            return other.materialize()
        if isinstance(other, (bytes, bytearray)):
            return bytes(other)
        return None

    def __eq__(self, other) -> bool:
        content = self._content_of(other)
        if content is None:
            return NotImplemented
        return self.materialize() == content

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __lt__(self, other) -> bool:
        content = self._content_of(other)
        if content is None:
            return NotImplemented
        return self.materialize() < content

    def __le__(self, other) -> bool:
        content = self._content_of(other)
        if content is None:
            return NotImplemented
        return self.materialize() <= content

    def __gt__(self, other) -> bool:
        content = self._content_of(other)
        if content is None:
            return NotImplemented
        return self.materialize() > content

    def __ge__(self, other) -> bool:
        content = self._content_of(other)
        if content is None:
            return NotImplemented
        return self.materialize() >= content

    def __hash__(self) -> int:
        # Content hash, consistent with content equality (incl. vs bytes).
        return hash(self.materialize())

    def __repr__(self) -> str:
        return (
            f"CrashImage(size={len(self)}, overlay={len(self.writes)} "
            f"range(s), materialized={self._mat is not None})"
        )
