"""Write log recorded by Chipmunk's probes.

The log is an ordered sequence of persistence operations (non-temporal
stores, cache-line flushes, store fences) interleaved with syscall markers
inserted by the test harness.  The replayer walks this log to construct crash
states: everything before a fence is persistent, the writes after it form the
in-flight vector (paper, section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union


@dataclass(frozen=True)
class NTStore:
    """A non-temporal store of ``data`` at ``addr``.

    Non-temporal stores bypass the CPU caches; they become persistent at the
    next store fence.  One logged entry covers the whole buffer written by a
    single persistence-function call (function-level coalescing).
    """

    addr: int
    data: bytes
    func: str
    syscall: Optional[int] = None

    @property
    def length(self) -> int:
        return len(self.data)

    def describe(self) -> str:
        return f"NT({self.func}) addr={self.addr:#x} len={len(self.data)}"


@dataclass(frozen=True)
class Flush:
    """A cache-line write-back (``clwb``-style) of a dirty buffer.

    ``data`` is the content of the flushed range at the time of the flush;
    like an NT store it becomes persistent at the next store fence.
    """

    addr: int
    data: bytes
    func: str
    syscall: Optional[int] = None

    @property
    def length(self) -> int:
        return len(self.data)

    def describe(self) -> str:
        return f"FLUSH({self.func}) addr={self.addr:#x} len={len(self.data)}"


@dataclass(frozen=True)
class Fence:
    """A store fence (``sfence``): all prior NT stores/flushes are now durable."""

    func: str = "sfence"
    syscall: Optional[int] = None

    def describe(self) -> str:
        return "FENCE"


@dataclass(frozen=True)
class SyscallBegin:
    """Marker inserted by the harness before it issues a syscall."""

    index: int
    name: str
    args: str

    def describe(self) -> str:
        return f"SYSCALL_BEGIN #{self.index} {self.name}({self.args})"


@dataclass(frozen=True)
class SyscallEnd:
    """Marker inserted by the harness after a syscall returns."""

    index: int
    name: str

    def describe(self) -> str:
        return f"SYSCALL_END #{self.index} {self.name}"


WriteEntry = Union[NTStore, Flush]
LogEntry = Union[NTStore, Flush, Fence, SyscallBegin, SyscallEnd]


@dataclass
class PMLog:
    """Ordered log of persistence operations and syscall markers."""

    entries: List[LogEntry] = field(default_factory=list)
    #: Index of the syscall currently executing (None between syscalls).
    current_syscall: Optional[int] = None
    _current_name: Optional[str] = None

    def append(self, entry: LogEntry) -> None:
        self.entries.append(entry)

    # Convenience appenders used by the probes and the harness -----------
    def nt_store(self, addr: int, data: bytes, func: str) -> None:
        self.append(NTStore(addr, bytes(data), func, self.current_syscall))

    def flush(self, addr: int, data: bytes, func: str) -> None:
        self.append(Flush(addr, bytes(data), func, self.current_syscall))

    def fence(self, func: str = "sfence") -> None:
        self.append(Fence(func, self.current_syscall))

    def syscall_begin(self, index: int, name: str, args: str = "") -> None:
        self.current_syscall = index
        self._current_name = name
        self.append(SyscallBegin(index, name, args))

    def syscall_end(self) -> None:
        if self.current_syscall is None:
            raise ValueError("syscall_end without matching syscall_begin")
        self.append(SyscallEnd(self.current_syscall, self._current_name or "?"))
        self.current_syscall = None
        self._current_name = None

    # Introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def writes(self) -> List[WriteEntry]:
        return [e for e in self.entries if isinstance(e, (NTStore, Flush))]

    def fence_count(self) -> int:
        return sum(1 for e in self.entries if isinstance(e, Fence))

    def syscall_names(self) -> List[str]:
        return [e.name for e in self.entries if isinstance(e, SyscallBegin)]

    def clear(self) -> None:
        self.entries.clear()
        self.current_syscall = None
        self._current_name = None

    def describe(self) -> str:
        """Human-readable dump, used in bug reports."""
        return "\n".join(e.describe() for e in self.entries)
