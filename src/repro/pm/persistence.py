"""Centralized persistence functions.

Every PM file system the paper studied funnels its durable writes through a
small set of helper functions — non-temporal memcpy/memset, buffer flush, and
store fence (section 3.2).  :class:`PersistenceOps` provides those helpers.
File systems may subclass it and re-export the primitives under their own
names (as NOVA does with ``memcpy_to_pmem_nocache``); Chipmunk's probes attach
to whatever names the developer supplies, mirroring Kprobes.

The raw methods below only mutate the device's volatile image and bump the
operation counters.  They do **not** log anything: logging happens only when
:mod:`repro.core.probes` wraps them, the same way an unprobed kernel function
leaves no trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, TypeVar

from repro.pm.costmodel import OpCounters
from repro.pm.device import PMDevice

F = TypeVar("F", bound=Callable)

#: Attribute set by :func:`persistence_function` so the prober can discover
#: the semantics of a named function without knowing FS internals.
SPEC_ATTR = "_persistence_spec"

VALID_KINDS = ("nt_store", "flush", "fence")


@dataclass(frozen=True)
class PersistenceSpec:
    """How the probe layer decodes calls to one persistence function.

    ``addr_arg`` / ``data_arg`` / ``length_arg`` are positional indices into
    the call's arguments (excluding ``self``), mirroring how a Kprobes
    handler decodes the probed function's registers.
    """

    kind: str
    addr_arg: Optional[int] = None
    data_arg: Optional[int] = None
    length_arg: Optional[int] = None

    def decode(self, args: tuple) -> tuple:
        """Return ``(addr, length)`` of the range the call touched."""
        if self.kind == "fence":
            return (0, 0)
        assert self.addr_arg is not None
        addr = args[self.addr_arg]
        if self.data_arg is not None:
            return (addr, len(args[self.data_arg]))
        assert self.length_arg is not None
        return (addr, args[self.length_arg])


def persistence_function(
    kind: str,
    addr_arg: Optional[int] = None,
    data_arg: Optional[int] = None,
    length_arg: Optional[int] = None,
) -> Callable[[F], F]:
    """Mark a method as a centralized persistence function.

    ``kind`` is one of ``nt_store``, ``flush``, or ``fence``; the remaining
    arguments tell the probe layer where the address and size live in the
    function's signature.
    """
    if kind not in VALID_KINDS:
        raise ValueError(f"unknown persistence kind {kind!r}")
    if kind != "fence" and addr_arg is None:
        raise ValueError(f"{kind} persistence functions need addr_arg")
    if kind != "fence" and data_arg is None and length_arg is None:
        raise ValueError(f"{kind} persistence functions need data_arg or length_arg")
    spec = PersistenceSpec(kind, addr_arg, data_arg, length_arg)

    def mark(func: F) -> F:
        setattr(func, SPEC_ATTR, spec)
        return func

    return mark


class PersistenceOps:
    """Base persistence primitives over a :class:`PMDevice`.

    Subclasses define the file system's actual persistence-function names and
    list them in :attr:`persistence_function_names`; the probe layer attaches
    to those names at runtime.
    """

    #: Names of the methods Chipmunk should instrument for this file system.
    #: Subclasses override; the defaults cover the generic primitives.
    persistence_function_names = ("memcpy_nt", "memset_nt", "flush_range", "sfence")

    def __init__(self, device: PMDevice) -> None:
        self.device = device
        self.counters = OpCounters()

    # ------------------------------------------------------------------
    # Persistence primitives (probed)
    # ------------------------------------------------------------------
    @persistence_function("nt_store", addr_arg=0, data_arg=1)
    def memcpy_nt(self, addr: int, data: bytes) -> None:
        """Non-temporal copy of ``data`` to PM at ``addr``."""
        self.device.write(addr, data)
        self.counters.nt_bytes += len(data)
        self.counters.nt_stores += 1

    @persistence_function("nt_store", addr_arg=0, length_arg=2)
    def memset_nt(self, addr: int, value: int, length: int) -> None:
        """Non-temporal fill of ``length`` bytes of ``value`` at ``addr``."""
        self.device.write(addr, bytes([value]) * length)
        self.counters.nt_bytes += length
        self.counters.nt_stores += 1

    @persistence_function("flush", addr_arg=0, length_arg=1)
    def flush_range(self, addr: int, length: int) -> None:
        """Write back the cache lines covering ``[addr, addr+length)``.

        The data that becomes persistent is whatever the volatile image holds
        at flush time — the effect of preceding cached stores, at cache-line
        granularity.
        """
        self.device.check_range(addr, length)
        self.counters.flushes += max(1, (length + 63) // 64)

    @persistence_function("fence")
    def sfence(self) -> None:
        """Store fence: drain all prior NT stores and flushes to media."""
        self.counters.fences += 1

    # ------------------------------------------------------------------
    # Non-persistence helpers (never probed, never logged)
    # ------------------------------------------------------------------
    def store_cached(self, addr: int, data: bytes) -> None:
        """A plain cached CPU store.

        The running system sees the data immediately, but unless the line is
        later flushed it will not survive a crash.  Buggy code paths that
        forget a flush use this primitive (e.g. NOVA bug 2).
        """
        self.device.write(addr, data)
        self.counters.cached_stores += 1

    def read_pm(self, addr: int, length: int) -> bytes:
        """Read from PM media (counted, for the cost model)."""
        self.counters.reads += 1
        self.counters.read_bytes += length
        return self.device.read(addr, length)


def get_spec(ops: PersistenceOps, name: str) -> PersistenceSpec:
    """Return the :class:`PersistenceSpec` of the named function on ``ops``.

    Raises ``AttributeError``/``ValueError`` when the name does not resolve
    to a tagged persistence function — the same failure a developer would see
    handing Kprobes a bad symbol name.
    """
    func = getattr(ops, name)
    spec: Optional[PersistenceSpec] = getattr(func, SPEC_ATTR, None)
    if spec is None:
        raise ValueError(f"{name!r} is not a tagged persistence function")
    return spec


def spec_map(ops: PersistenceOps) -> Dict[str, PersistenceSpec]:
    """Map every declared persistence-function name to its spec."""
    return {name: get_spec(ops, name) for name in ops.persistence_function_names}
