"""Image-backend selection for the delta-replay data plane.

Two interchangeable implementations sit behind the crash-image API:

``python``
    The reference implementation — :class:`repro.pm.image.FenceBase` holds
    a flat ``bytes`` snapshot per fence region, digests and overlay
    flattening walk plain Python loops.  Kept byte-for-byte as the
    differential baseline.

``numpy``
    The vectorized implementation (:mod:`repro.pm.image_np`) — fence bases
    share the replayer's live buffer through an undo chain (no per-region
    copy), the chunked digest skips all-zero chunks with one vectorized
    scan, and overlay flattening runs on ``numpy`` arrays.  Every produced
    *value* (materialized bytes, chunk digests, flattened diffs, content
    keys) is identical to the python backend's; only the cost model
    changes.

Selection is by name, threaded from ``--image-backend`` through
``ChipmunkConfig``/``CampaignSpec``.  ``auto`` (the default) picks
``numpy`` when the import succeeds; an explicit ``numpy`` request on a
host without numpy degrades gracefully to ``python`` rather than failing —
campaign specs stay portable across hosts.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised indirectly by both CI legs
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _HAVE_NUMPY = False

__all__ = ["BACKENDS", "BACKEND_CHOICES", "numpy_available",
           "default_backend", "resolve_backend"]

#: Concrete backend implementations.
BACKENDS = ("python", "numpy")

#: Valid configuration values (``auto`` resolves at run time).
BACKEND_CHOICES = ("auto",) + BACKENDS


def numpy_available() -> bool:
    """Whether the numpy backend can actually run on this host."""
    return _HAVE_NUMPY


def default_backend() -> str:
    """The backend ``auto`` resolves to."""
    return "numpy" if _HAVE_NUMPY else "python"


def resolve_backend(name: Optional[str] = None) -> str:
    """Map a configured backend name to the one that will run.

    ``None``/``""``/``"auto"`` pick the default; ``"numpy"`` falls back to
    ``"python"`` when numpy is absent (graceful degradation — the two
    backends produce identical values, so the fallback only changes
    speed).  Unknown names raise ``ValueError``.
    """
    if name in (None, "", "auto"):
        return default_backend()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown image backend {name!r} (expected one of {BACKEND_CHOICES})"
        )
    if name == "numpy" and not _HAVE_NUMPY:
        return "python"
    return name
