"""Vectorized (numpy) implementation of the crash-image internals.

The python backend (:mod:`repro.pm.image`) snapshots the replayer's
persistent buffer into an immutable ``bytes`` per fence region — an
O(device) copy per region — and flattens overlays byte-by-byte in Python.
This module removes both costs while producing bit-identical *values*:

* :class:`NPPersistTracker` — the replayer's persistent buffer plus an
  **undo chain**: applying a fence epoch records each write's before-image,
  so any earlier region's content remains reconstructible from the live
  buffer without ever copying the device.
* :class:`LazyFenceBase` — duck-types :class:`repro.pm.image.FenceBase`
  (``data``, ``digest``, ``len``, slicing) but holds no snapshot.  Random
  access patches the live buffer with the undo suffix on the fly
  (O(suffix delta), not O(device)); flat ``bytes`` are built only if a
  consumer genuinely needs them (forensics, image diffs) and the copy is
  charged to the ``materialized`` profile category at that moment.  The
  checker recognizes lazy bases and mounts the live buffer directly
  through a COW view prefixed with ``restore_writes()`` — during streaming
  enumeration that prefix is empty, because states of a region are checked
  while the region is current.
* :class:`NPChunkedDigest` — :class:`repro.pm.image.ChunkedDigest` with a
  vectorized cold scan: one ``numpy`` pass finds the all-zero chunks and
  assigns them a precomputed digest, so the first digest of a mostly-zero
  mkfs image hashes kilobytes instead of the whole device.  Chunking and
  combination are unchanged, so digests equal the python backend's.
* :func:`flatten_np` — vectorized overlay flattening: later-writes-win
  resolution, base comparison, and run merging on numpy arrays.  The
  result tuple is byte-identical to
  :func:`repro.pm.image.flatten_overlay` (both are pure functions of the
  materialized bytes), which is why content keys — and therefore memo
  behaviour and ``bugs.json`` — transfer across backends.

This module must only be imported when numpy is importable; callers go
through :func:`repro.pm.backend.resolve_backend` first.
"""

from __future__ import annotations

import hashlib
import weakref
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import profile as _profile
from repro.pm.image import CHUNK, ChunkedDigest, OverlayWrite

__all__ = ["NPChunkedDigest", "LazyFenceBase", "NPPersistTracker", "flatten_np"]

#: sha1 of one all-zero chunk — what the python backend computes for every
#: untouched chunk of a fresh device.
_ZERO_CHUNK_DIGEST = hashlib.sha1(bytes(CHUNK)).digest()

#: Recycled tracker buffers by size.  A fresh multi-MiB ``bytearray`` is
#: freshly mmapped memory, so the initial copy pays a page fault per 4 KiB
#: on top of the memcpy.  Buffers enter the pool only through
#: ``weakref.finalize`` on their tracker — i.e. once nothing can possibly
#: read them — and the finalizer first replays the tracker's before-image
#: chain, rolling the buffer back to the exact base content it started
#: from (O(bytes written), typically a few KiB).  A later tracker built
#: from the *same* base object therefore skips the O(device) copy
#: entirely; a different base of the same size still reuses the committed
#: pages with a plain memcpy.  Each entry pins its source object so the
#: identity check can never false-positive on a recycled ``id``.  At most
#: two entries per size (the live/dying pair of sequential workloads).
_BUF_POOL: Dict[int, List[Tuple[object, bytearray, List[bytes]]]] = {}


def _acquire_buffer(data) -> Tuple[bytearray, Optional[List[bytes]]]:
    """A buffer holding ``data``'s content, plus its chunk digests if known."""
    free = _BUF_POOL.get(len(data))
    if free:
        for i, (source, buf, chunks) in enumerate(free):
            if source is data:
                del free[i]
                return buf, chunks
        _source, buf, _chunks = free.pop()
        buf[:] = data
        return buf, None
    return bytearray(data), None


def _recycle_buffer(free: List[Tuple[object, bytearray, List[bytes]]],
                    buf: bytearray, source: object,
                    undo: List[Tuple[int, bytes, int]],
                    digest: ChunkedDigest) -> None:
    if len(free) >= 2:
        return
    for i in range(len(undo) - 1, -1, -1):
        addr, before, written = undo[i]
        buf[addr : addr + written] = before
        digest.invalidate(addr, max(written, len(before)))
    if len(buf) != len(source):  # rollback must have restored the length
        return
    # Repair the rolled-back ranges so the pooled chunk list describes the
    # base content exactly (untouched entries were already valid for it).
    chunks = digest._chunks
    view = memoryview(buf)
    for i, cached in enumerate(chunks):
        if cached is None:
            chunks[i] = hashlib.sha1(view[i * CHUNK : (i + 1) * CHUNK]).digest()
    free.append((source, buf, chunks))


class NPChunkedDigest(ChunkedDigest):
    """ChunkedDigest with a vectorized scan for the cold (all-dirty) case.

    The combined digest is computed exactly as the superclass does — sha1
    over the per-chunk sha1s in order — so values are identical; only the
    cold start avoids hashing chunks a numpy reduction proves are zero.
    """

    __slots__ = ()

    def digest(self) -> bytes:
        chunks = self._chunks
        n = len(chunks)
        # The vectorized path needs uniform full-size chunks (true for all
        # real device sizes; unit tests use tiny odd buffers) and only pays
        # off when everything is dirty (the first digest after construction).
        if (
            len(self.buf) == n * CHUNK
            and CHUNK % 8 == 0
            and chunks.count(None) == n
        ):
            prof = _profile.ACTIVE
            t0 = perf_counter() if prof is not None else 0.0
            words = np.frombuffer(self.buf, dtype=np.uint64)
            # A chunk is nonzero iff its max uint64 word is — one bandwidth
            # pass, no per-chunk python loop over the zero majority.
            starts = np.arange(0, words.size, CHUNK // 8)
            dirty = np.flatnonzero(np.maximum.reduceat(words, starts))
            view = memoryview(self.buf)
            for i in range(n):
                chunks[i] = _ZERO_CHUNK_DIGEST
            rehashed = 0
            for i in dirty.tolist():
                chunks[i] = hashlib.sha1(
                    view[i * CHUNK : (i + 1) * CHUNK]
                ).digest()
                rehashed += CHUNK
            combined = hashlib.sha1(b"".join(chunks))
            if prof is not None:
                prof.add("image.chunk_rehash", perf_counter() - t0, rehashed,
                         "digest_hashed")
            return combined.digest()
        return super().digest()


class LazyFenceBase:
    """A fence region's snapshot, backed by the live buffer + undo suffix.

    Duck-types :class:`repro.pm.image.FenceBase`: exposes ``digest``,
    ``data``, ``__len__`` and ``__getitem__``.  Nothing is copied when the
    base is handed out; byte content is reconstructed on demand by patching
    the tracker's live buffer with the before-images recorded since this
    region ended.
    """

    __slots__ = ("tracker", "_undo_pos", "digest", "_data", "_len",
                 "__weakref__")

    def __init__(self, tracker: "NPPersistTracker", undo_pos: int,
                 digest: bytes) -> None:
        self.tracker = tracker
        self._undo_pos = undo_pos
        self.digest = digest
        self._data: Optional[bytes] = None
        # The buffer's length *now* — writes past the device end grow the
        # bytearray (python-backend parity), so this base's historical
        # length can differ from both the device size and the live buffer.
        self._len = len(tracker.buf)

    def __len__(self) -> int:
        return self._len

    @property
    def adoptable(self) -> bool:
        """Whether content restores suffice to rebuild this base in place.

        False once a later write grew the live buffer: overlay writes
        cannot truncate, so zero-copy consumers (the checker's adopted
        mount device) must materialize :attr:`data` instead.
        """
        return len(self.tracker.buf) == self._len

    @property
    def data(self) -> bytes:
        """Flat snapshot bytes — the O(device) copy, paid only on demand."""
        if self._data is None:
            prof = _profile.ACTIVE
            t0 = perf_counter() if prof is not None else 0.0
            self._data = self.tracker.snapshot_at(self._undo_pos)
            if prof is not None:
                prof.add("replay.fence_base", perf_counter() - t0,
                         len(self._data), "materialized")
        return self._data

    def __getitem__(self, key):
        if self._data is not None:
            return self._data[key]
        size = self._len
        if isinstance(key, slice):
            start, stop, step = key.indices(size)
            if step == 1:
                return self.tracker.read_range(self._undo_pos, start, stop)
            return self.data[key]
        if key < 0:
            key += size
        if not 0 <= key < size:
            raise IndexError("index out of range")
        return self.tracker.read_range(self._undo_pos, key, key + 1)[0]

    # ------------------------------------------------------------------
    # Hooks the rest of the pipeline dispatches on
    # ------------------------------------------------------------------
    def restore_writes(self) -> List[OverlayWrite]:
        """Writes rolling the live buffer back to this base (apply in order).

        Empty while this base's region is the tracker's current one — the
        streaming-pipeline common case — and O(undo suffix) otherwise.
        """
        return self.tracker.restore_writes(self._undo_pos)

    def flatten_overlay(self, writes: Sequence[OverlayWrite]) -> Tuple[OverlayWrite, ...]:
        """Vectorized :func:`repro.pm.image.flatten_overlay` against this base."""
        return flatten_np(self, writes)


class NPPersistTracker:
    """The replayer's persistent buffer plus undo chain and content digest.

    Mirrors ``repro.core.replayer._PersistTracker``'s interface (``buf``,
    ``apply``, ``base``) but hands out :class:`LazyFenceBase` objects that
    share the live buffer instead of snapshotting it.
    """

    __slots__ = ("buf", "size", "_undo", "_digest", "_base", "__weakref__")

    def __init__(self, base_image: bytes) -> None:
        self.buf, chunks = _acquire_buffer(base_image)
        self.size = len(self.buf)
        #: Chronological before-images of every applied write.
        self._undo: List[OverlayWrite] = []
        self._digest = NPChunkedDigest(self.buf)
        if chunks is not None:
            # Pooled entries come with the base content's chunk digests —
            # skip the cold full-device scan entirely.
            self._digest._chunks = chunks
        weakref.finalize(
            self, _recycle_buffer, _BUF_POOL.setdefault(self.size, []),
            self.buf, base_image, self._undo, self._digest,
        )
        # Weak so a dead tracker/base pair frees by refcount (no gc cycle),
        # which is what lets the finalizer above recycle buffers promptly.
        self._base: Optional["weakref.ref[LazyFenceBase]"] = None

    # ------------------------------------------------------------------
    # Replayer interface
    # ------------------------------------------------------------------
    def apply(self, entries) -> None:
        """Persist a fence epoch, recording before-images for live bases."""
        if not entries:
            return
        prof = _profile.ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        buf = self.buf
        undo = self._undo
        invalidate = self._digest.invalidate
        applied = 0
        for entry in entries:
            addr = entry.addr
            data = entry.data
            end = addr + len(data)
            # The written length rides along so restores can undo a write
            # that grew the buffer past its end (bytearray slice-assign
            # extends, matching the python backend): restoring a shorter
            # before-image over the written span truncates it back.
            undo.append((addr, bytes(buf[addr:end]), len(data)))
            buf[addr:end] = data
            invalidate(addr, len(data))
            applied += len(data)
        self._base = None
        if prof is not None:
            prof.add("replay.persist_apply", perf_counter() - t0, applied)

    def base(self) -> LazyFenceBase:
        """The current region's shared base (cached until the next apply).

        Zero-copy: the returned base references the live buffer; the
        ``replay.fence_base`` callsite is still recorded (for call counts)
        but charges no materialized bytes unless ``.data`` is later pulled.
        """
        base = self._base() if self._base is not None else None
        if base is None:
            prof = _profile.ACTIVE
            t0 = perf_counter() if prof is not None else 0.0
            m0 = prof.mark() if prof is not None else 0.0
            base = LazyFenceBase(self, len(self._undo), self._digest.digest())
            self._base = weakref.ref(base)
            if prof is not None:
                # Exclusive of the chunk rehashes the digest runs inside.
                prof.add_exclusive("replay.fence_base", perf_counter() - t0,
                                   m0, 0)
        return base

    # ------------------------------------------------------------------
    # Reconstruction (LazyFenceBase's storage engine)
    # ------------------------------------------------------------------
    def restore_writes(self, undo_pos: int) -> List[OverlayWrite]:
        """Before-images from the undo suffix, newest first.

        Applying them in the returned order (later entries win) rolls the
        live buffer back to its content at ``undo_pos``.  Content-only:
        a suffix containing buffer-growing writes cannot be expressed as
        overlay writes (consumers must fall back to :meth:`snapshot_at`;
        see :attr:`LazyFenceBase.adoptable`).
        """
        undo = self._undo
        return [undo[i][:2] for i in range(len(undo) - 1, undo_pos - 1, -1)]

    def snapshot_at(self, undo_pos: int) -> bytes:
        """Flat buffer content as of ``undo_pos`` (one O(device) copy)."""
        out = bytearray(self.buf)
        undo = self._undo
        for i in range(len(undo) - 1, undo_pos - 1, -1):
            addr, before, written = undo[i]
            # Restoring over the *written* span truncates growth writes
            # back to the buffer's historical length (before is shorter).
            out[addr : addr + written] = before
        return bytes(out)

    def read_range(self, undo_pos: int, start: int, stop: int) -> bytes:
        """``[start, stop)`` content as of ``undo_pos`` — O(suffix + range)."""
        if stop <= start:
            return b""
        undo = self._undo
        if any(
            len(undo[i][1]) != undo[i][2]
            for i in range(undo_pos, len(undo))
        ):
            # A growth write in the suffix shifts the buffer's end; the
            # fixed-window patching below would be wrong.  Rare (only logs
            # writing past the device end), so the flat fallback is fine.
            return self.snapshot_at(undo_pos)[start:stop]
        out = bytearray(self.buf[start:stop])
        for i in range(len(undo) - 1, undo_pos - 1, -1):
            addr, before, _written = undo[i]
            end = addr + len(before)
            if addr < stop and start < end:
                s = max(addr, start)
                e = min(end, stop)
                out[s - start : e - start] = before[s - addr : e - addr]
        return bytes(out)


def flatten_np(base, writes: Sequence[OverlayWrite]) -> Tuple[OverlayWrite, ...]:
    """Vectorized exact byte diff from ``base`` after applying ``writes``.

    Same contract and same result as
    :func:`repro.pm.image.flatten_overlay`: later-writes-win flattening to
    single bytes, drop bytes equal to the base, merge survivors into
    maximal runs.  ``base`` is anything sliceable returning bytes
    (:class:`LazyFenceBase`, ``FenceBase``, or raw ``bytes``); only the
    merged overlay spans are ever read from it.
    """
    prof = _profile.ACTIVE
    t0 = perf_counter() if prof is not None else 0.0
    total = 0
    ranges = []
    for addr, data in writes:
        total += len(data)
        if data:
            ranges.append((addr, data))
    if not ranges:
        if prof is not None:
            prof.add("image.flatten_overlay", perf_counter() - t0, total)
        return ()
    if len(ranges) == 1:
        # The common shape (one replay unit, one coalesced store): no
        # overlap resolution needed — compare payload to base directly.
        addr, data = ranges[0]
        vals_all = np.frombuffer(data, dtype=np.uint8)
        seg = np.frombuffer(base[addr : addr + len(data)], dtype=np.uint8)
        keep = seg != vals_all
        positions = np.flatnonzero(keep) + addr
        survivors = vals_all[keep]
    else:
        pos = np.concatenate(
            [np.arange(addr, addr + len(data), dtype=np.int64)
             for addr, data in ranges]
        )
        val = np.concatenate(
            [np.frombuffer(data, dtype=np.uint8) for addr, data in ranges]
        )
        # Later writes win: reverse so np.unique's first-occurrence pick is
        # the chronologically last write to each position.
        uniq, first = np.unique(pos[::-1], return_index=True)
        vals = val[::-1][first]
        # Base content at exactly the written positions, fetched one merged
        # overlay span at a time (never the whole device).
        spans: List[Tuple[int, int]] = []
        for lo, hi in sorted((a, a + len(d)) for a, d in ranges):
            if spans and lo <= spans[-1][1]:
                if hi > spans[-1][1]:
                    spans[-1] = (spans[-1][0], hi)
            else:
                spans.append((lo, hi))
        base_vals = np.empty(uniq.size, dtype=np.uint8)
        for s, e in spans:
            i0 = int(np.searchsorted(uniq, s))
            i1 = int(np.searchsorted(uniq, e))
            if i0 == i1:
                continue
            seg = np.frombuffer(bytes(base[s:e]), dtype=np.uint8)
            base_vals[i0:i1] = seg[uniq[i0:i1] - s]
        keep = base_vals != vals
        positions = uniq[keep]
        survivors = vals[keep]
    if positions.size == 0:
        if prof is not None:
            prof.add("image.flatten_overlay", perf_counter() - t0, total)
        return ()
    breaks = np.flatnonzero(np.diff(positions) != 1) + 1
    bounds = [0, *breaks.tolist(), positions.size]
    flat = tuple(
        (int(positions[lo]), survivors[lo:hi].tobytes())
        for lo, hi in zip(bounds, bounds[1:])
    )
    if prof is not None:
        prof.add("image.flatten_overlay", perf_counter() - t0, total)
    return flat
