"""Latency model for persistence operations.

The paper's Observation-2 performance numbers (a rename-atomicity fix costing
25% on a rename microbenchmark; a link fix being 7% *faster* because the
in-place path needed an extra media read) are ratios of persistence-operation
counts.  We reproduce them with a simple additive latency model whose
constants follow published Optane DC measurements (Izraelevitz et al. 2019):
random reads ~300 ns, 64 B NT store ~90 ns, ``clwb`` ~60 ns, fence drain
~30 ns per outstanding line (approximated as a flat cost).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OpCounters:
    """Counts of persistence operations issued through a :class:`PersistenceOps`."""

    nt_stores: int = 0
    nt_bytes: int = 0
    flushes: int = 0  # one per cache line written back
    fences: int = 0
    cached_stores: int = 0
    reads: int = 0
    read_bytes: int = 0

    def snapshot(self) -> "OpCounters":
        return OpCounters(
            self.nt_stores,
            self.nt_bytes,
            self.flushes,
            self.fences,
            self.cached_stores,
            self.reads,
            self.read_bytes,
        )

    def delta(self, earlier: "OpCounters") -> "OpCounters":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return OpCounters(
            self.nt_stores - earlier.nt_stores,
            self.nt_bytes - earlier.nt_bytes,
            self.flushes - earlier.flushes,
            self.fences - earlier.fences,
            self.cached_stores - earlier.cached_stores,
            self.reads - earlier.reads,
            self.read_bytes - earlier.read_bytes,
        )


@dataclass
class CostModel:
    """Additive latency model over :class:`OpCounters` (times in nanoseconds)."""

    nt_store_per_line_ns: float = 90.0
    flush_ns: float = 60.0
    fence_ns: float = 30.0
    read_ns: float = 300.0
    read_per_line_ns: float = 15.0
    cached_store_ns: float = 1.0

    def cost_ns(self, c: OpCounters) -> float:
        """Total modelled latency of the counted operations."""
        nt_lines = 0
        if c.nt_stores:
            # Each NT store costs at least one line; bulk bytes add lines.
            nt_lines = max(c.nt_stores, (c.nt_bytes + 63) // 64)
        read_lines = (c.read_bytes + 63) // 64
        return (
            nt_lines * self.nt_store_per_line_ns
            + c.flushes * self.flush_ns
            + c.fences * self.fence_ns
            + c.reads * self.read_ns
            + read_lines * self.read_per_line_ns
            + c.cached_stores * self.cached_store_ns
        )

    def cost_us(self, c: OpCounters) -> float:
        return self.cost_ns(c) / 1000.0
