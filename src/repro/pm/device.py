"""Byte-addressable simulated persistent-memory device.

The device holds the *volatile* view of PM: the contents as seen by the
running CPU, including stores that are still sitting in caches.  Persistence
is not tracked here — it is derived from the :class:`~repro.pm.log.PMLog` of
persistence operations, exactly as Chipmunk derives crash states from its
write log rather than from the live image.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, List, Sequence, Tuple

from repro.obs import profile as _profile

#: Cache-line size on the modelled platform (bytes).
CACHE_LINE = 64

#: Unit of write atomicity on Intel PM (bytes); an aligned 8-byte store is
#: never torn by a crash.
ATOMIC_UNIT = 8


class PMDeviceError(Exception):
    """Raised on out-of-range device accesses."""


class PMDevice:
    """A fixed-size byte-addressable persistent-memory device.

    Parameters
    ----------
    size:
        Device capacity in bytes.  Must be a positive multiple of the
        cache-line size so flush ranges always stay in bounds.
    """

    def __init__(self, size: int, telemetry=None, *, image=None) -> None:
        if size <= 0 or size % CACHE_LINE != 0:
            raise PMDeviceError(
                f"device size must be a positive multiple of {CACHE_LINE}, got {size}"
            )
        if image is not None and len(image) != size:
            raise PMDeviceError(
                f"adopted image size {len(image)} does not match device size {size}"
            )
        self.size = size
        #: ``image=`` adopts an existing buffer by reference (no copy, no
        #: zero-fill) — the shared-mount path where the checker presents
        #: the replayer's live buffer as a device.
        self.image = image if image is not None else bytearray(size)
        self._undo: List[Tuple[int, bytes]] | None = None
        # Device access counters live on cached Counter objects so the
        # instrumented path is one attribute check plus two integer adds per
        # access; with no telemetry the check is all that remains.
        self._c_reads = self._c_read_bytes = None
        self._c_writes = self._c_write_bytes = None
        if telemetry is not None and telemetry.enabled:
            metrics = telemetry.metrics
            self._c_reads = metrics.counter("pm.reads")
            self._c_read_bytes = metrics.counter("pm.read_bytes")
            self._c_writes = metrics.counter("pm.writes")
            self._c_write_bytes = metrics.counter("pm.write_bytes")

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def check_range(self, addr: int, length: int) -> None:
        """Validate that ``[addr, addr+length)`` lies inside the device."""
        if addr < 0 or length < 0 or addr + length > self.size:
            raise PMDeviceError(
                f"access [{addr}, {addr + length}) outside device of size {self.size}"
            )

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes at ``addr`` from the volatile view."""
        self.check_range(addr, length)
        if self._c_reads is not None:
            self._c_reads.inc()
            self._c_read_bytes.inc(length)
        return bytes(self.image[addr : addr + length])

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr`` in the volatile view.

        This corresponds to a CPU store: the running system observes it
        immediately, but it is not persistent until logged persistence
        operations make it so.
        """
        self.check_range(addr, len(data))
        if self._c_writes is not None:
            self._c_writes.inc()
            self._c_write_bytes.inc(len(data))
        if self._undo is not None:
            self._undo.append((addr, bytes(self.image[addr : addr + len(data)])))
        self.image[addr : addr + len(data)] = data

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Return an immutable copy of the full volatile image."""
        return bytes(self.image)

    def restore(self, snap: bytes) -> None:
        """Replace the volatile image with a previously taken snapshot."""
        if not isinstance(snap, (bytes, bytearray)):
            snap = bytes(snap)
        if len(snap) != self.size:
            raise PMDeviceError(
                f"snapshot size {len(snap)} does not match device size {self.size}"
            )
        self.image = bytearray(snap)

    @classmethod
    def from_snapshot(cls, snap: bytes, telemetry=None) -> "PMDevice":
        """Build a new device whose image is a copy of ``snap``.

        ``snap`` may be anything bytes-like, including a lazy
        :class:`~repro.pm.image.CrashImage` (materialized here) — the
        legacy eager path for callers that hold flat images.
        """
        if not isinstance(snap, (bytes, bytearray)):
            snap = bytes(snap)
        return cls(len(snap), telemetry=telemetry, image=bytearray(snap))

    @classmethod
    def adopt(cls, buf: bytearray, telemetry=None) -> "PMDevice":
        """Present an existing mutable buffer as a device, by reference.

        Writes through the device mutate ``buf`` in place; callers pair
        this with :meth:`cow_view`, whose exit restores every byte it
        changed, to mount crash states directly on the replayer's live
        buffer without any per-region copy.
        """
        return cls(len(buf), telemetry=telemetry, image=buf)

    # ------------------------------------------------------------------
    # Undo log (used by the consistency checker, section 3.3: "we reuse our
    # logging infrastructure to record an undo log for these mutations and
    # roll back the changes when advancing to the next crash state").
    # ------------------------------------------------------------------
    def begin_undo(self) -> None:
        """Start recording before-images for every subsequent write."""
        if self._undo is not None:
            raise PMDeviceError("undo log already active")
        self._undo = []

    def rollback_undo(self) -> None:
        """Undo every write made since :meth:`begin_undo` and stop recording."""
        if self._undo is None:
            raise PMDeviceError("no undo log active")
        records, self._undo = self._undo, None
        for addr, before in reversed(records):
            self.image[addr : addr + len(before)] = before

    def discard_undo(self) -> None:
        """Stop recording without rolling anything back."""
        if self._undo is None:
            raise PMDeviceError("no undo log active")
        self._undo = None

    @property
    def undo_active(self) -> bool:
        return self._undo is not None

    # ------------------------------------------------------------------
    # Copy-on-write mount view
    # ------------------------------------------------------------------
    @contextmanager
    def cow_view(self, writes: Sequence[Tuple[int, bytes]]) -> Iterator["PMDevice"]:
        """Temporarily present the image with ``writes`` overlaid.

        The checker mounts every crash state of one fence region on the
        *same* shared device: this view applies the state's sparse overlay
        in place (saving before-images), arms the undo log so any mutation
        the caller makes — mount-time recovery writes, the usability pass —
        is recorded, and on exit rolls back both, restoring the device to
        the fence base byte-for-byte.  A clean check of a one-replay state
        therefore touches kilobytes, not the whole image.

        Overlay application is deliberately silent: it bypasses the write
        telemetry counters (it is state *construction*, not file-system
        work) and the undo log, which only covers the caller's mutations.

        Before-images are captured as one slab per *merged span* of the
        overlay, not one per write: overlapping and adjacent writes (the
        restore-patch + overlay compositions of the numpy backend) save
        each byte once, and rollback restores a handful of contiguous
        slabs instead of replaying the write list backwards.
        """
        if self._undo is not None:
            raise PMDeviceError("undo log already active")
        prof = _profile.ACTIVE
        image = self.image
        t0 = perf_counter() if prof is not None else 0.0
        applied = 0
        spans: List[Tuple[int, int]] = []
        for lo, hi in sorted((a, a + len(d)) for a, d in writes):
            if spans and lo <= spans[-1][1]:
                if hi > spans[-1][1]:
                    spans[-1] = (spans[-1][0], hi)
            else:
                spans.append((lo, hi))
        for lo, hi in spans:
            self.check_range(lo, hi - lo)
        before: List[Tuple[int, bytes]] = [
            (lo, bytes(image[lo:hi])) for lo, hi in spans
        ]
        for addr, data in writes:
            image[addr : addr + len(data)] = data
            applied += len(data)
        if prof is not None:
            prof.add("device.cow_apply", perf_counter() - t0, applied,
                     "overlay_applied")
        self._undo = []
        try:
            yield self
        finally:
            prof = _profile.ACTIVE
            t0 = perf_counter() if prof is not None else 0.0
            records, self._undo = self._undo or [], None
            rolled = 0
            for addr, prior in reversed(records):
                image[addr : addr + len(prior)] = prior
                rolled += len(prior)
            for addr, prior in reversed(before):
                image[addr : addr + len(prior)] = prior
                rolled += len(prior)
            if prof is not None:
                prof.add("device.cow_rollback", perf_counter() - t0, rolled,
                         "cow_rollback")


def cacheline_span(addr: int, length: int) -> range:
    """Return the addresses of the cache lines overlapping a byte range."""
    if length <= 0:
        return range(0)
    first = (addr // CACHE_LINE) * CACHE_LINE
    last = ((addr + length - 1) // CACHE_LINE) * CACHE_LINE
    return range(first, last + CACHE_LINE, CACHE_LINE)
