"""Simulated persistent-memory substrate.

This package models the x86 epoch persistence model the paper describes in
section 2: writes to PM flow through volatile CPU caches and become persistent
only once they are flushed (``clwb``/``clflushopt``) or written with
non-temporal stores, *and* a subsequent store fence has executed.  Everything
Chipmunk does — logging persistence operations, constructing crash states from
in-flight writes — is built on the primitives defined here.
"""

from repro.pm.device import ATOMIC_UNIT, CACHE_LINE, PMDevice
from repro.pm.log import (
    Fence,
    Flush,
    LogEntry,
    NTStore,
    PMLog,
    SyscallBegin,
    SyscallEnd,
)
from repro.pm.persistence import (
    PersistenceOps,
    PersistenceSpec,
    persistence_function,
)
from repro.pm.costmodel import CostModel, OpCounters

__all__ = [
    "ATOMIC_UNIT",
    "CACHE_LINE",
    "PMDevice",
    "PMLog",
    "LogEntry",
    "NTStore",
    "Flush",
    "Fence",
    "SyscallBegin",
    "SyscallEnd",
    "PersistenceOps",
    "PersistenceSpec",
    "persistence_function",
    "CostModel",
    "OpCounters",
]
