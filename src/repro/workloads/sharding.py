"""Workload sharding for parallel campaigns.

The paper ran the 50k seq-3 metadata workloads split across ten VMs
(section 4.2).  :func:`shard` deterministically partitions any ACE sequence
space so independent workers (processes, machines) can each take a slice and
the union covers the space exactly once.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.workloads.ace import AceWorkload, generate


def shard(
    seq: int,
    n_shards: int,
    shard_index: int,
    mode: str = "pm",
    limit: Optional[int] = None,
) -> Iterator[AceWorkload]:
    """Workloads of seq-``seq`` belonging to shard ``shard_index``.

    Round-robin by workload index: shard *k* of *n* gets every workload
    whose index is congruent to *k* mod *n* — deterministic, disjoint, and
    exhaustive across shards.
    """
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if not (0 <= shard_index < n_shards):
        raise ValueError(f"shard_index {shard_index} out of range for {n_shards}")
    selected = (
        w for w in generate(seq, mode=mode) if w.index % n_shards == shard_index
    )
    if limit is not None:
        selected = itertools.islice(selected, limit)
    return selected


def shard_sizes(seq: int, n_shards: int) -> list:
    """Number of workloads in each shard (they differ by at most one)."""
    from repro.workloads.ace import count

    total = count(seq)
    base = total // n_shards
    extra = total % n_shards
    return [base + (1 if i < extra else 0) for i in range(n_shards)]
