"""Workload representation and generators (ACE and the gray-box fuzzer)."""

from repro.workloads.ops import Op, Workload, execute_op
from repro.workloads.coverage import CoverageMap

__all__ = ["Op", "Workload", "execute_op", "CoverageMap"]
