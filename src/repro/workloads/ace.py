"""Automatic Crash Explorer (ACE) workload generation.

ACE (Mohan et al., CrashMonkey) exhaustively enumerates workloads of a fixed
length over a small file set — the "small workloads on a small file-system
state find most bugs" hypothesis the paper set out to test on PM file
systems.  Following the paper's adaptation (section 3.4.1):

* the default mode inserts fsync-family operations after each core op and a
  trailing ``sync`` (for ext4-DAX/XFS-DAX);
* the PM mode omits them entirely (strong-guarantee file systems make every
  operation durable on their own);
* each workload carries a *setup* phase that satisfies dependencies —
  creating parent directories and input files — executed before crash
  recording starts, as in CrashMonkey.

Workload space.  ``seq-n`` is the cross product of the core-op space taken
``n`` times; ``seq-3`` is restricted to the metadata operations (pwrite,
link, unlink, rename) as in the paper.  ACE deliberately keeps arguments
aligned and simple — which is exactly why it misses the four bugs whose
triggers need unaligned sizes (section 4.3); those are the fuzzer's job.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.vfs.path import dirname
from repro.workloads.ops import Op

#: The ACE file set: two directories and four files.
DIRS = ("/A", "/B")
FILES = ("/foo", "/bar", "/A/foo", "/A/bar")

#: Sizes used by ACE's data operations (block-aligned or the classic 2500).
WRITE_SIZES = (1024,)
TRUNCATE_SIZES = (2500, 700, 512)

#: Initial content written to setup-created files so shrinking truncates and
#: overwrites have data to destroy.
SETUP_DATA_LEN = 1024
SETUP_FILL = 0x41


@dataclass(frozen=True)
class AceWorkload:
    """A generated test: dependency setup plus the core operations."""

    setup: Tuple[Op, ...]
    core: Tuple[Op, ...]
    seq: int
    index: int

    def name(self) -> str:
        return f"seq{self.seq}-{self.index:06d}"


def core_op_space() -> List[Op]:
    """The seq-1 core operation space (PM mode)."""
    ops: List[Op] = []
    ops += [Op("creat", (f,)) for f in FILES]
    ops += [Op("mkdir", (d,)) for d in DIRS]
    for f in FILES:
        for size in WRITE_SIZES:
            ops.append(Op("write", (f, 0, 0x42, size)))
            ops.append(Op("write", (f, 512, 0x43, size)))
            ops.append(Op("append", (f, 0, 0x44, 512)))
    for f in FILES:
        ops.append(Op("fallocate", (f, 0, 1024)))
        ops.append(Op("fallocate", (f, 512, 1024)))
    ops += [
        Op("link", ("/foo", "/bar")),
        Op("link", ("/foo", "/A/bar")),
        Op("link", ("/A/foo", "/A/bar")),
        Op("link", ("/A/foo", "/bar")),
    ]
    ops += [Op("unlink", (f,)) for f in FILES]
    ops += [Op("remove", (f,)) for f in ("/foo", "/A/foo")]
    ops += [
        Op("rename", ("/foo", "/bar")),
        Op("rename", ("/foo", "/A/bar")),
        Op("rename", ("/A/foo", "/bar")),
        Op("rename", ("/A/foo", "/A/bar")),
        Op("rename", ("/A", "/B")),
    ]
    for f in FILES:
        for size in TRUNCATE_SIZES:
            ops.append(Op("truncate", (f, size)))
    ops += [Op("rmdir", (d,)) for d in DIRS]
    return ops


def metadata_op_space() -> List[Op]:
    """The seq-3 restriction: pwrite, link, unlink, rename (paper 3.4.1)."""
    return [
        op
        for op in core_op_space()
        if op.name in ("write", "append", "link", "unlink", "rename")
    ]


# ---------------------------------------------------------------------------
# Dependency satisfaction
# ---------------------------------------------------------------------------


def _needed_paths(op: Op) -> Tuple[Set[str], Set[str]]:
    """Paths an op requires to exist: (files, dirs)."""
    name, args = op.name, op.args
    files: Set[str] = set()
    dirs: Set[str] = set()
    if name in ("write", "append", "fallocate", "truncate", "unlink", "remove", "fsync", "fdatasync"):
        files.add(args[0])
    elif name == "link":
        files.add(args[0])
        dirs.add(dirname(args[1]))
    elif name == "rename":
        src = args[0]
        if src in DIRS:
            dirs.add(src)
        else:
            files.add(src)
        dirs.add(dirname(args[1]))
    elif name == "rmdir":
        dirs.add(args[0])
    for path in files:
        dirs.add(dirname(path))
    if name in ("creat", "mkdir"):
        dirs.add(dirname(args[0]))
    dirs.discard("/")
    return files, dirs


def build_setup(core: Sequence[Op]) -> List[Op]:
    """Dependency phase: create the dirs and (data-filled) files the core
    operations consume, tracking namespace changes op by op."""
    setup: List[Op] = []
    existing_files: Set[str] = set()
    existing_dirs: Set[str] = {"/"}
    #: Paths an earlier *core* op created or removed: their state at each
    #: point is part of the workload and cannot be patched by setup (an op
    #: that needs a file a previous core op removed simply fails — a legal
    #: workload, exactly as in ACE).
    core_touched: Set[str] = set()

    def ensure_dir(d: str) -> None:
        if d in ("", "/") or d in existing_dirs or d in core_touched:
            return
        ensure_dir(dirname(d))
        setup.append(Op("mkdir", (d,)))
        existing_dirs.add(d)

    def ensure_file(f: str) -> None:
        if f in existing_files or f in core_touched:
            return
        ensure_dir(dirname(f))
        setup.append(Op("creat", (f,)))
        setup.append(Op("write", (f, 0, SETUP_FILL, SETUP_DATA_LEN)))
        existing_files.add(f)

    for op in core:
        files, dirs = _needed_paths(op)
        for d in sorted(dirs):
            ensure_dir(d)
        for f in sorted(files):
            ensure_file(f)
        core_touched.update(
            arg for arg in op.args if isinstance(arg, str)
        )
    return setup


def _with_fsync(core: Sequence[Op]) -> List[Op]:
    """Default (weak-FS) mode: fsync the touched file after each core op and
    finish with a sync, as the paper's adapted ACE does."""
    out: List[Op] = []
    for op in core:
        out.append(op)
        target: Optional[str] = None
        if op.args and isinstance(op.args[0], str) and op.name not in ("rmdir", "unlink", "remove", "rename"):
            target = op.args[0]
        if target is not None:
            out.append(Op("fsync", (target,)))
    out.append(Op("sync", ()))
    return out


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def generate(seq: int, mode: str = "pm") -> Iterator[AceWorkload]:
    """Generate all seq-``seq`` workloads.

    ``mode`` is ``"pm"`` (no fsync; strong-guarantee file systems) or
    ``"fsync"`` (fsync-family calls inserted; ext4-DAX/XFS-DAX).
    ``seq=3`` uses the metadata-only op space, as in the paper.
    """
    if mode not in ("pm", "fsync"):
        raise ValueError(f"unknown ACE mode {mode!r}")
    space = metadata_op_space() if seq >= 3 else core_op_space()
    for index, combo in enumerate(itertools.product(space, repeat=seq)):
        core: List[Op] = list(combo)
        setup = build_setup(core)
        if mode == "fsync":
            core = _with_fsync(core)
        yield AceWorkload(setup=tuple(setup), core=tuple(core), seq=seq, index=index)


def count(seq: int, mode: str = "pm") -> int:
    """Number of seq-``seq`` workloads without generating them."""
    space = metadata_op_space() if seq >= 3 else core_op_space()
    return len(space) ** seq


def workload_at(seq: int, index: int, mode: str = "pm") -> AceWorkload:
    """Random access into the workload space: the workload :func:`generate`
    would yield at ``index``, computed in O(``seq``) without enumeration.

    ``itertools.product`` enumerates with the *last* position varying
    fastest, so ``index`` decodes as a base-``len(space)`` numeral whose
    most significant digit selects the first op.  Campaign workers use this
    to regenerate exactly the workloads their shard names, so a work item
    travels across process (or machine) boundaries as a bare integer.
    """
    if mode not in ("pm", "fsync"):
        raise ValueError(f"unknown ACE mode {mode!r}")
    space = metadata_op_space() if seq >= 3 else core_op_space()
    total = len(space) ** seq
    if not 0 <= index < total:
        raise ValueError(f"index {index} out of range for seq-{seq} ({total})")
    digits: List[int] = []
    remaining = index
    for _ in range(seq):
        remaining, digit = divmod(remaining, len(space))
        digits.append(digit)
    core: List[Op] = [space[d] for d in reversed(digits)]
    setup = build_setup(core)
    if mode == "fsync":
        core = _with_fsync(core)
    return AceWorkload(setup=tuple(setup), core=tuple(core), seq=seq, index=index)
