"""Serializable workload operations.

A workload is a sequence of :class:`Op` values — syscall descriptors with
concrete arguments.  Both the system under test and the oracle execute the
same descriptors through :func:`execute_op`, which maps POSIX-style failures
to errno names instead of exceptions (a failing syscall is part of a valid
workload, exactly as in ACE and Syzkaller runs).

Write data is described as ``(fill_byte, length)`` so workloads stay small,
hashable, and deterministic; the bytes are materialized at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.vfs.errors import FsError
from repro.vfs.interface import FileSystem

#: Operations with no trailing data payload.
PATH_OPS = ("creat", "mkdir", "rmdir", "unlink", "remove", "fsync", "fdatasync")
TWO_PATH_OPS = ("link", "rename")


@dataclass(frozen=True)
class Op:
    """One syscall in a workload.

    ``name`` is the syscall (paper section 4.1 set plus the fsync family and
    xattrs); ``args`` are concrete values:

    * ``creat``/``mkdir`` — (path,)
    * ``rmdir``/``unlink``/``remove``/``fsync``/``fdatasync`` — (path,)
    * ``link``/``rename`` — (oldpath, newpath)
    * ``truncate`` — (path, length)
    * ``fallocate`` — (path, offset, length)
    * ``write``/``pwrite``/``append`` — (path, offset, fill_byte, length);
      append ignores the offset and writes at EOF
    * ``sync`` — ()
    * ``setxattr`` — (path, name, value_fill, value_len)
    * ``removexattr`` — (path, name)
    """

    name: str
    args: Tuple = ()

    def describe(self) -> str:
        return f"{self.name}({', '.join(repr(a) for a in self.args)})"


Workload = Sequence[Op]


def describe_workload(workload: Workload) -> str:
    return "; ".join(op.describe() for op in workload)


def data_bytes(fill_byte: int, length: int) -> bytes:
    """Deterministic data payload: a fill byte with a rolling tweak so
    distinct regions remain distinguishable in content comparisons."""
    if length <= 0:
        return b""
    return bytes((fill_byte + (i // 64)) % 256 for i in range(length))


def execute_op(fs: FileSystem, op: Op) -> Optional[str]:
    """Run one op; return the errno name on POSIX failure, None on success."""
    try:
        _dispatch(fs, op)
        return None
    except FsError as exc:
        return exc.errno_name


def _dispatch(fs: FileSystem, op: Op) -> None:
    name, args = op.name, op.args
    if name == "creat":
        fs.creat(args[0])
    elif name == "mkdir":
        fs.mkdir(args[0])
    elif name == "rmdir":
        fs.rmdir(args[0])
    elif name == "unlink":
        fs.unlink(args[0])
    elif name == "remove":
        fs.remove(args[0])
    elif name == "link":
        fs.link(args[0], args[1])
    elif name == "rename":
        fs.rename(args[0], args[1])
    elif name == "truncate":
        fs.truncate(args[0], args[1])
    elif name == "fallocate":
        fs.fallocate(args[0], args[1], args[2])
    elif name in ("write", "pwrite"):
        path, offset, fill, length = args
        fs.write(path, offset, data_bytes(fill, length))
    elif name == "append":
        path, _, fill, length = args
        fs.append(path, data_bytes(fill, length))
    elif name == "fsync":
        fs.fsync(args[0])
    elif name == "fdatasync":
        fs.fdatasync(args[0])
    elif name == "sync":
        fs.sync()
    elif name == "setxattr":
        path, xname, fill, length = args
        fs.setxattr(path, xname, data_bytes(fill, length))
    elif name == "removexattr":
        fs.removexattr(args[0], args[1])
    elif name == "read":
        path, offset, length = args
        fs.read(path, offset, length)
    elif name == "stat":
        fs.stat(args[0])
    else:
        raise ValueError(f"unknown workload op {name!r}")


def run_workload(fs: FileSystem, workload: Workload) -> List[Optional[str]]:
    """Execute a whole workload, returning per-op errno names."""
    return [execute_op(fs, op) for op in workload]
