"""Coverage feedback for the gray-box fuzzer.

The real Chipmunk collects kernel coverage via KCOV (Syzkaller) and
user-space coverage via GCC's sanitizer instrumentation (SplitFS).  Our file
systems expose the same signal through explicit coverage points
(:meth:`repro.vfs.interface.FileSystem.cov`) placed on interesting branches;
a :class:`CoverageMap` records which points a workload reached so the fuzzer
can keep inputs that exercise new code.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set


class CoverageMap:
    """Set of coverage points hit, with hit counts."""

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {}

    def hit(self, point: str) -> None:
        self.hits[point] = self.hits.get(point, 0) + 1

    def points(self) -> FrozenSet[str]:
        return frozenset(self.hits)

    def reset(self) -> None:
        self.hits.clear()

    def __len__(self) -> int:
        return len(self.hits)


class GlobalCoverage:
    """Corpus-wide coverage accumulator used by the fuzzer's feedback loop."""

    def __init__(self) -> None:
        self.seen: Set[str] = set()

    def add(self, points: FrozenSet[str]) -> int:
        """Merge a run's coverage; return how many points were new."""
        new = points - self.seen
        self.seen |= new
        return len(new)

    def __len__(self) -> int:
        return len(self.seen)
