"""Gray-box workload fuzzer (the Syzkaller analogue, paper section 3.4.2).

Generates syntactically and semantically plausible workloads from typed
templates (valid paths from a name pool, size/offset ranges per syscall),
executes each through Chipmunk, and keeps workloads that reach new coverage
points as seeds for mutation — the standard generational gray-box loop.
Bug reports are clustered by lexical similarity
(:mod:`repro.core.triage`), mirroring the triage procedure the paper added
to Syzkaller's dashboard.

Unlike ACE, the fuzzer freely generates unaligned offsets and sizes, repeats
operations on one file, and builds longer programs — exactly the workload
shapes that exposed the four ACE-invisible bugs (section 4.3).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.harness import Chipmunk, TestResult
from repro.core.triage import Cluster, Triage
from repro.workloads.coverage import CoverageMap, GlobalCoverage
from repro.workloads.ops import Op, Workload

NAME_POOL = ("foo", "bar", "baz", "qux")
DIR_POOL = ("A", "B")

#: Weights of each syscall template (writes over-represented, as Syzkaller's
#: file-system-focused configuration does).
SYSCALL_WEIGHTS = [
    ("creat", 3),
    ("mkdir", 2),
    ("rmdir", 1),
    ("link", 2),
    ("unlink", 2),
    ("rename", 2),
    ("truncate", 2),
    ("fallocate", 2),
    ("write", 5),
    ("append", 2),
]

MAX_PROGRAM_LEN = 8
MAX_OFFSET = 2048
MAX_LEN = 1500


@dataclass
class FuzzStats:
    """Progress counters of one fuzzing campaign."""

    executions: int = 0
    corpus_size: int = 0
    coverage_points: int = 0
    crash_states: int = 0
    reports: int = 0
    clusters: int = 0
    elapsed: float = 0.0
    #: (execution index, elapsed seconds) when each new cluster was found.
    cluster_found_at: List[Tuple[int, float]] = field(default_factory=list)


class WorkloadFuzzer:
    """Coverage-guided workload generator bound to one Chipmunk instance."""

    def __init__(
        self,
        chipmunk: Chipmunk,
        seed: int = 0,
        seeds: Optional[List[Workload]] = None,
    ) -> None:
        self.chipmunk = chipmunk
        self.rng = random.Random(seed)
        self.corpus: List[List[Op]] = [list(w) for w in seeds or []]
        self.coverage = GlobalCoverage()
        self.triage = Triage()
        self.stats = FuzzStats()

    # ------------------------------------------------------------------
    # Typed generation
    # ------------------------------------------------------------------
    def _path(self, depth_ok: bool = True) -> str:
        if depth_ok and self.rng.random() < 0.4:
            return f"/{self.rng.choice(DIR_POOL)}/{self.rng.choice(NAME_POOL)}"
        return f"/{self.rng.choice(NAME_POOL)}"

    def _dir_path(self) -> str:
        return f"/{self.rng.choice(DIR_POOL)}"

    def _offset(self) -> int:
        # Mixed distribution: aligned offsets, small unaligned ones, and
        # arbitrary values (the non-8-byte-aligned writes ACE never emits).
        roll = self.rng.random()
        if roll < 0.4:
            return self.rng.choice((0, 512, 1024))
        if roll < 0.7:
            return self.rng.randrange(0, 64)
        return self.rng.randrange(0, MAX_OFFSET)

    def _length(self) -> int:
        roll = self.rng.random()
        if roll < 0.35:
            return self.rng.choice((512, 1024))
        if roll < 0.7:
            return self.rng.randrange(1, 64)
        return self.rng.randrange(1, MAX_LEN)

    def random_op(self) -> Op:
        total = sum(w for _, w in SYSCALL_WEIGHTS)
        pick = self.rng.randrange(total)
        for name, weight in SYSCALL_WEIGHTS:
            pick -= weight
            if pick < 0:
                break
        if name == "creat":
            return Op("creat", (self._path(),))
        if name == "mkdir":
            return Op("mkdir", (self._dir_path(),))
        if name == "rmdir":
            return Op("rmdir", (self._dir_path(),))
        if name == "link":
            return Op("link", (self._path(), self._path()))
        if name == "unlink":
            return Op("unlink", (self._path(),))
        if name == "rename":
            if self.rng.random() < 0.15:
                return Op("rename", (self._dir_path(), self._dir_path()))
            return Op("rename", (self._path(), self._path()))
        if name == "truncate":
            return Op("truncate", (self._path(), self._length()))
        if name == "fallocate":
            return Op("fallocate", (self._path(), self._offset(), self._length()))
        if name == "append":
            return Op("append", (self._path(), 0, self.rng.randrange(256), self._length()))
        return Op(
            "write",
            (self._path(), self._offset(), self.rng.randrange(256), self._length()),
        )

    def random_program(self) -> List[Op]:
        return [self.random_op() for _ in range(self.rng.randrange(1, MAX_PROGRAM_LEN + 1))]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mutate(self, program: List[Op]) -> List[Op]:
        program = list(program)
        for _ in range(self.rng.randrange(1, 3)):
            choice = self.rng.random()
            if choice < 0.3 and len(program) < MAX_PROGRAM_LEN:
                program.insert(self.rng.randrange(len(program) + 1), self.random_op())
            elif choice < 0.45 and len(program) > 1:
                program.pop(self.rng.randrange(len(program)))
            elif choice < 0.7:
                index = self.rng.randrange(len(program))
                program[index] = self._mutate_args(program[index])
            elif self.corpus:
                # Splice with another corpus program.
                other = self.rng.choice(self.corpus)
                cut = self.rng.randrange(len(program) + 1)
                program = (program[:cut] + list(other))[:MAX_PROGRAM_LEN]
            else:
                index = self.rng.randrange(len(program))
                program[index] = self.random_op()
        return program

    def _mutate_args(self, op: Op) -> Op:
        args = list(op.args)
        for i, value in enumerate(args):
            if isinstance(value, int) and self.rng.random() < 0.6:
                delta = self.rng.choice((-17, -8, -1, 1, 3, 8, 64, 511))
                args[i] = max(0, value + delta)
            elif isinstance(value, str) and self.rng.random() < 0.3:
                args[i] = self._path()
        return Op(op.name, tuple(args))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def next_program(self) -> List[Op]:
        if self.corpus and self.rng.random() < 0.7:
            return self.mutate(self.rng.choice(self.corpus))
        return self.random_program()

    def step(self) -> TestResult:
        """Generate, execute, and learn from one workload."""
        tel = self.chipmunk.telemetry
        program = self.next_program()
        coverage = CoverageMap()
        result = self.chipmunk.test_workload(program, coverage=coverage)
        self.stats.executions += 1
        self.stats.crash_states += result.n_crash_states
        if self.coverage.add(coverage.points()):
            self.corpus.append(program)
            if tel.enabled:
                tel.count("fuzzer.corpus_adds")
        before = len(self.triage.clusters)
        self.triage.add_all(result.reports)
        self.stats.reports += len(result.reports)
        if len(self.triage.clusters) > before:
            self.stats.cluster_found_at.append(
                (self.stats.executions, self.stats.elapsed)
            )
            if tel.enabled:
                for index in range(before, len(self.triage.clusters)):
                    exemplar = self.triage.clusters[index].exemplar
                    tel.event(
                        "cluster_found",
                        cluster=index,
                        workload=self.stats.executions,
                        t=self.stats.elapsed,
                        consequence=exemplar.consequence.name,
                    )
        if tel.enabled:
            tel.set_gauge("fuzzer.coverage_points", len(self.coverage))
            tel.set_gauge("fuzzer.corpus_size", len(self.corpus))
        return result

    def run(
        self,
        max_executions: Optional[int] = None,
        time_budget: Optional[float] = None,
        stop_after_clusters: Optional[int] = None,
    ) -> FuzzStats:
        """Fuzz until a budget is exhausted; returns the campaign stats.

        The stats are finalized even when the loop exits by exception
        (notably ``KeyboardInterrupt``), so an interrupted campaign still
        reports its partial progress accurately via :attr:`stats`.
        """
        start = time.perf_counter()
        try:
            while True:
                self.stats.elapsed = time.perf_counter() - start
                if max_executions is not None and self.stats.executions >= max_executions:
                    break
                if time_budget is not None and self.stats.elapsed >= time_budget:
                    break
                if (
                    stop_after_clusters is not None
                    and len(self.triage.clusters) >= stop_after_clusters
                ):
                    break
                self.step()
        finally:
            self.stats.elapsed = time.perf_counter() - start
            self.stats.corpus_size = len(self.corpus)
            self.stats.coverage_points = len(self.coverage)
            self.stats.clusters = len(self.triage.clusters)
        return self.stats

    @property
    def clusters(self) -> List[Cluster]:
        return self.triage.clusters
