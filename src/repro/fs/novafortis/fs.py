"""NOVA-Fortis-like fault-tolerant PM file system.

NOVA-Fortis (Xu et al., SOSP '17) extends NOVA with fault detection and
tolerance: inode checksums, inode replicas, and per-block data checksums.
This implementation subclasses :class:`repro.fs.nova.fs.NovaFS` and inherits
every NOVA crash-consistency bug (the paper found all NOVA bugs in Fortis
too), adding the four resilience-specific bugs of Table 1:

* bug 9 — unlink/rmdir/truncate recompute the inode checksum *after* the
  commit flush with a cached store, so a crash leaves a stale checksum and
  the inode verifies as corrupt (unreadable) on the next mount;
* bug 10 — write/link/rename sync the inode replica lazily at operation end;
  a mid-operation crash leaves primary and replica divergent, and the buggy
  unlink verification refuses to touch the file (undeletable);
* bug 11 — mount-time replay of the pending-truncate record frees blocks the
  log rebuild already freed, tripping the allocator double-free assertion;
* bug 12 — a shrinking truncate does not re-stamp the tail block's data
  checksum over the shorter valid length, so post-crash reads fail
  verification (unreadable).

Substitution note (DESIGN.md): real Fortis *heals* a bad-checksum inode from
its replica; we flag it corrupt instead, which keeps each injected bug
independently observable.  Checksum verification runs only on instances that
came from ``mount`` (i.e. post-crash), matching Fortis's recovery-time scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.fs.common.layout import Region, crc32, read_u16, read_u32, read_u64, u16, u32, u64
from repro.fs.nova import layout as L
from repro.fs.nova.dram import DramInode
from repro.fs.nova.fs import NovaFS, NovaPersistence
from repro.vfs.errors import FsError
from repro.vfs.interface import MountError

# Pending-truncate record layout (one block).
PT_VALID = 0
PT_INO = 4
PT_NEW_SIZE = 8
PT_N_BLOCKS = 16
PT_BLOCKS = 20
PT_MAX_BLOCKS = 32

# Data checksum table entry: 8 bytes per device block.
CSUM_ENTRY_SIZE = 8
CE_VALID_LEN = 0  # u16
CE_CSUM = 4  # u32


@dataclass(frozen=True)
class FortisGeometry(L.NovaGeometry):
    """NOVA geometry plus the replica, data-checksum, and pending-truncate
    regions."""

    @property
    def replica_table(self) -> Region:
        base = super().inode_table
        return Region(base.end, base.size)

    @property
    def csum_table(self) -> Region:
        size = self.n_blocks * CSUM_ENTRY_SIZE
        size = ((size + self.block_size - 1) // self.block_size) * self.block_size
        return Region(self.replica_table.end, size)

    @property
    def pending_truncate(self) -> Region:
        return Region(self.csum_table.end, self.block_size)

    @property
    def first_data_block(self) -> int:
        return self.pending_truncate.end // self.block_size

    def replica_addr(self, ino: int) -> int:
        return self.replica_table.slot(ino, L.INODE_SLOT_SIZE)

    def csum_entry_addr(self, block: int) -> int:
        return self.csum_table.offset + block * CSUM_ENTRY_SIZE


class FortisPersistence(NovaPersistence):
    """Fortis shares NOVA's persistence functions (same module in-kernel)."""


class NovaFortisFS(NovaFS):
    """NOVA-Fortis (see module docstring)."""

    name = "nova-fortis"
    ops_class = FortisPersistence
    geometry_class = FortisGeometry

    #: Operations whose inode-checksum maintenance is lazy under bug 9.
    LAZY_CSUM_OPS = ("unlink", "rmdir", "truncate")
    #: Operations whose replica sync is lazy under bug 10.
    LAZY_REPLICA_OPS = ("write", "link", "rename")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._op = ""
        self._pending_replicas: List[int] = []
        self._bad_slots: Set[int] = set()

    # ------------------------------------------------------------------
    # Layout + mechanism hints
    # ------------------------------------------------------------------
    @classmethod
    def layout_map(cls, image: bytes):
        from repro.fs.common.layout import LayoutMap, NamedRegion

        base = super().layout_map(image)
        if len(base.regions) < 2:  # torn superblock: single anonymous region
            return base
        geom = cls._coerce_geometry(L.unpack_superblock(bytes(image[:64])))
        # Insert the Fortis resilience regions between NOVA's inode table
        # and the (already Fortis-offset) data region.
        named = list(base.regions)
        named[-1:-1] = [
            NamedRegion("replica_table", geom.replica_table,
                        slot_size=L.INODE_SLOT_SIZE),
            NamedRegion("csum_table", geom.csum_table,
                        slot_size=CSUM_ENTRY_SIZE),
            NamedRegion("pending_truncate", geom.pending_truncate),
        ]
        return LayoutMap(tuple(named))

    @classmethod
    def mechanism_hints(cls):
        """NOVA's region vocabulary plus the Fortis mirror structures.

        The inode replica table, per-block checksum table, and
        pending-truncate record are all shadow copies of primary state —
        primary/replica divergence (Table-1 bugs 9, 10, 12) is the crash
        pattern that breaks them, so they are declared replica regions and
        their epochs keep the full pairwise subset space.  Deliberately
        *not* inherited from :class:`NovaFS`: Fortis recovery reads
        checksums and replicas over data NOVA would never look at, so the
        aggressive NOVA overrides (boundary-only appends, sequence rules)
        are unsound here — every recognized kind keeps its conservative
        default policy.
        """
        from repro.mech.recognize import MechanismHints

        return MechanismHints(
            journal_regions=("journal",),
            append_regions=("data",),
            commit_regions=("inode_table",),
            replica_regions=(
                "replica_table", "csum_table", "pending_truncate",
            ),
        )

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def _format(self) -> None:
        geom = self.geom
        self._memset(geom.replica_table.offset, 0, geom.replica_table.size)
        self._memset(geom.csum_table.offset, 0, geom.csum_table.size)
        self._memset(geom.pending_truncate.offset, 0, geom.pending_truncate.size)
        super()._format()

    # ------------------------------------------------------------------
    # Inode checksum + replica maintenance
    # ------------------------------------------------------------------
    @staticmethod
    def _slot_csum(slot_buf: bytes) -> int:
        """Checksum over the identity prefix plus the commit pointer."""
        return crc32(
            slot_buf[: L.CSUM_IDENTITY_LEN]
            + slot_buf[L.INO_COUNT : L.INO_COUNT + 4]
        )

    def _finalize_slot_bytes(self, slot: bytes) -> bytes:
        body = bytearray(slot)
        body[L.INO_CSUM : L.INO_CSUM + 4] = u32(self._slot_csum(slot))
        return bytes(body)

    def _write_count(self, di: DramInode, new_count: int) -> None:
        """Commit-pointer update with checksum and replica maintenance.

        The fixed path stores the new count and the recomputed checksum
        (adjacent fields on the same cache line) before a single write-back,
        making them atomic; bug 9 stores the checksum only *after* the
        flush, so a crash persists the new count with the stale checksum.
        """
        addr = self._slot_addr(di.ino)
        self.ops.store_cached(addr + L.INO_COUNT, u32(new_count))
        csum = u32(self._slot_csum(self.device.read(addr, L.INODE_SLOT_SIZE)))
        lazy_csum = self.bugcfg.has(9) and self._op in self.LAZY_CSUM_OPS
        if not lazy_csum:
            self.ops.store_cached(addr + L.INO_CSUM, csum)
        self.ops.nova_flush_buffer(addr + L.INO_COUNT, 8)
        if lazy_csum:
            self.cov("fortis.lazy_csum")
            self.ops.store_cached(addr + L.INO_CSUM, csum)
        if self.bugcfg.has(10) and self._op in self.LAZY_REPLICA_OPS:
            self.cov("fortis.lazy_replica")
            if di.ino not in self._pending_replicas:
                self._pending_replicas.append(di.ino)
        else:
            self._sync_replica(di.ino)

    def _recover_count(self, ino: int, new_count: int) -> None:
        addr = self._slot_addr(ino)
        self.ops.store_cached(addr + L.INO_COUNT, u32(new_count))
        csum = u32(self._slot_csum(self.device.read(addr, L.INODE_SLOT_SIZE)))
        self.ops.store_cached(addr + L.INO_CSUM, csum)
        self.ops.nova_flush_buffer(addr + L.INO_COUNT, 8)
        self._sync_replica(ino)

    def _sync_replica(self, ino: int) -> None:
        """Copy the (volatile view of the) primary slot to the replica."""
        slot = self.device.read(self._slot_addr(ino), L.INODE_SLOT_SIZE)
        self._flush_write(self.geom.replica_addr(ino), slot)

    def _flush_pending_replicas(self) -> None:
        if not self._pending_replicas:
            return
        pending, self._pending_replicas = self._pending_replicas, []
        for ino in pending:
            self._sync_replica(ino)
        self._fence()

    def _init_inode(self, ino: int, ftype: int, mode: int, flush_slot: bool) -> DramInode:
        di = super()._init_inode(ino, ftype, mode, flush_slot)
        if flush_slot:
            self._sync_replica(ino)
            self._fence()
        else:
            # Bug 2 path: the replica is only stored, never flushed, like
            # the primary.
            slot = self.device.read(self._slot_addr(ino), L.INODE_SLOT_SIZE)
            self.ops.store_cached(self.geom.replica_addr(ino), slot)
        return di

    def _invalidate_slot(self, di: DramInode) -> None:
        super()._invalidate_slot(di)
        self._flush_write(self.geom.replica_addr(di.ino) + L.INO_VALID, b"\x00")
        self._fence()

    def _verify_replica(self, ino: int) -> None:
        """Unlink-time verification of primary vs replica (bug 10).

        The fixed implementation heals a divergent replica from the primary
        (the primary's checksum is valid, so it is authoritative); the buggy
        one refuses to proceed, making the file undeletable.
        """
        primary = self.ops.read_pm(self._slot_addr(ino), L.INODE_SLOT_SIZE)
        replica = self.ops.read_pm(self.geom.replica_addr(ino), L.INODE_SLOT_SIZE)
        if primary[: L.INO_CSUM + 4] == replica[: L.INO_CSUM + 4]:
            return  # identity, count, and csum all agree
        if self.bugcfg.has(10):
            raise FsError(
                f"inode {ino}: replica mismatch detected, refusing unlink (bug 10)"
            )
        self.cov("fortis.heal_replica")
        self._flush_write(self.geom.replica_addr(ino), primary)
        self._fence()

    # ------------------------------------------------------------------
    # Data checksums
    # ------------------------------------------------------------------
    def _write_csum_entry(self, block: int, valid_len: int) -> None:
        data = self.ops.read_pm(self.geom.block_addr(block), valid_len) if valid_len else b""
        entry = u16(valid_len) + u16(0) + u32(crc32(data))
        self._flush_write(self.geom.csum_entry_addr(block), entry)

    def _data_csum_barrier(self, di: DramInode, mapping, new_size: int) -> None:
        bs = self.geom.block_size
        for fblk, block in mapping:
            valid_len = max(0, min(bs, new_size - fblk * bs))
            self._write_csum_entry(block, valid_len)
        self._fence()

    def _verify_file_block(self, di: DramInode, file_block: int, data: bytes) -> bytes:
        if not self._from_mount:
            return data
        block = di.blockmap[file_block]
        entry = self.ops.read_pm(self.geom.csum_entry_addr(block), CSUM_ENTRY_SIZE)
        valid_len = read_u16(entry, CE_VALID_LEN)
        if valid_len == 0:
            return data
        if crc32(data[:valid_len]) != read_u32(entry, CE_CSUM):
            raise FsError(
                f"inode {di.ino}: data checksum mismatch on block {block}"
            )
        return data

    # ------------------------------------------------------------------
    # Pending-truncate record (bug 11) and truncate csum re-stamp (bug 12)
    # ------------------------------------------------------------------
    def _truncate_begin(self, di: DramInode, new_size: int) -> None:
        geom = self.geom
        bs = geom.block_size
        cutoff = (new_size + bs - 1) // bs
        to_free = sorted(
            block for fblk, block in di.blockmap.items() if fblk >= cutoff
        )[:PT_MAX_BLOCKS]
        record = bytearray(PT_BLOCKS + 4 * PT_MAX_BLOCKS)
        record[PT_VALID] = 1
        record[PT_INO : PT_INO + 4] = u32(di.ino)
        record[PT_NEW_SIZE : PT_NEW_SIZE + 8] = u64(new_size)
        record[PT_N_BLOCKS : PT_N_BLOCKS + 4] = u32(len(to_free))
        for i, block in enumerate(to_free):
            record[PT_BLOCKS + 4 * i : PT_BLOCKS + 4 * i + 4] = u32(block)
        self._nt(geom.pending_truncate.offset, bytes(record))
        self._fence()
        if not self.bugcfg.has(12):
            # Re-stamp the tail block's checksum over the new, shorter valid
            # length before the size change commits.
            tail_blk = new_size // bs
            if new_size % bs and tail_blk in di.blockmap:
                self._write_csum_entry(di.blockmap[tail_blk], new_size % bs)
                self._fence()
        else:
            self.cov("fortis.stale_data_csum")

    def _truncate_end(self, di: DramInode) -> None:
        self._flush_write(self.geom.pending_truncate.offset, b"\x00")
        self._fence()

    # ------------------------------------------------------------------
    # Mount-time verification and recovery extras
    # ------------------------------------------------------------------
    def _verify_slot(self, ino: int, slot_buf: bytes) -> None:
        if self._slot_csum(slot_buf) != read_u32(slot_buf, L.INO_CSUM):
            self._bad_slots.add(ino)

    def _recovery_extra(self, parsed: Dict[int, DramInode], reachable) -> None:
        for ino in self._bad_slots:
            di = self.inodes.get(ino)
            if di is not None:
                di.corrupt = True
        self._replay_pending_truncate(parsed)

    def _replay_pending_truncate(self, parsed: Dict[int, DramInode]) -> None:
        """Replay an interrupted truncate's block freeing.

        The log rebuild already dropped the truncated mappings and rebuilt
        the allocator without them, so the recorded blocks are free by the
        time this runs.  The fixed path checks the allocator before freeing;
        bug 11 frees unconditionally and trips the double-free assertion.
        """
        from repro.fs.common.alloc import AllocatorError

        geom = self.geom
        record = self.ops.read_pm(
            geom.pending_truncate.offset, PT_BLOCKS + 4 * PT_MAX_BLOCKS
        )
        if record[PT_VALID] != 1:
            return
        self.cov("fortis.truncate_replay")
        ino = read_u32(record, PT_INO)
        new_size = read_u64(record, PT_NEW_SIZE)
        n_blocks = min(read_u32(record, PT_N_BLOCKS), PT_MAX_BLOCKS)
        di = parsed.get(ino)
        if di is not None and di.size <= new_size:
            # The size change committed; finish freeing the blocks.
            for i in range(n_blocks):
                block = read_u32(record, PT_BLOCKS + 4 * i)
                try:
                    if self.bugcfg.has(11):
                        self.alloc.free(block)
                    elif not self.alloc.is_free(block):
                        self.alloc.free(block)
                except AllocatorError as exc:
                    raise MountError(
                        f"recovery attempted to deallocate free block "
                        f"(bug 11): {exc}"
                    ) from exc
        self._flush_write(geom.pending_truncate.offset, b"\x00")
        self._fence()

    # ------------------------------------------------------------------
    # Syscall wrappers: record the operation name for the lazy-maintenance
    # bug paths and sync pending replicas before returning.
    # ------------------------------------------------------------------
    def _run_op(self, name: str, func, *args):
        self._op = name
        try:
            return func(*args)
        finally:
            self._op = ""
            self._flush_pending_replicas()

    def creat(self, path: str, mode: int = 0o644) -> None:
        return self._run_op("creat", super().creat, path, mode)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        return self._run_op("mkdir", super().mkdir, path, mode)

    def rmdir(self, path: str) -> None:
        return self._run_op("rmdir", super().rmdir, path)

    def link(self, oldpath: str, newpath: str) -> None:
        return self._run_op("link", super().link, oldpath, newpath)

    def unlink(self, path: str) -> None:
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            target = self.inodes.get(parent.children[name])
            if target is not None and not target.corrupt:
                self._verify_replica(target.ino)
        return self._run_op("unlink", super().unlink, path)

    def rename(self, oldpath: str, newpath: str) -> None:
        return self._run_op("rename", super().rename, oldpath, newpath)

    def write(self, path: str, offset: int, data: bytes) -> int:
        return self._run_op("write", super().write, path, offset, data)

    def truncate(self, path: str, length: int) -> None:
        return self._run_op("truncate", super().truncate, path, length)

    def fallocate(self, path: str, offset: int, length: int) -> None:
        return self._run_op("fallocate", super().fallocate, path, offset, length)
