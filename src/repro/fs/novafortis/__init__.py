"""NOVA-Fortis-like fault-tolerant PM file system (NOVA + resilience)."""

from repro.fs.novafortis.fs import FortisGeometry, NovaFortisFS

__all__ = ["NovaFortisFS", "FortisGeometry"]
