"""On-PM layout of the PMFS-like file system.

Device layout (block addresses):

* block 0 — superblock
* blocks 1 .. J — undo journal area(s); ``n_cpus`` areas of
  ``journal_blocks`` blocks each (PMFS has one, WineFS one per CPU)
* next block — truncate list
* next ``inode_blocks`` — inode table (64-byte in-place slots)
* next block — persistent block bitmap
* remainder — data and directory blocks
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.common.layout import (
    Region,
    decode_name,
    encode_name,
    pad_to,
    read_u16,
    read_u32,
    read_u64,
    u16,
    u32,
    u64,
)

SB_MAGIC = 0x504D4653  # "PMFS"

INODE_SLOT_SIZE = 64
DENTRY_SIZE = 64
NAME_FIELD = 48
N_DIRECT = 10

# Inode slot field offsets.
INO_VALID = 0
INO_FTYPE = 1
INO_MODE = 2
INO_NLINK = 4
INO_SIZE = 8
INO_PTRS = 16  # N_DIRECT x u32

FTYPE_REG = 1
FTYPE_DIR = 2

# Undo journal: a 64-byte header then 128-byte records.
JH_ACTIVE = 0
JH_NRECORDS = 1
JOURNAL_HEADER = 64
RECORD_SIZE = 128
RECORD_MAGIC = 0xA5
# Record field offsets.
REC_ADDR = 0  # u64
REC_LEN = 8  # u16 (<= 64)
REC_MAGIC = 10  # u8
REC_DATA = 64  # up to 64 bytes of before-image

# Truncate list entries.
TL_ENTRY_SIZE = 16
TL_VALID = 0
TL_INO = 4  # u32
TL_NEW_SIZE = 8  # u64


@dataclass(frozen=True)
class PmfsGeometry:
    """Size parameters of a PMFS/WineFS image."""

    device_size: int = 512 * 1024
    block_size: int = 512
    inode_blocks: int = 4
    journal_blocks: int = 3
    n_cpus: int = 1  # WineFS overrides with its per-CPU journal array

    def __post_init__(self) -> None:
        if self.device_size % self.block_size:
            raise ValueError("device_size must be a multiple of block_size")
        if self.n_cpus < 1:
            raise ValueError("need at least one CPU journal area")

    @property
    def n_blocks(self) -> int:
        return self.device_size // self.block_size

    @property
    def superblock(self) -> Region:
        return Region(0, self.block_size)

    def journal_area(self, cpu: int) -> Region:
        if not (0 <= cpu < self.n_cpus):
            raise ValueError(f"cpu {cpu} out of range")
        size = self.journal_blocks * self.block_size
        return Region(self.block_size + cpu * size, size)

    @property
    def journal_records_per_area(self) -> int:
        area = self.journal_blocks * self.block_size
        return (area - JOURNAL_HEADER) // RECORD_SIZE

    @property
    def truncate_list(self) -> Region:
        end = self.journal_area(self.n_cpus - 1).end
        return Region(end, self.block_size)

    @property
    def n_truncate_entries(self) -> int:
        return self.truncate_list.size // TL_ENTRY_SIZE

    @property
    def inode_table(self) -> Region:
        return Region(self.truncate_list.end, self.inode_blocks * self.block_size)

    @property
    def n_inodes(self) -> int:
        return self.inode_table.size // INODE_SLOT_SIZE

    @property
    def bitmap(self) -> Region:
        return Region(self.inode_table.end, self.block_size)

    @property
    def first_data_block(self) -> int:
        return self.bitmap.end // self.block_size

    @property
    def n_data_blocks(self) -> int:
        return self.n_blocks - self.first_data_block

    @property
    def max_file_size(self) -> int:
        return N_DIRECT * self.block_size

    def block_addr(self, block: int) -> int:
        if not (0 <= block < self.n_blocks):
            raise ValueError(f"block {block} out of range")
        return block * self.block_size

    def inode_addr(self, ino: int) -> int:
        return self.inode_table.slot(ino, INODE_SLOT_SIZE)

    def bitmap_byte_addr(self, block: int) -> int:
        return self.bitmap.offset + block // 8


def pack_superblock(geom: PmfsGeometry) -> bytes:
    body = (
        u32(SB_MAGIC)
        + u32(1)
        + u64(geom.device_size)
        + u32(geom.block_size)
        + u32(geom.inode_blocks)
        + u32(geom.journal_blocks)
        + u32(geom.n_cpus)
    )
    return pad_to(body, 64)


def unpack_superblock(buf: bytes) -> PmfsGeometry:
    if read_u32(buf, 0) != SB_MAGIC:
        raise ValueError("bad PMFS superblock magic")
    return PmfsGeometry(
        device_size=read_u64(buf, 8),
        block_size=read_u32(buf, 16),
        inode_blocks=read_u32(buf, 20),
        journal_blocks=read_u32(buf, 24),
        n_cpus=read_u32(buf, 28),
    )


@dataclass(frozen=True)
class InodeSlot:
    valid: bool
    ftype: int
    mode: int
    nlink: int
    size: int
    ptrs: tuple

    def mapped(self) -> list:
        """(file block index, device block) pairs for mapped blocks."""
        return [(i, p) for i, p in enumerate(self.ptrs) if p != 0]


def pack_inode_slot(ftype: int, mode: int, nlink: int, size: int, ptrs=()) -> bytes:
    body = bytearray(INODE_SLOT_SIZE)
    body[INO_VALID] = 1
    body[INO_FTYPE] = ftype
    body[INO_MODE : INO_MODE + 2] = u16(mode)
    body[INO_NLINK : INO_NLINK + 4] = u32(nlink)
    body[INO_SIZE : INO_SIZE + 8] = u64(size)
    for i, ptr in enumerate(ptrs):
        body[INO_PTRS + 4 * i : INO_PTRS + 4 * i + 4] = u32(ptr)
    return bytes(body)


def unpack_inode_slot(buf: bytes) -> InodeSlot:
    return InodeSlot(
        valid=buf[INO_VALID] == 1,
        ftype=buf[INO_FTYPE],
        mode=read_u16(buf, INO_MODE),
        nlink=read_u32(buf, INO_NLINK),
        size=read_u64(buf, INO_SIZE),
        ptrs=tuple(read_u32(buf, INO_PTRS + 4 * i) for i in range(N_DIRECT)),
    )


def pack_dentry(ino: int, name: str) -> bytes:
    body = bytearray(DENTRY_SIZE)
    body[0] = 1
    body[4:8] = u32(ino)
    body[8 : 8 + NAME_FIELD] = encode_name(name, NAME_FIELD)
    return bytes(body)


@dataclass(frozen=True)
class Dentry:
    valid: bool
    ino: int
    name: str


def unpack_dentry(buf: bytes) -> Dentry:
    return Dentry(valid=buf[0] == 1, ino=read_u32(buf, 4), name=decode_name(buf[8 : 8 + NAME_FIELD]))


def pack_journal_record(addr: int, before: bytes) -> bytes:
    if len(before) > 64:
        raise ValueError("undo record covers at most 64 bytes")
    body = bytearray(RECORD_SIZE)
    body[REC_ADDR : REC_ADDR + 8] = u64(addr)
    body[REC_LEN : REC_LEN + 2] = u16(len(before))
    body[REC_MAGIC] = RECORD_MAGIC
    body[REC_DATA : REC_DATA + len(before)] = before
    return bytes(body)


def pack_truncate_entry(ino: int, new_size: int) -> bytes:
    body = bytearray(TL_ENTRY_SIZE)
    body[TL_VALID] = 1
    body[TL_INO : TL_INO + 4] = u32(ino)
    body[TL_NEW_SIZE : TL_NEW_SIZE + 8] = u64(new_size)
    return bytes(body)
