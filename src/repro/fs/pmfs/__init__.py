"""PMFS-like in-place-update PM file system.

Architecture (after Dulloor et al., EuroSys '14): a fixed inode table with
direct block pointers, persistent block bitmap, an undo journal for metadata
transactions, and a persistent truncate list that makes multi-step block
freeing crash-recoverable.  Unlike NOVA there is no log: metadata is updated
in place under the protection of the undo journal, and almost all state is
read directly from PM (only the free lists live in DRAM).
"""

from repro.fs.pmfs.fs import PmfsFS
from repro.fs.pmfs.layout import PmfsGeometry

__all__ = ["PmfsFS", "PmfsGeometry"]
