"""PMFS-like in-place-update PM file system.

Persistence protocol
--------------------

Metadata lives in fixed on-PM structures (inode table, directory blocks,
block bitmap) updated *in place* under the protection of an undo journal:
before-images are logged, the updates are applied and flushed, then the
journal is deactivated.  Multi-step block freeing (truncate, unlink, rmdir,
rename-over) is additionally guarded by a persistent truncate list that
mount-time recovery replays.

Only the free lists live in DRAM and are rebuilt at mount — the recovery
ordering around that rebuild is PMFS bug 13.  The other PMFS bugs from
Table 1 (14, 16, 17) are organic orderings in this file, guarded by
``BugConfig``.  WineFS subclasses this implementation (see
:mod:`repro.fs.winefs.fs`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fs.bugs import BugConfig
from repro.fs.common.alloc import BlockAllocator, SlotAllocator
from repro.fs.common.layout import read_u16, read_u32, read_u64, u32, u64
from repro.fs.pmfs import layout as L
from repro.pm.device import PMDevice, PMDeviceError
from repro.pm.persistence import PersistenceOps, persistence_function
from repro.vfs.errors import (
    EEXIST,
    EFBIG,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOSPC,
    ENOTDIR,
    ENOTEMPTY,
    FsError,
)
from repro.vfs.interface import FileSystem, MountError
from repro.vfs.path import is_ancestor, normalize, split_parent, split_path
from repro.vfs.types import FileType, Stat

ROOT_INO = 0


class PmfsPersistence(PersistenceOps):
    """PMFS's centralized persistence functions under their PMFS names."""

    persistence_function_names = (
        "pmfs_memcpy_nocache",
        "pmfs_memset_nocache",
        "pmfs_flush_buffer",
        "pmfs_persistent_barrier",
    )

    @persistence_function("nt_store", addr_arg=0, data_arg=1)
    def pmfs_memcpy_nocache(self, addr: int, data: bytes) -> None:
        PersistenceOps.memcpy_nt(self, addr, data)

    @persistence_function("nt_store", addr_arg=0, length_arg=2)
    def pmfs_memset_nocache(self, addr: int, value: int, length: int) -> None:
        PersistenceOps.memset_nt(self, addr, value, length)

    @persistence_function("flush", addr_arg=0, length_arg=1)
    def pmfs_flush_buffer(self, addr: int, length: int) -> None:
        PersistenceOps.flush_range(self, addr, length)

    @persistence_function("fence")
    def pmfs_persistent_barrier(self) -> None:
        PersistenceOps.sfence(self)


class PmfsFS(FileSystem):
    """The PMFS-like file system (see module docstring)."""

    name = "pmfs"
    strong_guarantees = True
    atomic_data_writes = False

    ops_class = PmfsPersistence
    geometry_class = L.PmfsGeometry

    #: Table-1 bug ids for the code shared with WineFS (overridden there).
    BUG_UNSYNC_WRITE = 14
    BUG_FLUSH_ROUND = 17

    def __init__(
        self,
        device: PMDevice,
        ops: PersistenceOps,
        geometry: L.PmfsGeometry,
        bugs: Optional[BugConfig] = None,
    ) -> None:
        super().__init__(device, ops)
        self.geom = geometry
        self.bugcfg = bugs if bugs is not None else BugConfig.fixed()
        # DRAM-only free lists, rebuilt at mount (Observation 3).
        self._free_blocks: Optional[BlockAllocator] = None
        self._free_inodes: Optional[SlotAllocator] = None
        self._op_counter = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def mkfs(
        cls,
        device: PMDevice,
        geometry=None,
        bugs: Optional[BugConfig] = None,
        **kwargs,
    ) -> "PmfsFS":
        geom = geometry or cls.geometry_class(device_size=device.size)
        if geom.device_size != device.size:
            raise ValueError("geometry does not match device size")
        fs = cls(device, cls.ops_class(device), geom, bugs, **kwargs)
        fs._format()
        return fs

    @classmethod
    def mount(cls, device: PMDevice, bugs: Optional[BugConfig] = None, **kwargs) -> "PmfsFS":
        try:
            geom = L.unpack_superblock(device.read(0, 64))
        except ValueError as exc:
            raise MountError(str(exc)) from exc
        if type(geom) is not cls.geometry_class:
            geom = cls.geometry_class(
                device_size=geom.device_size,
                block_size=geom.block_size,
                inode_blocks=geom.inode_blocks,
                journal_blocks=geom.journal_blocks,
                n_cpus=geom.n_cpus,
            )
        fs = cls(device, cls.ops_class(device), geom, bugs, **kwargs)
        fs._recover()
        return fs

    @classmethod
    def layout_map(cls, image: bytes):
        from repro.fs.common.layout import (
            LayoutMap,
            NamedRegion,
            Region,
            single_region_map,
        )

        try:
            geom = L.unpack_superblock(bytes(image[:64]))
        except Exception:  # torn superblock on a crash image
            return single_region_map(len(image))
        journal = Region(
            geom.journal_area(0).offset,
            geom.n_cpus * geom.journal_blocks * geom.block_size,
        )
        data_start = geom.first_data_block * geom.block_size
        return LayoutMap((
            NamedRegion("superblock", geom.superblock),
            NamedRegion("journal", journal,
                        slot_size=geom.journal_blocks * geom.block_size),
            NamedRegion("truncate_list", geom.truncate_list),
            NamedRegion("inode_table", geom.inode_table,
                        slot_size=L.INODE_SLOT_SIZE),
            NamedRegion("bitmap", geom.bitmap),
            NamedRegion("data", Region(data_start, geom.device_size - data_start),
                        slot_size=geom.block_size),
        ))

    @classmethod
    def mechanism_hints(cls):
        """PMFS persistence mechanisms, in ``layout_map()`` terms.

        Only the undo journal is declared: PMFS updates metadata *in
        place* (inode table, bitmap, truncate list), and torn in-place
        mixes are exactly the states an undo journal must recover from —
        no subset of them is provably redundant, so those epochs must keep
        the full capped enumeration (they classify ``unstructured``).
        Journal epochs themselves get the targeted torn-transaction plan;
        an undo journal's records are live before commit, so singles stay
        in (unlike a redo journal's).
        """
        from repro.mech.recognize import MechanismHints

        return MechanismHints(journal_regions=("journal",))

    def _format(self) -> None:
        geom = self.geom
        meta_end = geom.first_data_block * geom.block_size
        self._memset(0, 0, meta_end)
        self._nt(0, L.pack_superblock(geom))
        self._free_blocks = BlockAllocator(geom.first_data_block, geom.n_data_blocks)
        self._free_inodes = SlotAllocator(geom.n_inodes, reserved=[ROOT_INO])
        # Metadata blocks are permanently allocated in the bitmap.
        for block in range(geom.first_data_block):
            self._bitmap_set(block, True)
        # Root directory with one (zeroed) dentry block.
        root_block = self._free_blocks.alloc()
        self._memset(geom.block_addr(root_block), 0, geom.block_size)
        self._bitmap_set(root_block, True)
        slot = L.pack_inode_slot(L.FTYPE_DIR, 0o755, 2, geom.block_size, [root_block])
        self._nt(geom.inode_addr(ROOT_INO), slot)
        self._fence()

    def _recover(self) -> None:
        """Mount-time recovery: journal rollback, free-list rebuild,
        truncate-list replay.

        The fixed ordering rebuilds the DRAM free lists *before* replaying
        the truncate list; with bug 13 enabled the replay runs first and
        dereferences the not-yet-built free list, the null-pointer crash the
        paper describes.
        """
        geom = self.geom
        for cpu in range(geom.n_cpus):
            area_cpu = 0 if self.bugcfg.has(19) else cpu
            self._rollback_journal(area_cpu)
        if self.bugcfg.has(13):
            try:
                self._replay_truncate_list()
            except AttributeError as exc:
                raise MountError(
                    "kernel NULL pointer dereference in truncate-list replay "
                    f"(bug 13): {exc}"
                ) from exc
            self._rebuild_free_lists()
        else:
            self._rebuild_free_lists()
            self._replay_truncate_list()
        root = self._read_slot(ROOT_INO)
        if not root.valid or root.ftype != L.FTYPE_DIR:
            raise MountError("root inode missing or not a directory")

    def _rebuild_free_lists(self) -> None:
        geom = self.geom
        blocks = BlockAllocator(geom.first_data_block, geom.n_data_blocks)
        bitmap = self.ops.read_pm(geom.bitmap.offset, geom.bitmap.size)
        for block in range(geom.first_data_block, geom.n_blocks):
            if bitmap[block // 8] & (1 << (block % 8)):
                blocks.mark_used(block)
        inodes = SlotAllocator(geom.n_inodes, reserved=[ROOT_INO])
        for ino in range(geom.n_inodes):
            if self._read_slot(ino).valid:
                inodes.mark_used(ino)
        self._free_blocks = blocks
        self._free_inodes = inodes

    # ------------------------------------------------------------------
    # Low-level persistence helpers
    # ------------------------------------------------------------------
    def _nt(self, addr: int, data: bytes) -> None:
        self.ops.pmfs_memcpy_nocache(addr, data)

    def _memset(self, addr: int, value: int, length: int) -> None:
        self.ops.pmfs_memset_nocache(addr, value, length)

    def _flush_write(self, addr: int, data: bytes) -> None:
        self.ops.store_cached(addr, data)
        self.ops.pmfs_flush_buffer(addr, len(data))

    def _fence(self) -> None:
        self.ops.pmfs_persistent_barrier()

    def _write_data(self, addr: int, data: bytes) -> None:
        """In-place file data write.

        Cache-line-aligned writes use non-temporal stores; anything else
        goes through cached stores plus an explicit write-back of the
        touched range.  The shared flush-rounding bug (17/18) computes the
        write-back length as ``len & ~63`` — rounded *down* — so the final
        partial cache line (or a whole sub-line write) never becomes
        durable.
        """
        if addr % 64 == 0 and len(data) % 64 == 0:
            self._nt(addr, data)
            return
        self.cov("write.unaligned_data")
        self.ops.store_cached(addr, data)
        if self.bugcfg.has(self.BUG_FLUSH_ROUND):
            self.cov("write.flush_rounded_down")
            flush_len = (len(data) // 64) * 64
            if flush_len:
                self.ops.pmfs_flush_buffer(addr, flush_len)
        else:
            self.ops.pmfs_flush_buffer(addr, len(data))

    # ------------------------------------------------------------------
    # Bitmap
    # ------------------------------------------------------------------
    def _bitmap_set(self, block: int, used: bool) -> None:
        addr = self.geom.bitmap_byte_addr(block)
        byte = self.ops.read_pm(addr, 1)[0]
        if used:
            byte |= 1 << (block % 8)
        else:
            byte &= ~(1 << (block % 8))
        self._flush_write(addr, bytes([byte]))

    def _bitmap_get(self, block: int) -> bool:
        byte = self.ops.read_pm(self.geom.bitmap_byte_addr(block), 1)[0]
        return bool(byte & (1 << (block % 8)))

    # ------------------------------------------------------------------
    # Undo journal
    # ------------------------------------------------------------------
    def _next_cpu(self) -> int:
        cpu = self._op_counter % self.geom.n_cpus
        self._op_counter += 1
        return cpu

    def _tx_begin(self, cpu: int, ranges: List[Tuple[int, int]]) -> None:
        """Persist undo records for ``ranges`` and activate the journal.

        The fixed path fences between the records and the header so the
        header never becomes durable without its records; with bug 16 that
        fence is skipped, and a crash can persist a header whose count
        covers stale or unwritten records.
        """
        geom = self.geom
        area = geom.journal_area(cpu)
        if len(ranges) > geom.journal_records_per_area:
            raise ENOSPC(f"transaction too large: {len(ranges)} undo records")
        records = b"".join(
            L.pack_journal_record(addr, self.ops.read_pm(addr, length))
            for addr, length in ranges
        )
        self._nt(area.offset + L.JOURNAL_HEADER, records)
        if not self.bugcfg.has(16):
            self._fence()
        self._flush_write(area.offset, bytes([1, len(ranges)]))
        self._fence()

    def _tx_end(self, cpu: int) -> None:
        area = self.geom.journal_area(cpu)
        self._flush_write(area.offset, b"\x00")
        self._fence()

    def _rollback_journal(self, cpu: int) -> None:
        """Roll back an active transaction in journal area ``cpu``.

        The fixed path validates every record; the bug-16 path trusts the
        persisted count blindly, so stale or torn records send it reading
        and writing out of bounds.
        """
        geom = self.geom
        area = geom.journal_area(cpu)
        header = self.ops.read_pm(area.offset, 2)
        if header[0] != 1:
            return
        n_records = header[1]
        if not self.bugcfg.has(16) and n_records > geom.journal_records_per_area:
            raise MountError(f"corrupt journal header: {n_records} records")
        for i in reversed(range(n_records)):
            rec_addr = area.offset + L.JOURNAL_HEADER + i * L.RECORD_SIZE
            try:
                rec = self.ops.read_pm(rec_addr, L.RECORD_SIZE)
                addr = read_u64(rec, L.REC_ADDR)
                length = read_u16(rec, L.REC_LEN)
                if not self.bugcfg.has(16):
                    if rec[L.REC_MAGIC] != L.RECORD_MAGIC or length > 64:
                        raise MountError(f"corrupt journal record {i}")
                    self.device.check_range(addr, length)
                before = self.ops.read_pm(rec_addr + L.REC_DATA, length)
                self._flush_write(addr, before)
            except PMDeviceError as exc:
                raise MountError(
                    f"out-of-bounds memory access during journal replay "
                    f"(bug 16): {exc}"
                ) from exc
        self._fence()
        self._flush_write(area.offset, b"\x00")
        self._fence()

    # ------------------------------------------------------------------
    # Truncate list
    # ------------------------------------------------------------------
    def _truncate_entry_addr(self, index: int) -> int:
        return self.geom.truncate_list.offset + index * L.TL_ENTRY_SIZE

    def _find_free_truncate_entry(self) -> int:
        for i in range(self.geom.n_truncate_entries):
            if self.ops.read_pm(self._truncate_entry_addr(i), 1)[0] == 0:
                return i
        raise ENOSPC("truncate list full")

    def _clear_truncate_entry(self, index: int) -> None:
        self._flush_write(self._truncate_entry_addr(index), b"\x00")
        self._fence()

    def _replay_truncate_list(self) -> None:
        for i in range(self.geom.n_truncate_entries):
            buf = self.ops.read_pm(self._truncate_entry_addr(i), L.TL_ENTRY_SIZE)
            if buf[L.TL_VALID] != 1:
                continue
            self.cov("recovery.truncate_replay")
            ino = read_u32(buf, L.TL_INO)
            new_size = read_u64(buf, L.TL_NEW_SIZE)
            if ino < self.geom.n_inodes and self._read_slot(ino).valid:
                self._do_truncate_free(ino, new_size)
            self._clear_truncate_entry(i)

    def _do_truncate_free(self, ino: int, new_size: int) -> None:
        """Free the blocks of ``ino`` beyond ``new_size`` (idempotent).

        Used both by the runtime free phase and by truncate-list replay;
        finishes by invalidating inodes whose link count reached zero.
        """
        geom = self.geom
        slot = self._read_slot(ino)
        cutoff = (new_size + geom.block_size - 1) // geom.block_size
        slot_addr = geom.inode_addr(ino)
        # Zero the truncated tail of the kept block so a later extension
        # reads zeros (idempotent; also runs during truncate-list replay).
        tail_idx = new_size // geom.block_size
        if new_size % geom.block_size and tail_idx < L.N_DIRECT and slot.ptrs[tail_idx]:
            addr = geom.block_addr(slot.ptrs[tail_idx]) + new_size % geom.block_size
            self._memset(addr, 0, geom.block_size - new_size % geom.block_size)
        for idx, block in slot.mapped():
            if idx < cutoff:
                continue
            if self._bitmap_get(block):
                self._bitmap_set(block, False)
                self._free_blocks.free(block)
            self._flush_write(slot_addr + L.INO_PTRS + 4 * idx, u32(0))
        if slot.size > new_size:
            self._flush_write(slot_addr + L.INO_SIZE, u64(new_size))
        if slot.nlink == 0:
            self._flush_write(slot_addr + L.INO_VALID, b"\x00")
            if self._free_inodes is not None and ino != ROOT_INO:
                self._free_inodes.mark_used(ino)
                self._free_inodes.free(ino)
        self._fence()

    # ------------------------------------------------------------------
    # Metadata access
    # ------------------------------------------------------------------
    def _read_slot(self, ino: int) -> L.InodeSlot:
        if not (0 <= ino < self.geom.n_inodes):
            raise FsError(f"inode number {ino} out of range")
        return L.unpack_inode_slot(self.ops.read_pm(self.geom.inode_addr(ino), L.INODE_SLOT_SIZE))

    def _live_slot(self, ino: int) -> L.InodeSlot:
        slot = self._read_slot(ino)
        if not slot.valid:
            raise FsError(f"dentry references invalid inode {ino}")
        return slot

    def _dir_entries(self, slot: L.InodeSlot) -> List[Tuple[int, L.Dentry]]:
        """All dentry slots of a directory as (address, dentry) pairs."""
        out: List[Tuple[int, L.Dentry]] = []
        per_block = self.geom.block_size // L.DENTRY_SIZE
        for _, block in slot.mapped():
            base = self.geom.block_addr(block)
            for j in range(per_block):
                addr = base + j * L.DENTRY_SIZE
                out.append((addr, L.unpack_dentry(self.ops.read_pm(addr, L.DENTRY_SIZE))))
        return out

    def _dir_lookup(self, slot: L.InodeSlot, name: str) -> Optional[Tuple[int, L.Dentry]]:
        for addr, dentry in self._dir_entries(slot):
            if dentry.valid and dentry.name == name:
                return addr, dentry
        return None

    def _lookup(self, path: str) -> Tuple[int, L.InodeSlot]:
        ino = ROOT_INO
        slot = self._live_slot(ino)
        for part in split_path(path):
            if slot.ftype != L.FTYPE_DIR:
                raise ENOTDIR(path)
            found = self._dir_lookup(slot, part)
            if found is None:
                raise ENOENT(path)
            ino = found[1].ino
            slot = self._live_slot(ino)
        return ino, slot

    def _lookup_parent(self, path: str) -> Tuple[int, L.InodeSlot, str]:
        parent_path, name = split_parent(path)
        ino, slot = self._lookup(parent_path)
        if slot.ftype != L.FTYPE_DIR:
            raise ENOTDIR(parent_path)
        if len(name.encode("utf-8")) >= L.NAME_FIELD:
            raise EINVAL(f"name too long: {name!r}")
        return ino, slot, name

    def _find_dentry_slot(
        self, parent_ino: int, parent_slot: L.InodeSlot
    ) -> Tuple[int, List[Tuple[int, int]], List[Tuple[int, bytes]]]:
        """Locate a free dentry slot, extending the directory if needed.

        Returns ``(dentry_addr, extra_undo_ranges, extra_updates)`` where the
        extras publish a freshly allocated directory block when one was
        needed (the block itself is zeroed before the transaction starts).
        """
        geom = self.geom
        for addr, dentry in self._dir_entries(parent_slot):
            if not dentry.valid:
                return addr, [], []
        # Extend the directory with a new block.
        free_idx = next(
            (i for i, p in enumerate(parent_slot.ptrs) if p == 0), None
        )
        if free_idx is None:
            raise ENOSPC("directory is full")
        self.cov("dir.extend")
        block = self._free_blocks.alloc()
        self._memset(geom.block_addr(block), 0, geom.block_size)
        self._fence()
        slot_addr = geom.inode_addr(parent_ino)
        undo = [
            (slot_addr, L.INODE_SLOT_SIZE),
            (geom.bitmap_byte_addr(block), 1),
        ]
        updates: List[Tuple[int, bytes]] = [
            (slot_addr + L.INO_PTRS + 4 * free_idx, u32(block)),
            (slot_addr + L.INO_SIZE, u64(parent_slot.size + geom.block_size)),
        ]
        return geom.block_addr(block), undo, [("bitmap_set", block)] + updates  # type: ignore[list-item]

    # ------------------------------------------------------------------
    # Syscalls: namespace operations
    # ------------------------------------------------------------------
    def _apply_updates(self, updates: List) -> None:
        """Apply in-place updates staged by an operation."""
        for update in updates:
            if isinstance(update, tuple) and update[0] == "bitmap_set":
                self._bitmap_set(update[1], True)
            else:
                addr, data = update
                self._flush_write(addr, data)

    def _make_inode(self, ftype: int, mode: int, nlink: int, size: int, ptrs=()) -> Tuple[int, bytes]:
        ino = self._free_inodes.alloc()
        return ino, L.pack_inode_slot(ftype, mode, nlink, size, ptrs)

    def creat(self, path: str, mode: int = 0o644) -> None:
        parent_ino, parent_slot, name = self._lookup_parent(path)
        if self._dir_lookup(parent_slot, name) is not None:
            raise EEXIST(path)
        self.cov("creat")
        cpu = self._next_cpu()
        dentry_addr, extra_undo, extra_updates = self._find_dentry_slot(parent_ino, parent_slot)
        ino, slot_bytes = self._make_inode(L.FTYPE_REG, mode, 1, 0)
        undo = [
            (dentry_addr, L.DENTRY_SIZE),
            (self.geom.inode_addr(ino), L.INODE_SLOT_SIZE),
        ] + extra_undo
        self._tx_begin(cpu, undo)
        self._apply_updates(extra_updates)
        self._flush_write(self.geom.inode_addr(ino), slot_bytes)
        self._flush_write(dentry_addr, L.pack_dentry(ino, name))
        self._fence()
        self._tx_end(cpu)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        parent_ino, parent_slot, name = self._lookup_parent(path)
        if self._dir_lookup(parent_slot, name) is not None:
            raise EEXIST(path)
        self.cov("mkdir")
        cpu = self._next_cpu()
        dentry_addr, extra_undo, extra_updates = self._find_dentry_slot(parent_ino, parent_slot)
        dir_block = self._free_blocks.alloc()
        self._memset(self.geom.block_addr(dir_block), 0, self.geom.block_size)
        self._fence()
        ino, slot_bytes = self._make_inode(
            L.FTYPE_DIR, mode, 2, self.geom.block_size, [dir_block]
        )
        parent_addr = self.geom.inode_addr(parent_ino)
        undo = [
            (dentry_addr, L.DENTRY_SIZE),
            (self.geom.inode_addr(ino), L.INODE_SLOT_SIZE),
            (parent_addr, L.INODE_SLOT_SIZE),
            (self.geom.bitmap_byte_addr(dir_block), 1),
        ] + extra_undo
        self._tx_begin(cpu, undo)
        self._apply_updates(extra_updates)
        self._bitmap_set(dir_block, True)
        self._flush_write(self.geom.inode_addr(ino), slot_bytes)
        self._flush_write(dentry_addr, L.pack_dentry(ino, name))
        self._flush_write(parent_addr + L.INO_NLINK, u32(parent_slot.nlink + 1))
        self._fence()
        self._tx_end(cpu)

    def link(self, oldpath: str, newpath: str) -> None:
        target_ino, target_slot = self._lookup(oldpath)
        if target_slot.ftype == L.FTYPE_DIR:
            raise EISDIR(f"cannot hard-link a directory: {oldpath}")
        parent_ino, parent_slot, name = self._lookup_parent(newpath)
        if self._dir_lookup(parent_slot, name) is not None:
            raise EEXIST(newpath)
        self.cov("link")
        cpu = self._next_cpu()
        dentry_addr, extra_undo, extra_updates = self._find_dentry_slot(parent_ino, parent_slot)
        target_addr = self.geom.inode_addr(target_ino)
        undo = [
            (dentry_addr, L.DENTRY_SIZE),
            (target_addr, L.INODE_SLOT_SIZE),
        ] + extra_undo
        self._tx_begin(cpu, undo)
        self._apply_updates(extra_updates)
        self._flush_write(dentry_addr, L.pack_dentry(target_ino, name))
        self._flush_write(target_addr + L.INO_NLINK, u32(target_slot.nlink + 1))
        self._fence()
        self._tx_end(cpu)

    def unlink(self, path: str) -> None:
        parent_ino, parent_slot, name = self._lookup_parent(path)
        found = self._dir_lookup(parent_slot, name)
        if found is None:
            raise ENOENT(path)
        dentry_addr, dentry = found
        target_slot = self._live_slot(dentry.ino)
        if target_slot.ftype == L.FTYPE_DIR:
            raise EISDIR(path)
        self.cov("unlink")
        cpu = self._next_cpu()
        target_addr = self.geom.inode_addr(dentry.ino)
        last_link = target_slot.nlink <= 1
        undo = [(dentry_addr, L.DENTRY_SIZE), (target_addr, L.INODE_SLOT_SIZE)]
        tl_index: Optional[int] = None
        if last_link:
            tl_index = self._find_free_truncate_entry()
            undo.append((self._truncate_entry_addr(tl_index), L.TL_ENTRY_SIZE))
        self._tx_begin(cpu, undo)
        self._flush_write(dentry_addr, b"\x00")
        # A torn crash state can present nlink == 0 with a live dentry;
        # saturate rather than underflow the unsigned field.
        self._flush_write(target_addr + L.INO_NLINK, u32(max(0, target_slot.nlink - 1)))
        if tl_index is not None:
            self._flush_write(
                self._truncate_entry_addr(tl_index),
                L.pack_truncate_entry(dentry.ino, 0),
            )
        self._fence()
        self._tx_end(cpu)
        if tl_index is not None:
            self.cov("unlink.lastlink")
            self._do_truncate_free(dentry.ino, 0)
            self._clear_truncate_entry(tl_index)

    def rmdir(self, path: str) -> None:
        if normalize(path) == "/":
            raise EINVAL("cannot rmdir the root")
        parent_ino, parent_slot, name = self._lookup_parent(path)
        found = self._dir_lookup(parent_slot, name)
        if found is None:
            raise ENOENT(path)
        dentry_addr, dentry = found
        target_slot = self._live_slot(dentry.ino)
        if target_slot.ftype != L.FTYPE_DIR:
            raise ENOTDIR(path)
        if any(d.valid for _, d in self._dir_entries(target_slot)):
            raise ENOTEMPTY(path)
        self.cov("rmdir")
        cpu = self._next_cpu()
        target_addr = self.geom.inode_addr(dentry.ino)
        parent_addr = self.geom.inode_addr(parent_ino)
        tl_index = self._find_free_truncate_entry()
        undo = [
            (dentry_addr, L.DENTRY_SIZE),
            (target_addr, L.INODE_SLOT_SIZE),
            (parent_addr, L.INODE_SLOT_SIZE),
            (self._truncate_entry_addr(tl_index), L.TL_ENTRY_SIZE),
        ]
        self._tx_begin(cpu, undo)
        self._flush_write(dentry_addr, b"\x00")
        self._flush_write(target_addr + L.INO_NLINK, u32(0))
        self._flush_write(parent_addr + L.INO_NLINK, u32(max(2, parent_slot.nlink - 1)))
        self._flush_write(
            self._truncate_entry_addr(tl_index), L.pack_truncate_entry(dentry.ino, 0)
        )
        self._fence()
        self._tx_end(cpu)
        self._do_truncate_free(dentry.ino, 0)
        self._clear_truncate_entry(tl_index)

    def rename(self, oldpath: str, newpath: str) -> None:
        if normalize(oldpath) == normalize(newpath):
            self._lookup(oldpath)
            return
        src_parent_ino, src_parent_slot, src_name = self._lookup_parent(oldpath)
        found = self._dir_lookup(src_parent_slot, src_name)
        if found is None:
            raise ENOENT(oldpath)
        old_dentry_addr, old_dentry = found
        moved_slot = self._live_slot(old_dentry.ino)
        if moved_slot.ftype == L.FTYPE_DIR and is_ancestor(oldpath, newpath):
            raise EINVAL("cannot move a directory into itself")
        dst_parent_ino, dst_parent_slot, dst_name = self._lookup_parent(newpath)
        target_found = self._dir_lookup(dst_parent_slot, dst_name)
        target_dentry: Optional[L.Dentry] = None
        target_slot: Optional[L.InodeSlot] = None
        if target_found is not None:
            target_dentry = target_found[1]
            target_slot = self._live_slot(target_dentry.ino)
            if target_slot.ftype == L.FTYPE_DIR:
                if moved_slot.ftype != L.FTYPE_DIR:
                    raise EISDIR(newpath)
                if any(d.valid for _, d in self._dir_entries(target_slot)):
                    raise ENOTEMPTY(newpath)
            elif moved_slot.ftype == L.FTYPE_DIR:
                raise ENOTDIR(newpath)
        self.cov("rename")
        cpu = self._next_cpu()
        geom = self.geom
        if target_found is not None:
            new_dentry_addr = target_found[0]
            extra_undo: List[Tuple[int, int]] = []
            extra_updates: List = []
        else:
            # Re-read the source dentry location in case the directory
            # extension reshuffles blocks (it does not, but stay explicit).
            new_dentry_addr, extra_undo, extra_updates = self._find_dentry_slot(
                dst_parent_ino, dst_parent_slot
            )
        undo = [
            (old_dentry_addr, L.DENTRY_SIZE),
            (new_dentry_addr, L.DENTRY_SIZE),
        ] + extra_undo
        cross_dir_move = src_parent_ino != dst_parent_ino and moved_slot.ftype == L.FTYPE_DIR
        if cross_dir_move:
            undo.append((geom.inode_addr(src_parent_ino), L.INODE_SLOT_SIZE))
            undo.append((geom.inode_addr(dst_parent_ino), L.INODE_SLOT_SIZE))
        tl_index: Optional[int] = None
        target_last_link = False
        if target_slot is not None:
            undo.append((geom.inode_addr(target_dentry.ino), L.INODE_SLOT_SIZE))
            target_last_link = target_slot.ftype == L.FTYPE_DIR or target_slot.nlink <= 1
            if target_last_link:
                tl_index = self._find_free_truncate_entry()
                undo.append((self._truncate_entry_addr(tl_index), L.TL_ENTRY_SIZE))
        self._tx_begin(cpu, undo)
        self._apply_updates(extra_updates)
        self._flush_write(new_dentry_addr, L.pack_dentry(old_dentry.ino, dst_name))
        self._flush_write(old_dentry_addr, b"\x00")
        if cross_dir_move:
            self._flush_write(
                geom.inode_addr(src_parent_ino) + L.INO_NLINK,
                u32(src_parent_slot.nlink - 1),
            )
            self._flush_write(
                geom.inode_addr(dst_parent_ino) + L.INO_NLINK,
                u32(dst_parent_slot.nlink + 1),
            )
        if target_slot is not None:
            new_nlink = 0 if target_slot.ftype == L.FTYPE_DIR else max(0, target_slot.nlink - 1)
            self._flush_write(
                geom.inode_addr(target_dentry.ino) + L.INO_NLINK, u32(new_nlink)
            )
            if tl_index is not None:
                self._flush_write(
                    self._truncate_entry_addr(tl_index),
                    L.pack_truncate_entry(target_dentry.ino, 0),
                )
        self._fence()
        self._tx_end(cpu)
        if tl_index is not None:
            self._do_truncate_free(target_dentry.ino, 0)
            self._clear_truncate_entry(tl_index)

    # ------------------------------------------------------------------
    # Syscalls: data operations
    # ------------------------------------------------------------------
    def _file_slot(self, path: str) -> Tuple[int, L.InodeSlot]:
        ino, slot = self._lookup(path)
        if slot.ftype != L.FTYPE_REG:
            raise EISDIR(path)
        return ino, slot

    def write(self, path: str, offset: int, data: bytes) -> int:
        ino, slot = self._file_slot(path)
        if offset < 0:
            raise EINVAL("negative write offset")
        if not data:
            return 0
        end = offset + len(data)
        if end > self.geom.max_file_size:
            raise EFBIG(f"file would exceed {self.geom.max_file_size} bytes")
        geom = self.geom
        bs = geom.block_size
        cpu = self._next_cpu()
        first_blk = offset // bs
        last_blk = (end - 1) // bs
        missing = [
            i for i in range(first_blk, last_blk + 1) if slot.ptrs[i] == 0
        ]
        new_blocks: Dict[int, int] = {i: self._free_blocks.alloc() for i in missing}

        def data_for_block(idx: int) -> bytes:
            lo = max(offset, idx * bs)
            hi = min(end, (idx + 1) * bs)
            return data[lo - offset : hi - offset]

        def write_new_block_data() -> None:
            for idx, block in new_blocks.items():
                content = bytearray(bs)
                lo = max(offset, idx * bs)
                hi = min(end, (idx + 1) * bs)
                content[lo - idx * bs : hi - idx * bs] = data_for_block(idx)
                self._nt(geom.block_addr(block), bytes(content))

        def write_existing_block_data() -> None:
            for idx in range(first_blk, last_blk + 1):
                if idx in new_blocks:
                    continue
                lo = max(offset, idx * bs)
                self._write_data(
                    geom.block_addr(slot.ptrs[idx]) + lo - idx * bs,
                    data_for_block(idx),
                )

        def publish_metadata() -> None:
            slot_addr = geom.inode_addr(ino)
            undo = [(slot_addr, L.INODE_SLOT_SIZE)]
            undo += [(geom.bitmap_byte_addr(b), 1) for b in new_blocks.values()]
            self._tx_begin(cpu, undo)
            for idx, block in new_blocks.items():
                self._bitmap_set(block, True)
                self._flush_write(slot_addr + L.INO_PTRS + 4 * idx, u32(block))
            if end > slot.size:
                self._flush_write(slot_addr + L.INO_SIZE, u64(end))
            self._fence()
            self._tx_end(cpu)

        needs_publish = bool(new_blocks) or end > slot.size
        if self.bugcfg.has(self.BUG_UNSYNC_WRITE):
            # Bug 14/15: publish the metadata first, then write the data with
            # no trailing fence — the syscall returns with the data in flight.
            self.cov("write.publish_first")
            if needs_publish:
                publish_metadata()
            write_new_block_data()
            write_existing_block_data()
        else:
            write_new_block_data()
            write_existing_block_data()
            self._fence()
            if needs_publish:
                publish_metadata()
        return len(data)

    def fallocate(self, path: str, offset: int, length: int) -> None:
        ino, slot = self._file_slot(path)
        if offset < 0 or length <= 0:
            raise EINVAL("fallocate needs offset >= 0 and length > 0")
        end = offset + length
        if end > self.geom.max_file_size:
            raise EFBIG("fallocate beyond maximum file size")
        self.cov("fallocate")
        geom = self.geom
        bs = geom.block_size
        cpu = self._next_cpu()
        first_blk = offset // bs
        last_blk = (end - 1) // bs
        missing = [i for i in range(first_blk, last_blk + 1) if slot.ptrs[i] == 0]
        new_blocks = {i: self._free_blocks.alloc() for i in missing}
        for block in new_blocks.values():
            self._memset(geom.block_addr(block), 0, bs)
        if new_blocks:
            self._fence()
        slot_addr = geom.inode_addr(ino)
        undo = [(slot_addr, L.INODE_SLOT_SIZE)]
        undo += [(geom.bitmap_byte_addr(b), 1) for b in new_blocks.values()]
        self._tx_begin(cpu, undo)
        for idx, block in new_blocks.items():
            self._bitmap_set(block, True)
            self._flush_write(slot_addr + L.INO_PTRS + 4 * idx, u32(block))
        if end > slot.size:
            self._flush_write(slot_addr + L.INO_SIZE, u64(end))
        self._fence()
        self._tx_end(cpu)

    def truncate(self, path: str, length: int) -> None:
        ino, slot = self._file_slot(path)
        if length < 0:
            raise EINVAL("negative truncate length")
        if length > self.geom.max_file_size:
            raise EFBIG("truncate beyond maximum file size")
        if length == slot.size:
            return
        cpu = self._next_cpu()
        slot_addr = self.geom.inode_addr(ino)
        if length > slot.size:
            self.cov("truncate.extend")
            self._tx_begin(cpu, [(slot_addr, L.INODE_SLOT_SIZE)])
            self._flush_write(slot_addr + L.INO_SIZE, u64(length))
            self._fence()
            self._tx_end(cpu)
            return
        self.cov("truncate.shrink")
        tl_index = self._find_free_truncate_entry()
        self._tx_begin(
            cpu,
            [
                (slot_addr, L.INODE_SLOT_SIZE),
                (self._truncate_entry_addr(tl_index), L.TL_ENTRY_SIZE),
            ],
        )
        self._flush_write(slot_addr + L.INO_SIZE, u64(length))
        self._flush_write(
            self._truncate_entry_addr(tl_index), L.pack_truncate_entry(ino, length)
        )
        self._fence()
        self._tx_end(cpu)
        self._do_truncate_free(ino, length)
        self._clear_truncate_entry(tl_index)

    def read(self, path: str, offset: int, length: int) -> bytes:
        _, slot = self._file_slot(path)
        if offset < 0 or length < 0:
            raise EINVAL("negative read offset or length")
        end = min(offset + length, slot.size)
        if offset >= end:
            return b""
        bs = self.geom.block_size
        out = bytearray()
        for idx in range(offset // bs, (end - 1) // bs + 1):
            if slot.ptrs[idx]:
                out.extend(self.ops.read_pm(self.geom.block_addr(slot.ptrs[idx]), bs))
            else:
                out.extend(b"\x00" * bs)
        base = (offset // bs) * bs
        return bytes(out[offset - base : end - base])

    # ------------------------------------------------------------------
    # Syscalls: introspection
    # ------------------------------------------------------------------
    def stat(self, path: str) -> Stat:
        ino, slot = self._lookup(path)
        ftype = FileType.DIRECTORY if slot.ftype == L.FTYPE_DIR else FileType.REGULAR
        return Stat(ino, ftype, slot.size, slot.nlink, slot.mode)

    def readdir(self, path: str) -> List[str]:
        _, slot = self._lookup(path)
        if slot.ftype != L.FTYPE_DIR:
            raise ENOTDIR(path)
        return sorted(d.name for _, d in self._dir_entries(slot) if d.valid)
