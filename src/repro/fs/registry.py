"""Registry of the simulated file systems, keyed by the paper's names."""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.fs.bugs import BugConfig
from repro.pm.device import PMDevice
from repro.vfs.interface import FileSystem

#: Default device size used by the test harness and benches (bytes).
DEFAULT_DEVICE_SIZE = 512 * 1024


def _load_classes() -> Dict[str, Type[FileSystem]]:
    # Imported lazily so partially built trees (and docs tooling) can import
    # repro.fs without pulling in every file system.
    from repro.fs.ext4dax.fs import Ext4DaxFS, XfsDaxFS
    from repro.fs.nova.fs import NovaFS
    from repro.fs.novafortis.fs import NovaFortisFS
    from repro.fs.pmfs.fs import PmfsFS
    from repro.fs.splitfs.fs import SplitFS
    from repro.fs.winefs.fs import WineFS

    return {
        "nova": NovaFS,
        "nova-fortis": NovaFortisFS,
        "pmfs": PmfsFS,
        "winefs": WineFS,
        "splitfs": SplitFS,
        "ext4-dax": Ext4DaxFS,
        "xfs-dax": XfsDaxFS,
    }


_CLASSES: Optional[Dict[str, Type[FileSystem]]] = None


def FS_CLASSES() -> Dict[str, Type[FileSystem]]:
    """All registered file-system classes by name."""
    global _CLASSES
    if _CLASSES is None:
        _CLASSES = _load_classes()
    return dict(_CLASSES)


def fs_class(name: str) -> Type[FileSystem]:
    """Look up a file-system class by its paper name (e.g. ``"nova"``)."""
    classes = FS_CLASSES()
    if name not in classes:
        raise KeyError(f"unknown file system {name!r}; known: {sorted(classes)}")
    return classes[name]


def make_fs(
    name: str,
    device_size: int = DEFAULT_DEVICE_SIZE,
    bugs: Optional[BugConfig] = None,
) -> FileSystem:
    """Create a fresh formatted instance of the named file system."""
    cls = fs_class(name)
    device = PMDevice(device_size)
    if bugs is None:
        bugs = BugConfig.buggy(name)
    return cls.mkfs(device, bugs=bugs)
