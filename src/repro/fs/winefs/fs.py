"""WineFS-like PM file system.

WineFS (Kadekodi et al., SOSP '21) shares the PMFS family's in-place,
journaled metadata design, but scales with an array of per-CPU undo
journals, prefers alignment-preserving allocation, and offers a *strict*
mode in which data writes are synchronous **and atomic** via copy-on-write.

This implementation subclasses :class:`repro.fs.pmfs.fs.PmfsFS`:

* ``n_cpus`` journal areas; each operation uses the journal of the CPU it
  runs on (simulated round-robin).  The per-CPU *recovery* indexing bug is
  Table-1 bug 19.
* strict-mode copy-on-write writes; the partial-publish path for unaligned
  writes is bug 20, and the publish-then-copy append path is bug 15
  (shared fix with PMFS bug 14).  The flush-rounding data-loss path is
  bug 18 (shared fix with PMFS bug 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.fs.common.layout import u32, u64
from repro.fs.pmfs import layout as L
from repro.fs.pmfs.fs import PmfsFS, PmfsPersistence
from repro.pm.persistence import PersistenceOps, persistence_function
from repro.vfs.errors import EFBIG, EINVAL


@dataclass(frozen=True)
class WinefsGeometry(L.PmfsGeometry):
    """WineFS geometry: four per-CPU journal areas by default."""

    n_cpus: int = 4


class WinefsPersistence(PmfsPersistence):
    """WineFS persistence functions (the names Chipmunk probes)."""

    persistence_function_names = (
        "winefs_memcpy_nocache",
        "winefs_memset_nocache",
        "winefs_flush_buffer",
        "winefs_persistent_barrier",
    )

    @persistence_function("nt_store", addr_arg=0, data_arg=1)
    def winefs_memcpy_nocache(self, addr: int, data: bytes) -> None:
        PersistenceOps.memcpy_nt(self, addr, data)

    @persistence_function("nt_store", addr_arg=0, length_arg=2)
    def winefs_memset_nocache(self, addr: int, value: int, length: int) -> None:
        PersistenceOps.memset_nt(self, addr, value, length)

    @persistence_function("flush", addr_arg=0, length_arg=1)
    def winefs_flush_buffer(self, addr: int, length: int) -> None:
        PersistenceOps.flush_range(self, addr, length)

    @persistence_function("fence")
    def winefs_persistent_barrier(self) -> None:
        PersistenceOps.sfence(self)

    # The PMFS-named helpers used by inherited code delegate to the
    # WineFS-named probed functions, so every PM write is still observable
    # through WineFS's declared persistence functions.
    def pmfs_memcpy_nocache(self, addr: int, data: bytes) -> None:
        self.winefs_memcpy_nocache(addr, data)

    def pmfs_memset_nocache(self, addr: int, value: int, length: int) -> None:
        self.winefs_memset_nocache(addr, value, length)

    def pmfs_flush_buffer(self, addr: int, length: int) -> None:
        self.winefs_flush_buffer(addr, length)

    def pmfs_persistent_barrier(self) -> None:
        self.winefs_persistent_barrier()


class WineFS(PmfsFS):
    """WineFS in strict mode (see module docstring)."""

    name = "winefs"
    strong_guarantees = True
    atomic_data_writes = True  # strict mode

    ops_class = WinefsPersistence
    geometry_class = WinefsGeometry

    BUG_UNSYNC_WRITE = 15
    BUG_FLUSH_ROUND = 18

    #: Sub-cache-line writes take the journaled in-place fast path instead
    #: of copy-on-write.
    SMALL_WRITE_LIMIT = 64

    @classmethod
    def mechanism_hints(cls):
        """WineFS inherits PMFS's undo-journal hints unchanged.

        The per-CPU journal areas all live inside the one ``journal``
        layout region (slotted per CPU), and the strict-mode COW data path
        still publishes through journaled in-place metadata — so, as for
        PMFS, only journal epochs can safely take a targeted plan.
        """
        return super().mechanism_hints()

    # ------------------------------------------------------------------
    # Strict-mode data path
    # ------------------------------------------------------------------
    def write(self, path: str, offset: int, data: bytes) -> int:
        ino, slot = self._file_slot(path)
        if offset < 0:
            raise EINVAL("negative write offset")
        if not data:
            return 0
        end = offset + len(data)
        if end > self.geom.max_file_size:
            raise EFBIG(f"file would exceed {self.geom.max_file_size} bytes")
        geom = self.geom
        bs = geom.block_size
        cpu = self._next_cpu()
        first_blk = offset // bs
        last_blk = (end - 1) // bs

        # Small in-place fast path: a sub-line update inside one mapped
        # block is journaled (undo covers the old data) and written in place.
        if (
            len(data) <= self.SMALL_WRITE_LIMIT
            and first_blk == last_blk
            and slot.ptrs[first_blk] != 0
            and end <= slot.size
        ):
            self.cov("write.small_inplace")
            addr = geom.block_addr(slot.ptrs[first_blk]) + offset % bs
            self._tx_begin(cpu, [(addr, len(data))])
            self._write_data(addr, data)  # bug 18: tail flush may be skipped
            self._fence()
            self._tx_end(cpu)
            return len(data)

        # Copy-on-write: compose full new contents for every affected block.
        self.cov("write.cow")
        new_blocks: Dict[int, int] = {}
        contents: Dict[int, bytes] = {}
        for idx in range(first_blk, last_blk + 1):
            lo = max(offset, idx * bs)
            hi = min(end, (idx + 1) * bs)
            if lo == idx * bs and hi == (idx + 1) * bs:
                block = bytearray(data[lo - offset : hi - offset])
            else:
                old_ptr = slot.ptrs[idx]
                if old_ptr:
                    block = bytearray(self.ops.read_pm(geom.block_addr(old_ptr), bs))
                else:
                    block = bytearray(bs)
                block[lo - idx * bs : hi - idx * bs] = data[lo - offset : hi - offset]
            new_blocks[idx] = self._free_blocks.alloc()
            contents[idx] = bytes(block)

        appending = all(slot.ptrs[idx] == 0 for idx in new_blocks)
        slot_addr = geom.inode_addr(ino)
        old_ptrs = {idx: slot.ptrs[idx] for idx in new_blocks if slot.ptrs[idx]}
        aligned = offset % bs == 0 and (end % bs == 0 or end >= slot.size)

        def copy_data(fence: bool) -> None:
            for idx, block in new_blocks.items():
                self._nt(geom.block_addr(block), contents[idx])
            if fence:
                self._fence()

        def publish_journaled() -> None:
            undo = [(slot_addr, L.INODE_SLOT_SIZE)]
            undo += [(geom.bitmap_byte_addr(b), 1) for b in new_blocks.values()]
            undo += [(geom.bitmap_byte_addr(b), 1) for b in old_ptrs.values()]
            self._tx_begin(cpu, undo)
            for idx, block in new_blocks.items():
                self._bitmap_set(block, True)
                self._flush_write(slot_addr + L.INO_PTRS + 4 * idx, u32(block))
            for old in old_ptrs.values():
                self._bitmap_set(old, False)
            if end > slot.size:
                self._flush_write(slot_addr + L.INO_SIZE, u64(end))
            self._fence()
            self._tx_end(cpu)

        def publish_fast_unjournaled() -> None:
            # Bug 20: the unaligned path publishes the new block pointers one
            # in-place flush at a time, with no journal — a crash exposes a
            # mix of old and new blocks despite strict mode's atomic-write
            # guarantee.
            self.cov("write.partial_publish")
            for idx, block in new_blocks.items():
                self._bitmap_set(block, True)
                self._flush_write(slot_addr + L.INO_PTRS + 4 * idx, u32(block))
            for old in old_ptrs.values():
                self._bitmap_set(old, False)
            if end > slot.size:
                self._flush_write(slot_addr + L.INO_SIZE, u64(end))
            self._fence()

        if self.bugcfg.has(self.BUG_UNSYNC_WRITE) and appending:
            # Bug 15 (shared with PMFS bug 14): publish first, copy after,
            # and return without a fence.
            self.cov("write.publish_first")
            publish_journaled()
            copy_data(fence=False)
        elif self.bugcfg.has(20) and not aligned:
            copy_data(fence=True)
            publish_fast_unjournaled()
        else:
            copy_data(fence=True)
            publish_journaled()

        for old in old_ptrs.values():
            self._free_blocks.free(old)
        return len(data)
