"""WineFS-like PM file system (PMFS family, per-CPU journals, strict mode)."""

from repro.fs.winefs.fs import WineFS, WinefsGeometry

__all__ = ["WineFS", "WinefsGeometry"]
