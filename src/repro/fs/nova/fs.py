"""NOVA-like log-structured PM file system.

Persistence protocol
--------------------

Metadata changes are appended to per-inode logs; the *commit pointer* is the
inode slot's ``log_count`` field, updated in place after the entries are
durable.  Operations spanning several inodes (creat, link, unlink, rename)
stage their commit-pointer updates in a small circular journal so that all
logs commit atomically.  Data writes are copy-on-write: new blocks are
written with non-temporal stores, then published by a committed WRITE entry.

The Table-1 NOVA bugs (1-8) live in this file as organic orderings guarded by
``BugConfig``; see DESIGN.md for the catalogue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fs.bugs import BugConfig
from repro.fs.common.alloc import BlockAllocator, SlotAllocator
from repro.fs.common.layout import u32, u64
from repro.fs.nova import layout as L
from repro.fs.nova.dram import DramInode
from repro.pm.device import PMDevice
from repro.pm.persistence import PersistenceOps, persistence_function
from repro.vfs.errors import (
    EEXIST,
    EFBIG,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    FsError,
)
from repro.vfs.interface import FileSystem, MountError
from repro.vfs.path import is_ancestor, normalize, split_parent, split_path
from repro.vfs.types import FileType, Stat

ROOT_INO = 0


class NovaPersistence(PersistenceOps):
    """NOVA's centralized persistence functions, under their NOVA names.

    These are the symbols a developer would hand to Chipmunk's logger
    (paper section 3.3): non-temporal memcpy/memset, a buffer flush, and a
    persistence barrier.
    """

    persistence_function_names = (
        "memcpy_to_pmem_nocache",
        "memset_to_pmem_nocache",
        "nova_flush_buffer",
        "persistent_barrier",
    )

    @persistence_function("nt_store", addr_arg=0, data_arg=1)
    def memcpy_to_pmem_nocache(self, addr: int, data: bytes) -> None:
        PersistenceOps.memcpy_nt(self, addr, data)

    @persistence_function("nt_store", addr_arg=0, length_arg=2)
    def memset_to_pmem_nocache(self, addr: int, value: int, length: int) -> None:
        PersistenceOps.memset_nt(self, addr, value, length)

    @persistence_function("flush", addr_arg=0, length_arg=1)
    def nova_flush_buffer(self, addr: int, length: int) -> None:
        PersistenceOps.flush_range(self, addr, length)

    @persistence_function("fence")
    def persistent_barrier(self) -> None:
        PersistenceOps.sfence(self)


class NovaFS(FileSystem):
    """The NOVA-like file system (see module docstring)."""

    name = "nova"
    strong_guarantees = True
    atomic_data_writes = True

    ops_class = NovaPersistence
    geometry_class = L.NovaGeometry

    def __init__(
        self,
        device: PMDevice,
        ops: PersistenceOps,
        geometry: L.NovaGeometry,
        bugs: Optional[BugConfig] = None,
    ) -> None:
        super().__init__(device, ops)
        self.geom = geometry
        self.bugcfg = bugs if bugs is not None else BugConfig.fixed()
        self.inodes: Dict[int, DramInode] = {}
        self.alloc = BlockAllocator(geometry.first_data_block, geometry.n_data_blocks)
        self.ialloc = SlotAllocator(geometry.n_inodes)
        #: True when this instance came from mount() (i.e. after a crash or
        #: clean remount) rather than mkfs(); Fortis only verifies checksums
        #: on post-mount reads.
        self._from_mount = False
        #: (link address, new page address) pairs deferred to commit time by
        #: the bug-1 lazy page-linking path.
        self._pending_page_links: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def mkfs(
        cls,
        device: PMDevice,
        geometry: Optional[L.NovaGeometry] = None,
        bugs: Optional[BugConfig] = None,
        **kwargs,
    ) -> "NovaFS":
        geom = geometry or cls.geometry_class(device_size=device.size)
        if geom.device_size != device.size:
            raise ValueError("geometry does not match device size")
        fs = cls(device, cls.ops_class(device), geom, bugs, **kwargs)
        fs._format()
        return fs

    @classmethod
    def mount(
        cls,
        device: PMDevice,
        bugs: Optional[BugConfig] = None,
        **kwargs,
    ) -> "NovaFS":
        from repro.fs.nova.recovery import rebuild

        sb = device.read(0, 64)
        try:
            geom = cls._coerce_geometry(L.unpack_superblock(sb))
        except ValueError as exc:
            raise MountError(str(exc)) from exc
        fs = cls(device, cls.ops_class(device), geom, bugs, **kwargs)
        fs._from_mount = True
        rebuild(fs)
        return fs

    @classmethod
    def layout_map(cls, image: bytes):
        from repro.fs.common.layout import (
            LayoutMap,
            NamedRegion,
            Region,
            single_region_map,
        )

        try:
            geom = cls._coerce_geometry(L.unpack_superblock(bytes(image[:64])))
        except Exception:  # torn superblock on a crash image
            return single_region_map(len(image))
        data_start = geom.first_data_block * geom.block_size
        return LayoutMap((
            NamedRegion("superblock", geom.superblock),
            NamedRegion("journal", geom.journal),
            NamedRegion("inode_table", geom.inode_table,
                        slot_size=L.INODE_SLOT_SIZE),
            NamedRegion("data", Region(data_start, geom.device_size - data_start),
                        slot_size=geom.block_size),
        ))

    @classmethod
    def mechanism_hints(cls):
        """NOVA persistence mechanisms, in ``layout_map()`` terms.

        Small writes in ``data`` are per-inode log-entry appends (the log
        pages live among the data blocks); large NT stores there are COW
        file data.  ``inode_table`` slot flushes are the in-place commit
        pointers (``log_count``) that publish appended entries, and the
        circular ``journal`` stages multi-inode commits.  The journal is
        redo-style — recovery ignores records without a committed tail —
        and appends land in never-written log/COW space, unreachable
        until their commit pointer persists.  Both facts justify the
        aggressive settings: journal-record epochs keep only their
        boundary state (the mechanism's visibility edge is the flag and
        commit epochs), and the ``sequence_rules`` pass prunes
        recovery-invisible append singles and boundary duplicates.
        """
        from repro.mech.recognize import MechanismHints

        return MechanismHints(
            journal_regions=("journal",),
            append_regions=("data",),
            commit_regions=("inode_table",),
            plan_overrides={"journal_update": "empty"},
            sequence_rules=True,
        )

    @classmethod
    def _coerce_geometry(cls, geom: L.NovaGeometry) -> L.NovaGeometry:
        """Convert an unpacked superblock geometry to this class's type."""
        if type(geom) is cls.geometry_class:
            return geom
        return cls.geometry_class(
            device_size=geom.device_size,
            block_size=geom.block_size,
            inode_blocks=geom.inode_blocks,
            log_page_entries=geom.log_page_entries,
        )

    def _format(self) -> None:
        geom = self.geom
        # Zero the metadata regions so a reused device starts clean.
        self._memset(geom.journal.offset, 0, geom.journal.size)
        self._memset(geom.inode_table.offset, 0, geom.inode_table.size)
        self._nt(0, L.pack_superblock(geom))
        # Root inode with one empty log page.
        root = self._init_inode(ROOT_INO, L.FTYPE_DIR, 0o755, flush_slot=True)
        self.ialloc.mark_used(ROOT_INO)
        self.inodes[ROOT_INO] = root
        self._fence()

    # ------------------------------------------------------------------
    # Low-level persistence helpers (all PM writes go through these)
    # ------------------------------------------------------------------
    def _nt(self, addr: int, data: bytes) -> None:
        self.ops.memcpy_to_pmem_nocache(addr, data)

    def _memset(self, addr: int, value: int, length: int) -> None:
        self.ops.memset_to_pmem_nocache(addr, value, length)

    def _flush_write(self, addr: int, data: bytes) -> None:
        """Cached store followed by a cache-line write-back."""
        self.ops.store_cached(addr, data)
        self.ops.nova_flush_buffer(addr, len(data))

    def _fence(self) -> None:
        self.ops.persistent_barrier()

    def _slot_addr(self, ino: int) -> int:
        return self.geom.inode_addr(ino)

    # ------------------------------------------------------------------
    # Path resolution
    # ------------------------------------------------------------------
    def _inode(self, ino: int) -> DramInode:
        di = self.inodes.get(ino)
        if di is None:
            raise ENOENT(f"inode {ino} does not exist")
        if di.corrupt:
            raise FsError(f"inode {ino} is corrupt (dangling dentry)")
        return di

    def _resolve(self, path: str) -> DramInode:
        di = self._inode(ROOT_INO)
        for part in split_path(path):
            if di.ftype != L.FTYPE_DIR:
                raise ENOTDIR(path)
            if part not in di.children:
                raise ENOENT(path)
            di = self._inode(di.children[part])
        return di

    def _resolve_parent(self, path: str) -> Tuple[DramInode, str]:
        parent_path, name = split_parent(path)
        parent = self._resolve(parent_path)
        if parent.ftype != L.FTYPE_DIR:
            raise ENOTDIR(parent_path)
        if len(name.encode("utf-8")) >= L.NAME_FIELD:
            raise EINVAL(f"name too long: {name!r}")
        return parent, name

    # ------------------------------------------------------------------
    # Log append machinery
    # ------------------------------------------------------------------
    def _init_inode(self, ino: int, ftype: int, mode: int, flush_slot: bool) -> DramInode:
        """Write a fresh inode slot and its first (empty) log page.

        ``flush_slot=False`` is the bug-2 path: the slot is written with a
        cached store and never flushed, so it is lost in any crash.
        """
        page_block = self.alloc.alloc()
        page_addr = self.geom.block_addr(page_block)
        header = u32(L.LOGPAGE_MAGIC) + b"\x00" * 4 + u64(0)
        self._nt(page_addr, header)
        self._fence()  # the log page must be durable before the slot points at it
        slot = self._finalize_slot_bytes(L.pack_inode_slot(ftype, mode, page_addr))
        if flush_slot:
            self._nt(self._slot_addr(ino), slot)
            self._fence()
        else:
            self.cov("init_inode.unflushed")
            self.ops.store_cached(self._slot_addr(ino), slot)
        di = DramInode(ino=ino, ftype=ftype, mode=mode, log_head=page_addr)
        di.pages = [page_addr]
        if ftype == L.FTYPE_REG:
            di.nlink = 0  # set by the initial ATTR entry
        return di

    def _entry_position(self, di: DramInode, index: int) -> Tuple[int, int]:
        return divmod(index, self.geom.log_page_entries)

    def _ensure_page(self, di: DramInode, index: int) -> int:
        """Return the address of the page holding entry ``index``.

        Allocates and links a new log page when the log grows past the
        current chain.  The fixed path links the new page and fences before
        anything else; bug 1 defers the link to the commit-pointer epoch
        ("update the chain together with the tail"), so a crash can persist
        a commit pointer that runs past an unlinked page.
        """
        page_i, _ = self._entry_position(di, index)
        while page_i >= len(di.pages):
            self.cov("log.newpage")
            new_block = self.alloc.alloc()
            new_addr = self.geom.block_addr(new_block)
            header = u32(L.LOGPAGE_MAGIC) + b"\x00" * 4 + u64(0)
            self._nt(new_addr, header)
            if self.bugcfg.has(1):
                self.cov("log.lazy_link")
                self._pending_page_links.append((di.pages[-1] + 8, new_addr))
                self.ops.store_cached(di.pages[-1] + 8, u64(new_addr))
            else:
                self._flush_write(di.pages[-1] + 8, u64(new_addr))
                self._fence()
            di.pages.append(new_addr)
        return di.pages[page_i]

    def _flush_pending_links(self) -> None:
        """Bug-1 path: persist deferred page links in the commit epoch."""
        pending, self._pending_page_links = self._pending_page_links, []
        for link_addr, new_addr in pending:
            self._flush_write(link_addr, u64(new_addr))

    def _append(self, di: DramInode, entry: bytes) -> int:
        """Append an uncommitted entry, returning its on-PM address."""
        index = di.next_index
        page_addr = self._ensure_page(di, index)
        _, slot_i = self._entry_position(di, index)
        addr = self.geom.entry_addr(page_addr, slot_i)
        self._nt(addr, entry)
        di.pending += 1
        return addr

    def _commit_inplace(self, di: DramInode, ordered: bool = True) -> None:
        """Commit pending entries by bumping the inode's count in place.

        ``ordered=False`` is the bug-3 fast path: the commit pointer is
        flushed in the same fence epoch as the entries, so a crash can
        persist the pointer without the entries it covers.
        """
        if ordered:
            self._fence()
        self._flush_pending_links()
        new_count = di.next_index
        self._write_count(di, new_count)
        self._fence()
        di.log_count = new_count
        di.pending = 0
        self._meta_updated(di)

    def _commit_journal(self, dis: List[DramInode], careful: bool = True) -> None:
        """Commit pending entries on several inodes atomically via the journal.

        ``careful=False`` is the bug-3 variant: the fences ordering the log
        entries before the journal pairs and the pairs before the commit flag
        are skipped, so a crash can persist a committed journal that points
        at unwritten log entries.
        """
        unique: List[DramInode] = []
        for di in dis:
            if di not in unique:
                unique.append(di)
        pairs = [(di.ino, di.next_index) for di in unique]
        jaddr = self.geom.journal.offset
        if careful:
            self._fence()  # entries durable before the journal references them
        self._flush_write(jaddr + L.JR_PAIRS, L.pack_journal_pairs(pairs))
        self._flush_write(jaddr + L.JR_NPAIRS, bytes([len(pairs)]))
        if careful:
            self._fence()  # pairs durable before the commit flag
        self._flush_write(jaddr + L.JR_COMMIT, b"\x01")
        self._fence()
        self._flush_pending_links()
        for di, (_, new_count) in zip(unique, pairs):
            self._write_count(di, new_count)
        self._fence()
        self._flush_write(jaddr + L.JR_COMMIT, b"\x00")
        self._fence()
        for di, (_, new_count) in zip(unique, pairs):
            di.log_count = new_count
            di.pending = 0
            self._meta_updated(di)

    def _invalidate_slot(self, di: DramInode) -> None:
        """Clear an inode's valid byte (final step of unlink/rmdir)."""
        self._flush_write(self._slot_addr(di.ino) + L.INO_VALID, b"\x00")
        self._fence()

    def _drop_inode(self, di: DramInode) -> None:
        """Release an inode's DRAM state and its blocks."""
        for block in set(di.blockmap.values()):
            self.alloc.free(block)
        for page in di.pages:
            self.alloc.free(page // self.geom.block_size)
        del self.inodes[di.ino]
        self.ialloc.free(di.ino)

    # Hooks overridden by NOVA-Fortis -----------------------------------
    def _write_count(self, di: DramInode, new_count: int) -> None:
        """Persist the commit pointer (Fortis also updates csum + replica)."""
        self._flush_write(self._slot_addr(di.ino) + L.INO_COUNT, u32(new_count))

    def _recover_count(self, ino: int, new_count: int) -> None:
        """Journal-redo variant of :meth:`_write_count` (mount-time only)."""
        self._flush_write(self._slot_addr(ino) + L.INO_COUNT, u32(new_count))

    def _finalize_slot_bytes(self, slot: bytes) -> bytes:
        """Last chance to amend a fresh inode slot (Fortis: stamp csum)."""
        return slot

    def _data_csum_barrier(self, di: DramInode, mapping, new_size: int) -> None:
        """Called with the (file block, device block) pairs a data operation
        wrote, before the operation commits (Fortis: persist data checksums).
        """

    def _meta_updated(self, di: DramInode) -> None:
        """Called after an inode's slot/log commit (Fortis: csum + replica)."""

    def _data_written(self, di: DramInode, file_block: int, device_block: int) -> None:
        """Called after a data block is written (Fortis: data checksum)."""

    def _truncate_begin(self, di: DramInode, new_size: int) -> None:
        """Called before a shrinking truncate commits (Fortis: pending record)."""

    def _truncate_end(self, di: DramInode) -> None:
        """Called after a shrinking truncate completes (Fortis: clear record)."""

    def _verify_file_block(self, di: DramInode, file_block: int, data: bytes) -> bytes:
        """Read-path verification hook (Fortis: data checksum check)."""
        return data

    def _verify_slot(self, ino: int, slot_buf: bytes) -> None:
        """Mount-time slot verification hook (Fortis: csum/replica check)."""

    def _recovery_extra(self, parsed: Dict[int, DramInode], reachable) -> None:
        """Extra recovery work hook (Fortis: pending-truncate replay, bug 11)."""

    # ------------------------------------------------------------------
    # Syscalls: namespace operations
    # ------------------------------------------------------------------
    def creat(self, path: str, mode: int = 0o644) -> None:
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            raise EEXIST(path)
        self.cov("creat")
        ino = self.ialloc.alloc()
        child = self._init_inode(
            ino, L.FTYPE_REG, mode, flush_slot=not self.bugcfg.has(2)
        )
        self.inodes[ino] = child
        self._append(child, L.pack_attr_entry(0, 1, mode))
        add_addr = self._append(parent, L.pack_dentry_add(ino, name))
        self._commit_journal([child, parent], careful=True)
        child.size = 0
        child.nlink = 1
        parent.children[name] = ino
        parent.dentry_addrs[name] = add_addr

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            raise EEXIST(path)
        self.cov("mkdir")
        ino = self.ialloc.alloc()
        child = self._init_inode(
            ino, L.FTYPE_DIR, mode, flush_slot=not self.bugcfg.has(2)
        )
        self.inodes[ino] = child
        add_addr = self._append(parent, L.pack_dentry_add(ino, name))
        self._commit_journal([child, parent], careful=True)
        parent.children[name] = ino
        parent.dentry_addrs[name] = add_addr

    def rmdir(self, path: str) -> None:
        if normalize(path) == "/":
            raise EINVAL("cannot rmdir the root")
        parent, name = self._resolve_parent(path)
        if name not in parent.children:
            raise ENOENT(path)
        target = self._inode(parent.children[name])
        if target.ftype != L.FTYPE_DIR:
            raise ENOTDIR(path)
        if target.children:
            raise ENOTEMPTY(path)
        self.cov("rmdir")
        self._append(parent, L.pack_dentry_del(target.ino, name))
        self._commit_journal([parent], careful=not self.bugcfg.has(3))
        del parent.children[name]
        parent.dentry_addrs.pop(name, None)
        self._invalidate_slot(target)
        self._drop_inode(target)

    def link(self, oldpath: str, newpath: str) -> None:
        target = self._resolve(oldpath)
        if target.ftype == L.FTYPE_DIR:
            raise EISDIR(f"cannot hard-link a directory: {oldpath}")
        parent, name = self._resolve_parent(newpath)
        if name in parent.children:
            raise EEXIST(newpath)
        self.cov("link")
        if self.bugcfg.has(6):
            # Bug 6: commit the target's link count in place first, then add
            # the dentry in a separate transaction.  Checking that the
            # in-place fast path is safe requires reading the target's last
            # committed log entry from media — the extra read that made the
            # logging-based fix *faster* (paper Observation 2).
            self.cov("link.inplace_nlink")
            if target.log_count:
                last_index = target.log_count - 1
                page_i, slot_i = self._entry_position(target, last_index)
                self.ops.read_pm(
                    self.geom.entry_addr(target.pages[page_i], slot_i),
                    L.LOG_ENTRY_SIZE,
                )
            self._append(target, L.pack_link_change(1))
            self._commit_inplace(target, ordered=not self.bugcfg.has(3))
            add_addr = self._append(parent, L.pack_dentry_add(target.ino, name))
            self._commit_journal([parent], careful=not self.bugcfg.has(3))
        else:
            self._append(target, L.pack_link_change(1))
            add_addr = self._append(parent, L.pack_dentry_add(target.ino, name))
            self._commit_journal([target, parent], careful=not self.bugcfg.has(3))
        target.nlink += 1
        parent.children[name] = target.ino
        parent.dentry_addrs[name] = add_addr

    def unlink(self, path: str) -> None:
        parent, name = self._resolve_parent(path)
        if name not in parent.children:
            raise ENOENT(path)
        target = self._inode(parent.children[name])
        if target.ftype == L.FTYPE_DIR:
            raise EISDIR(path)
        self.cov("unlink")
        self._append(parent, L.pack_dentry_del(target.ino, name))
        self._append(target, L.pack_link_change(-1))
        self._commit_journal([parent, target], careful=not self.bugcfg.has(3))
        del parent.children[name]
        parent.dentry_addrs.pop(name, None)
        target.nlink -= 1
        if target.nlink <= 0:
            self.cov("unlink.lastlink")
            self._invalidate_slot(target)
            self._drop_inode(target)

    def rename(self, oldpath: str, newpath: str) -> None:
        if normalize(oldpath) == normalize(newpath):
            self._resolve(oldpath)
            return
        src_parent, src_name = self._resolve_parent(oldpath)
        if src_name not in src_parent.children:
            raise ENOENT(oldpath)
        moved = self._inode(src_parent.children[src_name])
        if moved.ftype == L.FTYPE_DIR and is_ancestor(oldpath, newpath):
            raise EINVAL("cannot move a directory into itself")
        dst_parent, dst_name = self._resolve_parent(newpath)
        overwriting: Optional[DramInode] = None
        if dst_name in dst_parent.children:
            overwriting = self._inode(dst_parent.children[dst_name])
            if overwriting.ftype == L.FTYPE_DIR:
                if moved.ftype != L.FTYPE_DIR:
                    raise EISDIR(newpath)
                if overwriting.children:
                    raise ENOTEMPTY(newpath)
            elif moved.ftype == L.FTYPE_DIR:
                raise ENOTDIR(newpath)
        same_dir = src_parent.ino == dst_parent.ino

        if self.bugcfg.has(5) and same_dir and overwriting is None:
            # Bug 5: commit the new dentry, then invalidate the old one in
            # place, outside any transaction.
            self.cov("rename.samedir.inplace")
            add_addr = self._append(src_parent, L.pack_dentry_add(moved.ino, dst_name))
            self._commit_inplace(src_parent, ordered=not self.bugcfg.has(3))
            self._flush_write(src_parent.dentry_addrs[src_name] + 12, b"\x00")
            self._fence()
        elif self.bugcfg.has(4) and not same_dir and overwriting is None:
            # Bug 4: invalidate the old dentry in place *before* the
            # transaction that creates the new one commits (Figure 2).
            self.cov("rename.crossdir.inplace")
            self._flush_write(src_parent.dentry_addrs[src_name] + 12, b"\x00")
            self._fence()
            add_addr = self._append(dst_parent, L.pack_dentry_add(moved.ino, dst_name))
            self._commit_journal([dst_parent], careful=not self.bugcfg.has(3))
        else:
            self.cov("rename.journaled")
            tx: List[DramInode] = []
            self._append(src_parent, L.pack_dentry_del(moved.ino, src_name))
            tx.append(src_parent)
            if overwriting is not None:
                self._append(dst_parent, L.pack_dentry_del(overwriting.ino, dst_name))
                if overwriting.ftype == L.FTYPE_REG:
                    self._append(overwriting, L.pack_link_change(-1))
                    tx.append(overwriting)
            add_addr = self._append(dst_parent, L.pack_dentry_add(moved.ino, dst_name))
            tx.append(dst_parent)
            self._commit_journal(tx, careful=not self.bugcfg.has(3))

        del src_parent.children[src_name]
        src_parent.dentry_addrs.pop(src_name, None)
        dst_parent.children[dst_name] = moved.ino
        dst_parent.dentry_addrs[dst_name] = add_addr
        if overwriting is not None:
            if overwriting.ftype == L.FTYPE_REG:
                overwriting.nlink -= 1
                if overwriting.nlink <= 0:
                    self._invalidate_slot(overwriting)
                    self._drop_inode(overwriting)
            else:
                self._invalidate_slot(overwriting)
                self._drop_inode(overwriting)

    # ------------------------------------------------------------------
    # Syscalls: data operations
    # ------------------------------------------------------------------
    def _file_for_data(self, path: str) -> DramInode:
        di = self._resolve(path)
        if di.ftype != L.FTYPE_REG:
            raise EISDIR(path)
        return di

    def _compose_block(self, di: DramInode, file_block: int) -> bytearray:
        """Current content of a file block (zeros when unmapped)."""
        bs = self.geom.block_size
        if file_block in di.blockmap:
            data = self.ops.read_pm(self.geom.block_addr(di.blockmap[file_block]), bs)
            return bytearray(data)
        return bytearray(bs)

    def write(self, path: str, offset: int, data: bytes) -> int:
        di = self._file_for_data(path)
        if offset < 0:
            raise EINVAL("negative write offset")
        if not data:
            return 0
        if offset + len(data) > self.geom.n_data_blocks * self.geom.block_size:
            raise EFBIG(f"write to offset {offset + len(data)} exceeds device")
        bs = self.geom.block_size
        first_blk = offset // bs
        last_blk = (offset + len(data) - 1) // bs
        n_blocks = last_blk - first_blk + 1
        if offset % bs or (offset + len(data)) % bs:
            self.cov("write.unaligned")
        new_blocks = self.alloc.alloc_many(n_blocks)

        # Compose the new content of every affected block (copy-on-write
        # read-modify-write at the unaligned edges).
        contents: List[bytes] = []
        for i in range(n_blocks):
            fblk = first_blk + i
            lo = max(offset, fblk * bs)
            hi = min(offset + len(data), (fblk + 1) * bs)
            if lo == fblk * bs and hi == (fblk + 1) * bs:
                block = bytearray(data[lo - offset : hi - offset])
            else:
                block = self._compose_block(di, fblk)
                block[lo - fblk * bs : hi - fblk * bs] = data[lo - offset : hi - offset]
            contents.append(bytes(block))

        # Write the data in one non-temporal store per contiguous run.
        runs = _contiguous_runs(new_blocks)
        entry_addrs: List[int] = []
        pos = 0
        for run_start, run_len in runs:
            if len(runs) > 1:
                self.cov("write.multirun")
            run_bytes = b"".join(contents[pos : pos + run_len])
            self._nt(self.geom.block_addr(run_start), run_bytes)
            f0 = first_blk + pos
            lo = max(offset, f0 * bs)
            hi = min(offset + len(data), (f0 + run_len) * bs)
            entry_addrs.append(
                self._append(di, L.pack_write_entry(lo, hi - lo, run_start, run_len))
            )
            pos += run_len
        mapping = [(first_blk + i, _block_for_index(runs, i)) for i in range(n_blocks)]
        self._data_csum_barrier(di, mapping, max(di.size, offset + len(data)))
        self._commit_inplace(di, ordered=not self.bugcfg.has(3))
        di.last_write_addr = entry_addrs[-1]

        # DRAM: publish the new mapping and free replaced blocks.
        for i in range(n_blocks):
            fblk = first_blk + i
            old = di.blockmap.get(fblk)
            if old is not None:
                self.alloc.free(old)
            di.blockmap[fblk] = _block_for_index(runs, i)
            self._data_written(di, fblk, di.blockmap[fblk])
        di.size = max(di.size, offset + len(data))
        return len(data)

    def read(self, path: str, offset: int, length: int) -> bytes:
        di = self._file_for_data(path)
        if offset < 0 or length < 0:
            raise EINVAL("negative read offset or length")
        end = min(offset + length, di.size)
        if offset >= end:
            return b""
        bs = self.geom.block_size
        out = bytearray()
        for fblk in range(offset // bs, (end - 1) // bs + 1):
            if fblk in di.blockmap:
                data = self.ops.read_pm(self.geom.block_addr(di.blockmap[fblk]), bs)
                data = self._verify_file_block(di, fblk, data)
            else:
                data = b"\x00" * bs
            out.extend(data)
        base = (offset // bs) * bs
        return bytes(out[offset - base : end - base])

    def truncate(self, path: str, length: int) -> None:
        di = self._file_for_data(path)
        if length < 0:
            raise EINVAL("negative truncate length")
        if length == di.size:
            return
        bs = self.geom.block_size
        if length < di.size:
            self.cov("truncate.shrink")
            self._truncate_begin(di, length)
            zero_args: Optional[Tuple[int, int]] = None
            tail_blk = length // bs
            if length % bs and tail_blk in di.blockmap:
                addr = self.geom.block_addr(di.blockmap[tail_blk]) + length % bs
                zero_args = (addr, bs - length % bs)
            if self.bugcfg.has(7) and zero_args is not None:
                # Bug 7: zero the truncated tail before (and in the same
                # fence epoch as) the size-change entry commit.
                self.cov("truncate.zero_first")
                self._memset(zero_args[0], 0, zero_args[1])
                self._append(di, L.pack_attr_entry(length, di.nlink, di.mode))
                self._commit_inplace(di, ordered=False)
            else:
                self._append(di, L.pack_attr_entry(length, di.nlink, di.mode))
                self._commit_inplace(di, ordered=True)
                if zero_args is not None:
                    self._memset(zero_args[0], 0, zero_args[1])
                    self._fence()
            # Free fully truncated blocks.
            first_dead = (length + bs - 1) // bs
            for fblk in [b for b in di.blockmap if b >= first_dead]:
                self.alloc.free(di.blockmap.pop(fblk))
            di.size = length
            self._truncate_end(di)
        else:
            self.cov("truncate.extend")
            self._append(di, L.pack_attr_entry(length, di.nlink, di.mode))
            self._commit_inplace(di, ordered=True)
            di.size = length
        di.last_write_addr = None

    def fallocate(self, path: str, offset: int, length: int) -> None:
        di = self._file_for_data(path)
        if offset < 0 or length <= 0:
            raise EINVAL("fallocate needs offset >= 0 and length > 0")
        if offset + length > self.geom.n_data_blocks * self.geom.block_size:
            raise EFBIG("fallocate beyond device capacity")
        bs = self.geom.block_size
        end = offset + length

        if self.bugcfg.has(8) and self._falloc_inplace_applicable(di, offset, end):
            self._falloc_inplace_extend(di, offset, end)
            return

        self.cov("falloc.append")
        first_blk = offset // bs
        last_blk = (end - 1) // bs
        missing = [b for b in range(first_blk, last_blk + 1) if b not in di.blockmap]
        for run_start_f, run_len in _contiguous_runs(missing):
            blocks = self.alloc.alloc_many(run_len)
            for dev_run_start, dev_run_len in _contiguous_runs(blocks):
                self._memset(self.geom.block_addr(dev_run_start), 0, dev_run_len * bs)
            # Map the new blocks with WRITE entries (content is zeros).
            pos = 0
            for dev_run_start, dev_run_len in _contiguous_runs(blocks):
                f0 = run_start_f + pos
                lo = max(offset, f0 * bs)
                hi = min(end, (f0 + dev_run_len) * bs)
                self._append(di, L.pack_write_entry(lo, hi - lo, dev_run_start, dev_run_len))
                pos += dev_run_len
            for i, fblk in enumerate(range(run_start_f, run_start_f + run_len)):
                di.blockmap[fblk] = blocks[i]
        if end > di.size:
            self._append(di, L.pack_attr_entry(end, di.nlink, di.mode))
        if di.pending:
            new_mapping = [
                (fblk, di.blockmap[fblk]) for fblk in missing if fblk in di.blockmap
            ]
            self._data_csum_barrier(di, new_mapping, max(di.size, end))
            self._commit_inplace(di, ordered=True)
        di.size = max(di.size, end)

    def _falloc_inplace_applicable(self, di: DramInode, offset: int, end: int) -> bool:
        """Bug-8 trigger: the range touches the last committed WRITE entry."""
        if di.last_write_addr is None:
            return False
        entry = L.unpack_entry(self.ops.read_pm(di.last_write_addr, L.LOG_ENTRY_SIZE), di.last_write_addr)
        if entry.etype != L.ET_WRITE:
            return False
        return offset <= entry.offset + entry.length and end > entry.offset

    def _falloc_inplace_extend(self, di: DramInode, offset: int, end: int) -> None:
        """Bug 8: merge the range into the last WRITE entry in place.

        The buggy "optimization" allocates a fresh zeroed run covering the
        merged range, rewrites the committed entry to point at it, and only
        *then* copies the old data over — so a crash between publish and copy
        loses the previously written data.
        """
        self.cov("falloc.inplace")
        bs = self.geom.block_size
        addr = di.last_write_addr
        assert addr is not None
        entry = L.unpack_entry(self.ops.read_pm(addr, L.LOG_ENTRY_SIZE), addr)
        merged_lo = min(entry.offset, offset)
        merged_hi = max(entry.offset + entry.length, end)
        first_blk = merged_lo // bs
        last_blk = (merged_hi - 1) // bs
        n_blocks = last_blk - first_blk + 1
        new_blocks = self.alloc.alloc_contiguous(n_blocks)
        run_start = new_blocks[0]
        self._memset(self.geom.block_addr(run_start), 0, n_blocks * bs)
        new_entry = L.pack_write_entry(merged_lo, merged_hi - merged_lo, run_start, n_blocks)
        self._nt(addr, new_entry)
        self._fence()  # publish before copy: the bug
        # Copy previously written data into the new run.
        for i in range(n_blocks):
            fblk = first_blk + i
            old = di.blockmap.get(fblk)
            if old is not None and old not in new_blocks:
                data = self.ops.read_pm(self.geom.block_addr(old), bs)
                self._nt(self.geom.block_addr(new_blocks[i]), data)
        self._data_csum_barrier(
            di,
            [(first_blk + i, new_blocks[i]) for i in range(n_blocks)],
            max(di.size, merged_hi),
        )
        self._fence()
        for i in range(n_blocks):
            fblk = first_blk + i
            old = di.blockmap.get(fblk)
            if old is not None:
                self.alloc.free(old)
            di.blockmap[fblk] = new_blocks[i]
        di.size = max(di.size, merged_hi)

    # ------------------------------------------------------------------
    # Syscalls: introspection
    # ------------------------------------------------------------------
    def stat(self, path: str) -> Stat:
        di = self._resolve(path)
        if di.ftype == L.FTYPE_DIR:
            nlink = 2 + sum(
                1
                for child_ino in di.children.values()
                if self.inodes.get(child_ino) is not None
                and self.inodes[child_ino].ftype == L.FTYPE_DIR
            )
            return Stat(di.ino, FileType.DIRECTORY, self.geom.block_size, nlink, di.mode)
        return Stat(di.ino, FileType.REGULAR, di.size, di.nlink, di.mode)

    def readdir(self, path: str) -> List[str]:
        di = self._resolve(path)
        if di.ftype != L.FTYPE_DIR:
            raise ENOTDIR(path)
        return sorted(di.children)


def _contiguous_runs(blocks: List[int]) -> List[Tuple[int, int]]:
    """Split a sorted-ish block list into (start, length) contiguous runs."""
    runs: List[Tuple[int, int]] = []
    for block in blocks:
        if runs and block == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((block, 1))
    return runs


def _block_for_index(runs: List[Tuple[int, int]], index: int) -> int:
    """Device block for the ``index``-th block across the runs."""
    for start, length in runs:
        if index < length:
            return start + index
        index -= length
    raise IndexError(index)
