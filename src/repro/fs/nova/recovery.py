"""Mount-time recovery for the NOVA-like file system.

Recovery replays the commit journal, then rebuilds all DRAM state — the
directory maps, file block maps, and the allocators — by walking every valid
inode's log up to its committed entry count.  This is exactly the
"rebuild volatile state" code path paper Observation 3 identifies as a major
source of crash-consistency bugs; several Table-1 bugs (1, 3) manifest here
as :class:`MountError`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.fs.common.layout import read_u32, read_u64, u32
from repro.fs.nova import layout as L
from repro.fs.nova.dram import DramInode, make_corrupt_inode
from repro.vfs.interface import MountError

ROOT_INO = 0


def rebuild(fs) -> None:
    """Recover and rebuild ``fs`` (a freshly constructed NovaFS) in place."""
    _journal_recover(fs)
    parsed: Dict[int, DramInode] = {}
    slot_bufs: Dict[int, bytes] = {}
    for ino in range(fs.geom.n_inodes):
        buf = fs.ops.read_pm(fs.geom.inode_addr(ino), L.INODE_SLOT_SIZE)
        slot = L.unpack_inode_slot(buf)
        if not slot.valid:
            continue
        fs._verify_slot(ino, buf)
        parsed[ino] = _walk_log(fs, ino, slot)
        slot_bufs[ino] = buf

    root = parsed.get(ROOT_INO)
    if root is None or root.ftype != L.FTYPE_DIR:
        raise MountError("root inode missing or not a directory")

    reachable = _reachable_inos(parsed)
    fs.inodes = {}
    for ino in reachable:
        if ino in parsed:
            fs.inodes[ino] = parsed[ino]
        else:
            # A dentry references an inode whose slot never became durable
            # (bug 2): keep the name but mark the target corrupt.
            fs.inodes[ino] = make_corrupt_inode(ino)

    # Orphan pass: valid inodes no dentry references.  Files whose link
    # count dropped to zero are unfinished unlinks — complete them.  Anything
    # else is a leak: keep its space allocated but leave it out of the tree.
    leaked: List[DramInode] = []
    for ino, di in parsed.items():
        if ino in reachable or ino == ROOT_INO:
            continue
        if di.ftype == L.FTYPE_REG and di.nlink <= 0:
            fs._flush_write(fs.geom.inode_addr(ino) + L.INO_VALID, b"\x00")
            fs._fence()
        else:
            leaked.append(di)

    # Rebuild the allocators from the surviving metadata.
    fs.ialloc.mark_used(ROOT_INO)
    for di in list(fs.inodes.values()) + leaked:
        fs.ialloc.mark_used(di.ino)
        for page in di.pages:
            fs.alloc.mark_used(page // fs.geom.block_size)
        for block in set(di.blockmap.values()):
            fs.alloc.mark_used(block)

    fs._recovery_extra(parsed, reachable)


def _journal_recover(fs) -> None:
    """Redo a committed journal transaction, if any."""
    jaddr = fs.geom.journal.offset
    buf = fs.ops.read_pm(jaddr, L.JR_PAIRS + L.JR_MAX_PAIRS * L.JR_PAIR_SIZE)
    if buf[L.JR_COMMIT] != 1:
        return
    n_pairs = buf[L.JR_NPAIRS]
    if n_pairs > L.JR_MAX_PAIRS:
        raise MountError(f"corrupt journal: {n_pairs} pairs")
    for ino, new_count in L.unpack_journal_pairs(buf, n_pairs):
        if ino >= fs.geom.n_inodes:
            raise MountError(f"journal pair references invalid inode {ino}")
        fs._recover_count(ino, new_count)
    fs._fence()
    fs._flush_write(jaddr + L.JR_COMMIT, b"\x00")
    fs._fence()


def _walk_log(fs, ino: int, slot: L.InodeSlot) -> DramInode:
    """Walk one inode's log, applying its committed entries in order.

    Raises :class:`MountError` on a broken page chain (bug 1 manifestation)
    or an invalid entry (bug 3 manifestation: the commit pointer ran ahead
    of the entries it covers).
    """
    geom = fs.geom
    di = DramInode(
        ino=ino,
        ftype=slot.ftype,
        mode=slot.mode,
        log_head=slot.log_head,
        log_count=slot.log_count,
    )
    if slot.ftype not in (L.FTYPE_REG, L.FTYPE_DIR):
        raise MountError(f"inode {ino}: invalid file type {slot.ftype}")
    _check_page_addr(fs, slot.log_head, ino)
    di.pages = [slot.log_head]
    for index in range(slot.log_count):
        page_i, slot_i = divmod(index, geom.log_page_entries)
        while page_i >= len(di.pages):
            next_addr = read_u64(fs.ops.read_pm(di.pages[-1] + 8, 8))
            if next_addr == 0:
                raise MountError(
                    f"inode {ino}: log chain broken at entry {index} "
                    f"(count={slot.log_count})"
                )
            _check_page_addr(fs, next_addr, ino)
            di.pages.append(next_addr)
        addr = geom.entry_addr(di.pages[page_i], slot_i)
        buf = fs.ops.read_pm(addr, L.LOG_ENTRY_SIZE)
        try:
            entry = L.unpack_entry(buf, addr)
        except ValueError as exc:
            raise MountError(f"inode {ino}: {exc}") from exc
        _apply_entry(fs, di, entry)
    return di


def _check_page_addr(fs, addr: int, ino: int) -> None:
    geom = fs.geom
    first = geom.first_data_block * geom.block_size
    if addr < first or addr >= geom.device_size or addr % geom.block_size:
        raise MountError(f"inode {ino}: log page address {addr:#x} out of range")
    magic = read_u32(fs.ops.read_pm(addr, 4))
    if magic != L.LOGPAGE_MAGIC:
        raise MountError(f"inode {ino}: bad log page magic at {addr:#x}")


def _apply_entry(fs, di: DramInode, e: L.ParsedEntry) -> None:
    geom = fs.geom
    bs = geom.block_size
    if e.etype == L.ET_ATTR:
        di.size = e.size
        di.nlink = e.nlink
        if e.mode:
            di.mode = e.mode
        first_dead = (e.size + bs - 1) // bs
        for fblk in [b for b in di.blockmap if b >= first_dead]:
            del di.blockmap[fblk]
        di.last_write_addr = None
    elif e.etype == L.ET_WRITE:
        if e.n_blocks == 0 or e.length == 0:
            raise MountError(f"inode {di.ino}: empty WRITE entry at {e.addr:#x}")
        first_data = geom.first_data_block
        if not (first_data <= e.start_block and e.start_block + e.n_blocks <= geom.n_blocks):
            raise MountError(
                f"inode {di.ino}: WRITE entry maps invalid blocks "
                f"[{e.start_block}, {e.start_block + e.n_blocks})"
            )
        first_blk = e.offset // bs
        for k in range(e.n_blocks):
            di.blockmap[first_blk + k] = e.start_block + k
        di.size = max(di.size, e.offset + e.length)
        di.last_write_addr = e.addr
    elif e.etype == L.ET_LINK_CHANGE:
        di.nlink += e.delta
    elif e.etype == L.ET_DENTRY_ADD:
        if di.ftype != L.FTYPE_DIR:
            raise MountError(f"inode {di.ino}: dentry entry in a file log")
        if e.dentry_valid:
            di.children[e.name] = e.ino
            di.dentry_addrs[e.name] = e.addr
    elif e.etype == L.ET_DENTRY_DEL:
        if di.ftype != L.FTYPE_DIR:
            raise MountError(f"inode {di.ino}: dentry entry in a file log")
        di.children.pop(e.name, None)
        di.dentry_addrs.pop(e.name, None)


def _reachable_inos(parsed: Dict[int, DramInode]) -> Set[int]:
    """Inode numbers reachable from the root through valid dentries."""
    reachable: Set[int] = set()
    stack = [ROOT_INO]
    while stack:
        ino = stack.pop()
        if ino in reachable:
            continue
        reachable.add(ino)
        di = parsed.get(ino)
        if di is not None and di.ftype == L.FTYPE_DIR:
            stack.extend(di.children.values())
    return reachable
