"""Volatile (DRAM) state of the NOVA-like file system.

NOVA keeps allocators, directory maps, and file block maps in DRAM for
performance and rebuilds them from the per-inode logs at mount — the
recovery pattern paper Observation 3 identifies as a major bug source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class DramInode:
    """In-memory image of one inode, derived from its persistent log."""

    ino: int
    ftype: int  # FTYPE_REG or FTYPE_DIR (layout constants)
    mode: int
    log_head: int
    #: Committed entry count (mirror of the persistent commit pointer).
    log_count: int = 0
    #: Entries appended but not yet committed in the current operation.
    pending: int = 0
    #: Log page addresses in chain order.
    pages: List[int] = field(default_factory=list)

    # Regular-file state ----------------------------------------------------
    size: int = 0
    nlink: int = 0
    #: file block index -> device block number
    blockmap: Dict[int, int] = field(default_factory=dict)
    #: Address of the last committed WRITE entry (for the in-place
    #: fallocate extension path, bug 8).
    last_write_addr: Optional[int] = None

    # Directory state --------------------------------------------------------
    #: name -> child ino
    children: Dict[str, int] = field(default_factory=dict)
    #: name -> on-PM address of the live DENTRY_ADD entry (for the in-place
    #: invalidation paths, bugs 4 and 5).
    dentry_addrs: Dict[str, int] = field(default_factory=dict)

    #: Set when a dentry references this inode but its slot is invalid on PM
    #: (the dangling-dentry consequence of bug 2).
    corrupt: bool = False

    @property
    def next_index(self) -> int:
        """Index at which the next appended entry will be placed."""
        return self.log_count + self.pending

    def mapped_blocks(self) -> List[int]:
        return sorted(set(self.blockmap.values()))


def make_corrupt_inode(ino: int) -> DramInode:
    """Placeholder for an inode whose slot was lost in the crash (bug 2)."""
    di = DramInode(ino=ino, ftype=0, mode=0, log_head=0)
    di.corrupt = True
    return di
