"""On-PM layout of the NOVA-like file system.

Device layout (block addresses):

* block 0 — superblock
* block 1 — circular journal
* blocks 2 .. 2+inode_blocks — inode table (fixed 128-byte slots spanning
  two cache lines: identity fields on line 0, mutable commit state on line 1)
* remainder — log pages and data blocks, allocated on demand

A log page is one block: a 16-byte header (magic, next-page pointer) followed
by fixed 64-byte log entries.  The *committed length* of an inode's log is
its persistent ``log_count`` field — the commit pointer every operation
updates last (and whose premature in-place update is bug 3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.fs.common.layout import (
    Region,
    decode_name,
    encode_name,
    pad_to,
    read_u16,
    read_u32,
    read_u64,
    u16,
    u32,
    u64,
)

SB_MAGIC = 0x4E4F5641  # "NOVA"
LOGPAGE_MAGIC = 0x4C4F4750  # "LOGP"

INODE_SLOT_SIZE = 128
LOG_ENTRY_SIZE = 64
LOG_PAGE_HEADER = 16
NAME_FIELD = 32

# Inode slot field offsets.  The slot spans two cache lines on purpose:
# line 0 holds the identity fields written once at creation, line 1 holds
# the mutable commit state.  Updating the commit pointer therefore never
# incidentally writes back the identity line — which is exactly why an
# unflushed inode initialization (bug 2) stays lost.
INO_VALID = 0
INO_FTYPE = 1
INO_MODE = 2
INO_LOG_HEAD = 8  # u64 absolute address of the first log page
INO_COUNT = 64  # u32 log_count — the commit pointer (second cache line)
INO_CSUM = 68  # u32, used by NOVA-Fortis
INO_REPLICA_SYNC = 72  # u32 replica generation, used by NOVA-Fortis

#: Bytes of the slot covered by the Fortis inode checksum: the identity
#: prefix plus the commit pointer.
CSUM_IDENTITY_LEN = 16

FTYPE_REG = 1
FTYPE_DIR = 2

# Log entry types.
ET_ATTR = 1
ET_DENTRY_ADD = 2
ET_DENTRY_DEL = 3
ET_WRITE = 4
ET_LINK_CHANGE = 5

VALID_ENTRY_TYPES = frozenset((ET_ATTR, ET_DENTRY_ADD, ET_DENTRY_DEL, ET_WRITE, ET_LINK_CHANGE))


@dataclass(frozen=True)
class NovaGeometry:
    """Size parameters of a NOVA image.

    The defaults give a small, fast image where the log-page-overflow slow
    path (bug 1) is reachable by short workloads, mirroring how the paper
    drives deep code paths with small tests.
    """

    device_size: int = 512 * 1024
    block_size: int = 512
    inode_blocks: int = 4
    #: Entries per log page; at most (block_size - header) // entry size.
    log_page_entries: int = 4

    def __post_init__(self) -> None:
        max_entries = (self.block_size - LOG_PAGE_HEADER) // LOG_ENTRY_SIZE
        if not (1 <= self.log_page_entries <= max_entries):
            raise ValueError(
                f"log_page_entries must be in [1, {max_entries}], "
                f"got {self.log_page_entries}"
            )
        if self.device_size % self.block_size:
            raise ValueError("device_size must be a multiple of block_size")

    # Region map -----------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return self.device_size // self.block_size

    @property
    def superblock(self) -> Region:
        return Region(0, self.block_size)

    @property
    def journal(self) -> Region:
        return Region(self.block_size, self.block_size)

    @property
    def inode_table(self) -> Region:
        return Region(2 * self.block_size, self.inode_blocks * self.block_size)

    @property
    def n_inodes(self) -> int:
        return self.inode_table.size // INODE_SLOT_SIZE

    @property
    def first_data_block(self) -> int:
        return 2 + self.inode_blocks

    @property
    def n_data_blocks(self) -> int:
        return self.n_blocks - self.first_data_block

    def block_addr(self, block: int) -> int:
        if not (0 <= block < self.n_blocks):
            raise ValueError(f"block {block} out of range")
        return block * self.block_size

    def inode_addr(self, ino: int) -> int:
        return self.inode_table.slot(ino, INODE_SLOT_SIZE)

    def entry_addr(self, page_addr: int, index: int) -> int:
        """Address of entry ``index`` within the log page at ``page_addr``."""
        if not (0 <= index < self.log_page_entries):
            raise ValueError(f"entry index {index} out of page range")
        return page_addr + LOG_PAGE_HEADER + index * LOG_ENTRY_SIZE


# ---------------------------------------------------------------------------
# Superblock codec
# ---------------------------------------------------------------------------


def pack_superblock(geom: NovaGeometry) -> bytes:
    body = (
        u32(SB_MAGIC)
        + u32(1)  # version
        + u64(geom.device_size)
        + u32(geom.block_size)
        + u32(geom.inode_blocks)
        + u32(geom.log_page_entries)
    )
    return pad_to(body, 64)


def unpack_superblock(buf: bytes) -> NovaGeometry:
    if read_u32(buf, 0) != SB_MAGIC:
        raise ValueError("bad NOVA superblock magic")
    device_size = read_u64(buf, 8)
    block_size = read_u32(buf, 16)
    inode_blocks = read_u32(buf, 20)
    log_page_entries = read_u32(buf, 24)
    return NovaGeometry(
        device_size=device_size,
        block_size=block_size,
        inode_blocks=inode_blocks,
        log_page_entries=log_page_entries,
    )


# ---------------------------------------------------------------------------
# Inode slot codec
# ---------------------------------------------------------------------------


def pack_inode_slot(ftype: int, mode: int, log_head: int) -> bytes:
    body = bytearray(INODE_SLOT_SIZE)
    body[INO_VALID] = 1
    body[INO_FTYPE] = ftype
    body[INO_MODE : INO_MODE + 2] = u16(mode)
    body[INO_COUNT : INO_COUNT + 4] = u32(0)
    body[INO_LOG_HEAD : INO_LOG_HEAD + 8] = u64(log_head)
    return bytes(body)


@dataclass(frozen=True)
class InodeSlot:
    valid: bool
    ftype: int
    mode: int
    log_count: int
    log_head: int
    csum: int
    replica_sync: int


def unpack_inode_slot(buf: bytes) -> InodeSlot:
    return InodeSlot(
        valid=buf[INO_VALID] == 1,
        ftype=buf[INO_FTYPE],
        mode=read_u16(buf, INO_MODE),
        log_count=read_u32(buf, INO_COUNT),
        log_head=read_u64(buf, INO_LOG_HEAD),
        csum=read_u32(buf, INO_CSUM),
        replica_sync=read_u32(buf, INO_REPLICA_SYNC),
    )


# ---------------------------------------------------------------------------
# Log entry codecs.  All entries are LOG_ENTRY_SIZE bytes; byte 0 is the
# entry type, bytes 8.. are per-type payload.
# ---------------------------------------------------------------------------


def pack_attr_entry(size: int, nlink: int, mode: int) -> bytes:
    body = bytearray(LOG_ENTRY_SIZE)
    body[0] = ET_ATTR
    body[8:16] = u64(size)
    body[16:20] = u32(nlink)
    body[20:22] = u16(mode)
    return bytes(body)


def pack_dentry_add(ino: int, name: str) -> bytes:
    body = bytearray(LOG_ENTRY_SIZE)
    body[0] = ET_DENTRY_ADD
    body[8:12] = u32(ino)
    body[12] = 1  # valid flag, cleared by in-place invalidation (bugs 4, 5)
    body[16 : 16 + NAME_FIELD] = encode_name(name, NAME_FIELD)
    return bytes(body)


def pack_dentry_del(ino: int, name: str) -> bytes:
    body = bytearray(LOG_ENTRY_SIZE)
    body[0] = ET_DENTRY_DEL
    body[8:12] = u32(ino)
    body[16 : 16 + NAME_FIELD] = encode_name(name, NAME_FIELD)
    return bytes(body)


# WRITE entry payload offsets (relative to entry start); the fallocate
# in-place extension bug (bug 8) rewrites a committed entry at these offsets.
WE_OFFSET = 8
WE_LENGTH = 16
WE_START_BLOCK = 24
WE_N_BLOCKS = 28


def pack_write_entry(offset: int, length: int, start_block: int, n_blocks: int) -> bytes:
    body = bytearray(LOG_ENTRY_SIZE)
    body[0] = ET_WRITE
    body[WE_OFFSET : WE_OFFSET + 8] = u64(offset)
    body[WE_LENGTH : WE_LENGTH + 8] = u64(length)
    body[WE_START_BLOCK : WE_START_BLOCK + 4] = u32(start_block)
    body[WE_N_BLOCKS : WE_N_BLOCKS + 4] = u32(n_blocks)
    return bytes(body)


def pack_link_change(delta: int) -> bytes:
    body = bytearray(LOG_ENTRY_SIZE)
    body[0] = ET_LINK_CHANGE
    body[8:12] = struct.pack("<i", delta)
    return bytes(body)


@dataclass(frozen=True)
class ParsedEntry:
    """A decoded log entry plus its on-PM address (for in-place updates)."""

    etype: int
    addr: int
    # ATTR
    size: int = 0
    nlink: int = 0
    mode: int = 0
    # DENTRY_*
    ino: int = 0
    name: str = ""
    dentry_valid: bool = True
    # WRITE
    offset: int = 0
    length: int = 0
    start_block: int = 0
    n_blocks: int = 0
    # LINK_CHANGE
    delta: int = 0


def unpack_entry(buf: bytes, addr: int) -> ParsedEntry:
    """Decode one log entry; raises ``ValueError`` for unknown entry types."""
    etype = buf[0]
    if etype not in VALID_ENTRY_TYPES:
        raise ValueError(f"invalid log entry type {etype} at {addr:#x}")
    if etype == ET_ATTR:
        return ParsedEntry(
            etype,
            addr,
            size=read_u64(buf, 8),
            nlink=read_u32(buf, 16),
            mode=read_u16(buf, 20),
        )
    if etype in (ET_DENTRY_ADD, ET_DENTRY_DEL):
        return ParsedEntry(
            etype,
            addr,
            ino=read_u32(buf, 8),
            dentry_valid=buf[12] == 1,
            name=decode_name(buf[16 : 16 + NAME_FIELD]),
        )
    if etype == ET_WRITE:
        return ParsedEntry(
            etype,
            addr,
            offset=read_u64(buf, WE_OFFSET),
            length=read_u64(buf, WE_LENGTH),
            start_block=read_u32(buf, WE_START_BLOCK),
            n_blocks=read_u32(buf, WE_N_BLOCKS),
        )
    # ET_LINK_CHANGE
    return ParsedEntry(etype, addr, delta=struct.unpack_from("<i", buf, 8)[0])


# ---------------------------------------------------------------------------
# Journal codec: one block holding up to 8 (ino, new_count) commit pairs.
# ---------------------------------------------------------------------------

JR_COMMIT = 0
JR_NPAIRS = 1
JR_PAIRS = 8
JR_PAIR_SIZE = 8
JR_MAX_PAIRS = 8


def pack_journal_pairs(pairs: List[Tuple[int, int]]) -> bytes:
    """Pack (ino, new_count) pairs into the journal pair area."""
    if len(pairs) > JR_MAX_PAIRS:
        raise ValueError(f"too many journal pairs: {len(pairs)}")
    out = bytearray(JR_MAX_PAIRS * JR_PAIR_SIZE)
    for i, (ino, new_count) in enumerate(pairs):
        out[i * JR_PAIR_SIZE : i * JR_PAIR_SIZE + 4] = u32(ino)
        out[i * JR_PAIR_SIZE + 4 : i * JR_PAIR_SIZE + 8] = u32(new_count)
    return bytes(out)


def unpack_journal_pairs(buf: bytes, n_pairs: int) -> List[Tuple[int, int]]:
    pairs = []
    for i in range(n_pairs):
        ino = read_u32(buf, JR_PAIRS + i * JR_PAIR_SIZE)
        new_count = read_u32(buf, JR_PAIRS + i * JR_PAIR_SIZE + 4)
        pairs.append((ino, new_count))
    return pairs
