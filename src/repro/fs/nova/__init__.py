"""NOVA-like log-structured PM file system.

Architecture (after Xu & Swanson, FAST '16): a fixed inode table, a per-inode
metadata log (a chain of log pages), copy-on-write data blocks, and a small
circular journal for transactions that span multiple inodes (creat, link,
unlink, rename).  All DRAM state — the allocators, directory maps, and block
maps — is rebuilt from the logs at mount (paper Observation 3).
"""

from repro.fs.nova.fs import NovaFS
from repro.fs.nova.layout import NovaGeometry

__all__ = ["NovaFS", "NovaGeometry"]
