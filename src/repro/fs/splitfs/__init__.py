"""SplitFS-like hybrid user/kernel PM file system."""

from repro.fs.splitfs.fs import SplitFS, SplitfsGeometry

__all__ = ["SplitFS", "SplitfsGeometry"]
