"""SplitFS-like hybrid user/kernel PM file system (strict mode).

SplitFS (Kadekodi et al., SOSP '19) splits the file system between a
user-space library (U-Split) and an unmodified kernel file system (K-Split,
ext4-DAX).  In *strict* mode every operation is synchronous and atomic:
U-Split stages data in a staging region and records each operation in a
persistent, checksummed operation log; the kernel file system absorbs the
logged operations lazily ("relink"), and recovery replays the op log on top
of the kernel file system's last durable state.

Layout of the shared device:

* block 0 — SplitFS superblock
* op-log region (fixed entries, one per operation)
* staging region (bump-allocated data blocks)
* the rest — an embedded :class:`~repro.fs.ext4dax.fs.Ext4DaxFS` (K-Split)

All five SplitFS bugs from Table 1 (21-25) are logic bugs in the U-Split
logging protocol — matching the paper's observation that using ext4-DAX for
metadata removes PM-programming errors but not logic bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fs.bugs import BugConfig
from repro.fs.common.layout import (
    Region,
    crc32,
    decode_name,
    pad_to,
    read_u16,
    read_u32,
    read_u64,
    u16,
    u32,
    u64,
)
from repro.fs.ext4dax.fs import Ext4DaxFS, Ext4DaxGeometry
from repro.pm.device import PMDevice
from repro.pm.persistence import PersistenceOps, persistence_function
from repro.vfs.errors import EINVAL, ENOSPC, FsError
from repro.vfs.interface import FileSystem, MountError
from repro.vfs.types import Stat

SB_MAGIC = 0x53504C54  # "SPLT"

ENTRY_SIZE = 256
# Entry field offsets.
OE_ETYPE = 0
OE_COMMIT = 1
OE_DECLARED_LEN = 8  # u16
OE_OFFSET = 16  # u64
OE_LENGTH = 24  # u64
OE_STAGE_BLOCK = 32  # u32
OE_N_STAGE = 36  # u32
OE_CSUM = 40  # u32
OE_MODE = 44  # u16
OE_PATH1 = 64
OE_PATH2 = 128
OE_PATH_FIELD = 64
OE_INLINE = 192  # inline sub-8-byte tail of unaligned writes
BASE_DECLARED_LEN = OE_INLINE

ET_CREAT = 1
ET_MKDIR = 2
ET_RMDIR = 3
ET_LINK = 4
ET_UNLINK = 5
ET_RENAME = 6
ET_TRUNCATE = 7
ET_FALLOCATE = 8
ET_WRITE = 9

VALID_ETYPES = frozenset(range(ET_CREAT, ET_WRITE + 1))

METADATA_ETYPES = frozenset(
    (ET_CREAT, ET_MKDIR, ET_RMDIR, ET_LINK, ET_UNLINK, ET_RENAME, ET_TRUNCATE, ET_FALLOCATE)
)


@dataclass(frozen=True)
class SplitfsGeometry:
    """Size parameters of a SplitFS image."""

    device_size: int = 512 * 1024
    block_size: int = 512
    oplog_blocks: int = 16
    staging_blocks: int = 64

    @property
    def oplog(self) -> Region:
        return Region(self.block_size, self.oplog_blocks * self.block_size)

    @property
    def n_entries(self) -> int:
        return self.oplog.size // ENTRY_SIZE

    @property
    def staging(self) -> Region:
        return Region(self.oplog.end, self.staging_blocks * self.block_size)

    @property
    def kernel_origin(self) -> int:
        return self.staging.end

    @property
    def kernel_size(self) -> int:
        return self.device_size - self.kernel_origin

    def entry_addr(self, index: int) -> int:
        return self.oplog.slot(index, ENTRY_SIZE)

    def staging_addr(self, block: int) -> int:
        if not (0 <= block < self.staging_blocks):
            raise ValueError(f"staging block {block} out of range")
        return self.staging.offset + block * self.block_size


def pack_superblock(geom: SplitfsGeometry) -> bytes:
    body = (
        u32(SB_MAGIC)
        + u32(1)
        + u64(geom.device_size)
        + u32(geom.block_size)
        + u32(geom.oplog_blocks)
        + u32(geom.staging_blocks)
    )
    return pad_to(body, 64)


def unpack_superblock(buf: bytes) -> SplitfsGeometry:
    if read_u32(buf, 0) != SB_MAGIC:
        raise ValueError("bad SplitFS superblock magic")
    return SplitfsGeometry(
        device_size=read_u64(buf, 8),
        block_size=read_u32(buf, 16),
        oplog_blocks=read_u32(buf, 20),
        staging_blocks=read_u32(buf, 24),
    )


class SplitfsPersistence(PersistenceOps):
    """U-Split's persistence functions (instrumented via Uprobes)."""

    persistence_function_names = (
        "splitfs_memcpy_nt",
        "splitfs_memset_nt",
        "splitfs_flush_buffer",
        "splitfs_fence",
    )

    @persistence_function("nt_store", addr_arg=0, data_arg=1)
    def splitfs_memcpy_nt(self, addr: int, data: bytes) -> None:
        PersistenceOps.memcpy_nt(self, addr, data)

    @persistence_function("nt_store", addr_arg=0, length_arg=2)
    def splitfs_memset_nt(self, addr: int, value: int, length: int) -> None:
        PersistenceOps.memset_nt(self, addr, value, length)

    @persistence_function("flush", addr_arg=0, length_arg=1)
    def splitfs_flush_buffer(self, addr: int, length: int) -> None:
        PersistenceOps.flush_range(self, addr, length)

    @persistence_function("fence")
    def splitfs_fence(self) -> None:
        PersistenceOps.sfence(self)


def _encode_path(path: str) -> bytes:
    raw = path.encode("utf-8")
    if len(raw) >= OE_PATH_FIELD:
        raise EINVAL(f"path too long for op log: {path!r}")
    return raw + b"\x00" * (OE_PATH_FIELD - len(raw))


class SplitFS(FileSystem):
    """SplitFS in strict mode (see module docstring)."""

    name = "splitfs"
    strong_guarantees = True
    atomic_data_writes = True  # strict mode

    ops_class = SplitfsPersistence
    geometry_class = SplitfsGeometry

    def __init__(
        self,
        device: PMDevice,
        ops: PersistenceOps,
        geometry: SplitfsGeometry,
        bugs: Optional[BugConfig] = None,
    ) -> None:
        super().__init__(device, ops)
        self.geom = geometry
        self.bugcfg = bugs if bugs is not None else BugConfig.fixed()
        self.kfs: Optional[Ext4DaxFS] = None
        self._next_entry = 0
        self._next_stage = 0

    @property
    def probe_targets(self) -> List[PersistenceOps]:
        """Both components' persistence functions are instrumented —
        U-Split via Uprobes, the kernel component via Kprobes (paper 3.3)."""
        assert self.kfs is not None
        return [self.ops, self.kfs.ops]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def layout_map(cls, image: bytes):
        from repro.fs.common.layout import (
            LayoutMap,
            NamedRegion,
            single_region_map,
        )
        from repro.fs.ext4dax.fs import (
            layout_regions,
            unpack_superblock as unpack_kernel_sb,
        )

        try:
            geom = unpack_superblock(bytes(image[:64]))
        except Exception:  # torn superblock on a crash image
            return single_region_map(len(image))
        regions = [
            NamedRegion("superblock", Region(0, geom.block_size)),
            NamedRegion("oplog", geom.oplog, slot_size=ENTRY_SIZE),
            NamedRegion("staging", geom.staging, slot_size=geom.block_size),
        ]
        # The embedded K-Split (ext4-DAX) has its own superblock at
        # kernel_origin; when it parses, its regions are annotated with a
        # ``kernel.`` prefix, otherwise the component stays one opaque
        # region (its superblock may be torn independently of ours).
        try:
            ksb = unpack_kernel_sb(
                bytes(image[geom.kernel_origin : geom.kernel_origin + 64])
            )
            kgeom = Ext4DaxGeometry(
                device_size=ksb.device_size,
                block_size=ksb.block_size,
                inode_blocks=ksb.inode_blocks,
                journal_blocks=ksb.journal_blocks,
                xattr_blocks=ksb.xattr_blocks,
                origin=geom.kernel_origin,
            )
            regions.extend(layout_regions(kgeom, prefix="kernel."))
        except Exception:
            regions.append(
                NamedRegion("kernel", Region(geom.kernel_origin, geom.kernel_size))
            )
        return LayoutMap(tuple(regions))

    @classmethod
    def mechanism_hints(cls):
        """SplitFS persistence mechanisms, in ``layout_map()`` terms.

        The user-space half is purely log-structured: the operation log
        appends fixed-size entries and data goes to staging blocks relinked
        on fsync; the embedded K-Split keeps ext4's redo journal.  SplitFS
        runs under fsync crash points (weak guarantees), so these hints
        only drive recognition analytics today — fence-epoch planning never
        triggers — but they keep the declaration next to the layout like
        every other family.
        """
        from repro.mech.recognize import MechanismHints

        return MechanismHints(
            journal_regions=("kernel.journal",),
            append_regions=("oplog", "staging"),
        )

    @classmethod
    def mkfs(cls, device: PMDevice, geometry=None, bugs=None, **kwargs) -> "SplitFS":
        geom = geometry or cls.geometry_class(device_size=device.size)
        if geom.device_size != device.size:
            raise ValueError("geometry does not match device size")
        fs = cls(device, cls.ops_class(device), geom, bugs, **kwargs)
        fs.ops.splitfs_memset_nt(0, 0, geom.kernel_origin)
        fs.ops.splitfs_memcpy_nt(0, pack_superblock(geom))
        fs.ops.splitfs_fence()
        fs.kfs = Ext4DaxFS.mkfs(
            device,
            geometry=Ext4DaxGeometry(
                device_size=geom.kernel_size, origin=geom.kernel_origin
            ),
            bugs=BugConfig.fixed(),
        )
        return fs

    @classmethod
    def mount(cls, device: PMDevice, bugs=None, **kwargs) -> "SplitFS":
        try:
            geom = unpack_superblock(device.read(0, 64))
        except ValueError as exc:
            raise MountError(str(exc)) from exc
        fs = cls(device, cls.ops_class(device), geom, bugs, **kwargs)
        fs.kfs = Ext4DaxFS.mount(device, origin=geom.kernel_origin)
        fs._replay_oplog()
        return fs

    # ------------------------------------------------------------------
    # Op log
    # ------------------------------------------------------------------
    def _build_entry(
        self,
        etype: int,
        path1: str = "",
        path2: str = "",
        offset: int = 0,
        length: int = 0,
        stage_block: int = 0,
        n_stage: int = 0,
        mode: int = 0,
        inline: bytes = b"",
    ) -> bytes:
        if len(inline) >= 8:
            raise ValueError("inline tail must be under 8 bytes")
        body = bytearray(ENTRY_SIZE)
        body[OE_ETYPE] = etype
        declared = BASE_DECLARED_LEN + len(inline)
        body[OE_DECLARED_LEN : OE_DECLARED_LEN + 2] = u16(declared)
        body[OE_OFFSET : OE_OFFSET + 8] = u64(offset)
        body[OE_LENGTH : OE_LENGTH + 8] = u64(length)
        body[OE_STAGE_BLOCK : OE_STAGE_BLOCK + 4] = u32(stage_block)
        body[OE_N_STAGE : OE_N_STAGE + 4] = u32(n_stage)
        body[OE_MODE : OE_MODE + 2] = u16(mode)
        if path1:
            body[OE_PATH1 : OE_PATH1 + OE_PATH_FIELD] = _encode_path(path1)
        if path2:
            body[OE_PATH2 : OE_PATH2 + OE_PATH_FIELD] = _encode_path(path2)
        body[OE_INLINE : OE_INLINE + len(inline)] = inline
        body[OE_CSUM : OE_CSUM + 4] = u32(crc32(bytes(body[:declared])))
        return bytes(body)

    def _entry_csum_ok(self, buf: bytes) -> bool:
        declared = read_u16(buf, OE_DECLARED_LEN)
        if not (BASE_DECLARED_LEN <= declared <= ENTRY_SIZE):
            return False
        if self.bugcfg.has(23):
            # Bug 23: replay checksums the 8-byte-padded length rather than
            # the declared length, discarding valid entries whose inline
            # tail is not a multiple of 8 bytes.
            check_len = BASE_DECLARED_LEN + (
                ((declared - BASE_DECLARED_LEN) + 7) // 8
            ) * 8
            check_len = min(check_len, ENTRY_SIZE)
        else:
            check_len = declared
        body = bytearray(buf[:check_len])
        stored = read_u32(buf, OE_CSUM)
        body[OE_CSUM : OE_CSUM + 4] = u32(0)
        body[OE_COMMIT] = 0
        return crc32(bytes(body)) == stored

    def _log_append(self, body: bytes, metadata_op: bool) -> None:
        """Append and commit one op-log entry.

        Protocol: entry body (commit byte clear) via one non-temporal store,
        fence, then the commit marker.  Bug 24 writes the marker with a
        cached store and never flushes it; bug 21 skips the final fence for
        metadata operations, leaving the committed entry in flight when the
        syscall returns.
        """
        if self._next_entry >= self.geom.n_entries:
            self._checkpoint()
        addr = self.geom.entry_addr(self._next_entry)
        self._next_entry += 1
        self.ops.splitfs_memcpy_nt(addr, body)
        self.ops.splitfs_fence()
        if self.bugcfg.has(24):
            self.cov("oplog.cached_commit")
            self.ops.store_cached(addr + OE_COMMIT, b"\x01")
        else:
            self.ops.store_cached(addr + OE_COMMIT, b"\x01")
            self.ops.splitfs_flush_buffer(addr + OE_COMMIT, 1)
        if self.bugcfg.has(21) and metadata_op:
            self.cov("oplog.deferred_fence")
        else:
            self.ops.splitfs_fence()

    def _stage_data(self, data: bytes) -> Tuple[int, int]:
        """Copy the (8-byte-aligned prefix of the) data into staging blocks."""
        bs = self.geom.block_size
        n_blocks = (len(data) + bs - 1) // bs
        if self._next_stage + n_blocks > self.geom.staging_blocks:
            self._checkpoint()
            if self._next_stage + n_blocks > self.geom.staging_blocks:
                raise ENOSPC("staging region too small for this write")
        start = self._next_stage
        self._next_stage += n_blocks
        if data:
            self.ops.splitfs_memcpy_nt(self.geom.staging_addr(start), data)
        return start, n_blocks

    def _checkpoint(self) -> None:
        """Absorb the op log into the kernel file system and clear it.

        The kernel FS already holds every logged operation in its volatile
        state; committing its journal makes them durable, after which the
        log and staging region can be recycled.
        """
        self.cov("checkpoint")
        self.kfs.dirty_meta = True
        self.kfs.sync()
        self.ops.splitfs_memset_nt(self.geom.oplog.offset, 0, self.geom.oplog.size)
        self.ops.splitfs_fence()
        self._next_entry = 0
        self._next_stage = 0

    def _replay_oplog(self) -> None:
        """Mount-time replay of committed op-log entries onto the kernel FS.

        Stops at the first uncommitted or checksum-invalid entry (the torn
        end of the log).  Replay is idempotent: operations that were already
        absorbed by a checkpoint fail benignly and are skipped.
        """
        geom = self.geom
        index = 0
        for index in range(geom.n_entries):
            buf = self.ops.read_pm(geom.entry_addr(index), ENTRY_SIZE)
            etype = buf[OE_ETYPE]
            if etype == 0 or buf[OE_COMMIT] != 1 or etype not in VALID_ETYPES:
                break
            if not self._entry_csum_ok(buf):
                self.cov("replay.csum_reject")
                break
            self._apply_entry(buf)
            self._next_entry = index + 1
        stage_end = 0
        for i in range(self._next_entry):
            buf = self.ops.read_pm(geom.entry_addr(i), ENTRY_SIZE)
            if buf[OE_ETYPE] == ET_WRITE:
                stage_end = max(
                    stage_end, read_u32(buf, OE_STAGE_BLOCK) + read_u32(buf, OE_N_STAGE)
                )
        self._next_stage = stage_end

    def _apply_entry(self, buf: bytes) -> None:
        etype = buf[OE_ETYPE]
        path1 = decode_name(buf[OE_PATH1 : OE_PATH1 + OE_PATH_FIELD])
        path2 = decode_name(buf[OE_PATH2 : OE_PATH2 + OE_PATH_FIELD])
        offset = read_u64(buf, OE_OFFSET)
        length = read_u64(buf, OE_LENGTH)
        mode = read_u16(buf, OE_MODE)
        try:
            if etype == ET_CREAT:
                self.kfs.creat(path1, mode)
            elif etype == ET_MKDIR:
                self.kfs.mkdir(path1, mode)
            elif etype == ET_RMDIR:
                self.kfs.rmdir(path1)
            elif etype == ET_LINK:
                self.kfs.link(path2, path1)
            elif etype == ET_UNLINK:
                self.kfs.unlink(path1)
            elif etype == ET_RENAME:
                self.kfs.rename(path2, path1)
            elif etype == ET_TRUNCATE:
                self.kfs.truncate(path1, length)
            elif etype == ET_FALLOCATE:
                self.kfs.fallocate(path1, offset, length)
            elif etype == ET_WRITE:
                declared = read_u16(buf, OE_DECLARED_LEN)
                inline = bytes(buf[OE_INLINE:declared])
                stage_block = read_u32(buf, OE_STAGE_BLOCK)
                staged_len = length - len(inline)
                staged = (
                    self.ops.read_pm(self.geom.staging_addr(stage_block), staged_len)
                    if staged_len
                    else b""
                )
                self.kfs.write(path1, offset, staged + inline)
        except FsError:
            # Already absorbed by a checkpoint before the crash.
            self.cov("replay.skip_applied")

    # ------------------------------------------------------------------
    # Operations: validate and apply on the kernel FS (volatile), then
    # persist through the op log.
    # ------------------------------------------------------------------
    def creat(self, path: str, mode: int = 0o644) -> None:
        self.kfs.creat(path, mode)
        self.cov("creat")
        self._log_append(self._build_entry(ET_CREAT, path, mode=mode), True)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self.kfs.mkdir(path, mode)
        self.cov("mkdir")
        self._log_append(self._build_entry(ET_MKDIR, path, mode=mode), True)

    def rmdir(self, path: str) -> None:
        self.kfs.rmdir(path)
        self.cov("rmdir")
        self._log_append(self._build_entry(ET_RMDIR, path), True)

    def link(self, oldpath: str, newpath: str) -> None:
        self.kfs.link(oldpath, newpath)
        self.cov("link")
        self._log_append(self._build_entry(ET_LINK, newpath, oldpath), True)

    def unlink(self, path: str) -> None:
        self.kfs.unlink(path)
        self.cov("unlink")
        self._log_append(self._build_entry(ET_UNLINK, path), True)

    def rename(self, oldpath: str, newpath: str) -> None:
        self.kfs.rename(oldpath, newpath)
        self.cov("rename")
        if self.bugcfg.has(25):
            # Bug 25: rename is logged as link-new followed by unlink-old,
            # two separately committed entries — a crash in between leaves
            # both names.
            self.cov("rename.link_unlink")
            self._log_append(self._build_entry(ET_LINK, newpath, oldpath), True)
            self._log_append(self._build_entry(ET_UNLINK, oldpath), True)
        else:
            self._log_append(self._build_entry(ET_RENAME, newpath, oldpath), True)

    def truncate(self, path: str, length: int) -> None:
        self.kfs.truncate(path, length)
        self.cov("truncate")
        self._log_append(self._build_entry(ET_TRUNCATE, path, length=length), True)

    def fallocate(self, path: str, offset: int, length: int) -> None:
        self.kfs.fallocate(path, offset, length)
        self.cov("fallocate")
        self._log_append(
            self._build_entry(ET_FALLOCATE, path, offset=offset, length=length), True
        )

    def write(self, path: str, offset: int, data: bytes) -> int:
        n = self.kfs.write(path, offset, data)
        if n == 0:
            return 0
        self.cov("write")
        aligned_len = (len(data) // 8) * 8
        inline = data[aligned_len:]
        if inline:
            self.cov("write.inline_tail")
        if self.bugcfg.has(22):
            # Bug 22: the entry referencing the staged data is committed
            # before the data itself is durable.
            self.cov("write.publish_first")
            start = self._next_stage
            n_blocks = (aligned_len + self.geom.block_size - 1) // self.geom.block_size
            if start + n_blocks > self.geom.staging_blocks:
                self._checkpoint()
                start = 0
            entry = self._build_entry(
                ET_WRITE,
                path,
                offset=offset,
                length=len(data),
                stage_block=start,
                n_stage=n_blocks,
                inline=inline,
            )
            self._log_append(entry, False)
            self._next_stage = start + n_blocks
            if aligned_len:
                self.ops.splitfs_memcpy_nt(
                    self.geom.staging_addr(start), data[:aligned_len]
                )
            self.ops.splitfs_fence()
        else:
            start, n_blocks = self._stage_data(data[:aligned_len])
            self.ops.splitfs_fence()
            entry = self._build_entry(
                ET_WRITE,
                path,
                offset=offset,
                length=len(data),
                stage_block=start,
                n_stage=n_blocks,
                inline=inline,
            )
            self._log_append(entry, False)
        return n

    # ------------------------------------------------------------------
    # Reads and persistence points delegate to the kernel FS.
    # ------------------------------------------------------------------
    def read(self, path: str, offset: int, length: int) -> bytes:
        return self.kfs.read(path, offset, length)

    def stat(self, path: str) -> Stat:
        return self.kfs.stat(path)

    def readdir(self, path: str) -> List[str]:
        return self.kfs.readdir(path)

    def fsync(self, path: str) -> None:
        # Strict mode: every operation is already synchronous.
        self.stat(path)

    def sync(self) -> None:
        self._checkpoint()
