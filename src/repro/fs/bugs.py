"""Bug catalogue and configuration (paper Table 1).

Every crash-consistency bug Chipmunk found is implemented in this
reproduction as an *organic* code path inside the relevant file system,
guarded by a :class:`BugConfig` flag.  ``BugConfig.buggy(...)`` (everything
on, the state of the systems as tested in the paper) and
``BugConfig.fixed()`` (everything off, the post-fix state) are the two
interesting corners; benches that measure fix overhead toggle single bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Tuple


@dataclass(frozen=True)
class BugSpec:
    """One row of the paper's Table 1."""

    bug_id: int
    filesystems: Tuple[str, ...]
    consequence: str
    syscalls: Tuple[str, ...]
    bug_type: str  # "logic" or "pm"
    mechanism: str
    #: True when ACE-shaped workloads cannot trigger the bug (section 4.3:
    #: four bugs need workload shapes ACE omits, e.g. unaligned writes).
    fuzzer_only: bool = False
    #: True when exposing the bug requires a crash *during* a syscall
    #: (Observation 5: 11 of 23 bugs).
    needs_mid_syscall: bool = True
    #: Minimum number of in-flight writes that must be replayed onto the
    #: last persistent state to expose the bug (Observation 7).
    min_replay_writes: int = 1


#: Table 1, bug by bug.  ``syscalls`` uses the paper's names; ``write``
#: covers both write and pwrite.
BUG_REGISTRY: Dict[int, BugSpec] = {
    spec.bug_id: spec
    for spec in [
        BugSpec(
            1,
            ("nova", "nova-fortis"),
            "File system unmountable",
            ("all",),
            "logic",
            "log-page chaining: next-page pointer and log tail persisted in one "
            "fence epoch; a crash persisting only the tail leaves the log walk "
            "pointing into an unlinked page",
        ),
        BugSpec(
            2,
            ("nova", "nova-fortis"),
            "File is unreadable and undeletable",
            ("mkdir", "creat"),
            "pm",
            "new inode slot initialized with cached stores and never flushed; "
            "the dentry is persisted correctly, leaving a dangling name",
            needs_mid_syscall=False,
        ),
        BugSpec(
            3,
            ("nova", "nova-fortis"),
            "File system unmountable",
            ("write", "pwrite", "link", "unlink", "rename"),
            "logic",
            "per-inode log_count validation field updated in place in the same "
            "fence epoch as the log entry; recovery trusts the count and walks "
            "into unwritten log space",
        ),
        BugSpec(
            4,
            ("nova", "nova-fortis"),
            "Rename atomicity broken (file disappears)",
            ("rename",),
            "logic",
            "cross-directory rename invalidates the old dentry in place before "
            "the journaled transaction that adds the new dentry commits",
        ),
        BugSpec(
            5,
            ("nova", "nova-fortis"),
            "Rename atomicity broken (old file still present)",
            ("rename",),
            "logic",
            "same-directory rename commits the new dentry in a transaction and "
            "invalidates the old dentry in place afterwards, outside it",
        ),
        BugSpec(
            6,
            ("nova", "nova-fortis"),
            "Link count incremented before new file appears",
            ("link",),
            "logic",
            "link commits the target's nlink log entry in place before the "
            "journaled dentry-add transaction",
        ),
        BugSpec(
            7,
            ("nova", "nova-fortis"),
            "File data lost",
            ("truncate",),
            "logic",
            "shrinking truncate zeroes the truncated tail of the last data "
            "block in the same fence epoch as (and hence possibly before) the "
            "size-change log entry commit",
        ),
        BugSpec(
            8,
            ("nova", "nova-fortis"),
            "File data lost",
            ("fallocate",),
            "logic",
            "extending fallocate grows the previous write log entry in place "
            "with two separately flushed field updates instead of appending a "
            "new entry",
        ),
        BugSpec(
            9,
            ("nova-fortis",),
            "Unreadable directory or file data loss",
            ("unlink", "rmdir", "truncate"),
            "pm",
            "inode checksum recomputed after the update but the checksum store "
            "is never flushed; verification fails after a crash",
            needs_mid_syscall=False,
        ),
        BugSpec(
            10,
            ("nova-fortis",),
            "File is undeletable",
            ("write", "pwrite", "link", "rename"),
            "logic",
            "primary inode updated transactionally but the replica is synced in "
            "a separate later epoch; a crash in between fails replica "
            "verification on the next unlink",
        ),
        BugSpec(
            11,
            ("nova-fortis",),
            "FS attempts to deallocate free blocks",
            ("truncate",),
            "logic",
            "recovery replays the pending-truncate record after the log rebuild "
            "already freed the same blocks, tripping the allocator double-free "
            "assertion",
        ),
        BugSpec(
            12,
            ("nova-fortis",),
            "File is unreadable",
            ("truncate",),
            "logic",
            "shrinking truncate commits the new size without recomputing the "
            "tail block's data checksum over the shorter verification length",
            needs_mid_syscall=False,
        ),
        BugSpec(
            13,
            ("pmfs",),
            "File system unmountable",
            ("truncate", "unlink", "rmdir", "rename"),
            "logic",
            "truncate-list replay at mount dereferences the in-DRAM free list "
            "before it has been rebuilt (null pointer dereference)",
        ),
        BugSpec(
            14,
            ("pmfs",),
            "Write is not synchronous",
            ("write", "pwrite"),
            "pm",
            "data copied with non-temporal stores after the metadata "
            "transaction's final fence; the syscall returns with the data "
            "still in flight",
            needs_mid_syscall=False,
        ),
        BugSpec(
            15,
            ("winefs",),
            "Write is not synchronous",
            ("write", "pwrite"),
            "pm",
            "shared write-path code with PMFS: missing trailing store fence",
            needs_mid_syscall=False,
        ),
        BugSpec(
            16,
            ("pmfs",),
            "Out-of-bounds memory access",
            ("all",),
            "logic",
            "journal replay trusts the persisted record count without bounds "
            "checking; a torn journal header sends replay past the journal area",
        ),
        BugSpec(
            17,
            ("pmfs",),
            "File data lost",
            ("write", "pwrite"),
            "pm",
            "sub-cache-line writes round the flush length down, leaving the "
            "tail cache line unflushed",
            fuzzer_only=True,
            needs_mid_syscall=False,
        ),
        BugSpec(
            18,
            ("winefs",),
            "File data lost",
            ("write", "pwrite"),
            "pm",
            "shared write-path code with PMFS: tail cache line never flushed "
            "for unaligned writes",
            fuzzer_only=True,
            needs_mid_syscall=False,
        ),
        BugSpec(
            19,
            ("winefs",),
            "File is unreadable and undeletable",
            ("all",),
            "logic",
            "per-CPU journal recovery indexes the journal array with the wrong "
            "stride, so transactions from CPUs other than 0 are never rolled "
            "back",
        ),
        BugSpec(
            20,
            ("winefs",),
            "Data write is not atomic in strict mode",
            ("write", "pwrite"),
            "logic",
            "strict-mode copy-on-write publishes the new block pointers one "
            "block at a time for unaligned writes, exposing partial data",
            fuzzer_only=True,
            min_replay_writes=1,
        ),
        BugSpec(
            21,
            ("splitfs",),
            "Operation is not synchronous",
            ("all-metadata",),
            "logic",
            "the metadata op-log entry is built and flushed but the fence is "
            "deferred to the next operation",
            needs_mid_syscall=False,
        ),
        BugSpec(
            22,
            ("splitfs",),
            "File data lost",
            ("write", "pwrite"),
            "logic",
            "staged data is relinked into the file before the op-log commit "
            "record is persistent; a crash loses the log entry and the data",
        ),
        BugSpec(
            23,
            ("splitfs",),
            "File data lost",
            ("write", "pwrite"),
            "logic",
            "op-log replay computes the entry checksum over the padded length "
            "rather than the recorded length and discards valid entries",
            fuzzer_only=True,
            needs_mid_syscall=False,
        ),
        BugSpec(
            24,
            ("splitfs",),
            "Operation is not synchronous",
            ("all",),
            "logic",
            "the op-log commit record is written with a cached store; the "
            "fence executes but nothing was flushed",
            needs_mid_syscall=False,
        ),
        BugSpec(
            25,
            ("splitfs",),
            "Rename atomicity broken (old file still present)",
            ("rename",),
            "logic",
            "rename is executed as logged-link-new then unlogged-unlink-old; "
            "a crash between the two leaves both names",
        ),
    ]
}

ALL_BUG_IDS: FrozenSet[int] = frozenset(BUG_REGISTRY)


def bugs_for_fs(fs_name: str) -> List[BugSpec]:
    """All catalogue bugs present in the named file system."""
    return [spec for spec in BUG_REGISTRY.values() if fs_name in spec.filesystems]


@dataclass
class BugConfig:
    """Which catalogue bugs are compiled into a file-system instance."""

    enabled: FrozenSet[int] = field(default_factory=frozenset)

    @classmethod
    def buggy(cls, fs_name: str | None = None) -> "BugConfig":
        """All bugs on (optionally restricted to one file system's bugs)."""
        if fs_name is None:
            return cls(ALL_BUG_IDS)
        return cls(frozenset(spec.bug_id for spec in bugs_for_fs(fs_name)))

    @classmethod
    def fixed(cls) -> "BugConfig":
        """All bugs fixed."""
        return cls(frozenset())

    @classmethod
    def only(cls, *bug_ids: int) -> "BugConfig":
        """Exactly the given bugs enabled."""
        unknown = set(bug_ids) - ALL_BUG_IDS
        if unknown:
            raise ValueError(f"unknown bug ids: {sorted(unknown)}")
        return cls(frozenset(bug_ids))

    def without(self, *bug_ids: int) -> "BugConfig":
        """Copy with the given bugs fixed."""
        return BugConfig(self.enabled - set(bug_ids))

    def with_bugs(self, *bug_ids: int) -> "BugConfig":
        """Copy with the given bugs additionally enabled."""
        unknown = set(bug_ids) - ALL_BUG_IDS
        if unknown:
            raise ValueError(f"unknown bug ids: {sorted(unknown)}")
        return BugConfig(self.enabled | set(bug_ids))

    def has(self, bug_id: int) -> bool:
        return bug_id in self.enabled


def iter_specs(bug_ids: Iterable[int]) -> List[BugSpec]:
    return [BUG_REGISTRY[b] for b in sorted(bug_ids)]
