"""ext4-DAX / XFS-DAX-like weak-guarantee journaling file systems."""

from repro.fs.ext4dax.fs import Ext4DaxFS, Ext4DaxGeometry, XfsDaxFS

__all__ = ["Ext4DaxFS", "XfsDaxFS", "Ext4DaxGeometry"]
