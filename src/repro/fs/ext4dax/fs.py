"""ext4-DAX-like weak-guarantee journaling PM file system.

Unlike the PM-native file systems, ext4-DAX retains the traditional Linux
crash-consistency model: operations mutate volatile (DRAM) state — a
metadata cache and a page cache — and nothing is guaranteed durable until an
fsync-family call commits the jbd2-style redo journal.  Chipmunk therefore
only places crash points after fsync/fdatasync/sync when testing it
(paper section 3.3).

Simplifications (documented in DESIGN.md):

* ordered-mode writeback is global — every fsync writes back *all* dirty
  data pages before committing metadata, so a post-sync crash state is the
  complete oracle state.  This is a strictly-stronger, still-correct variant
  of ext4's ordered mode that keeps the weak-FS checker simple.
* xattrs are supported (the paper's ext4-DAX/XFS-DAX tests exercise
  setxattr/removexattr); they are stored inline in a per-inode DRAM map and
  serialized into dedicated xattr blocks at commit.

The paper found **zero** crash-consistency bugs in ext4-DAX and XFS-DAX
(attributed to the maturity of the shared base code); this implementation is
correspondingly bug-free by construction, and the Table-1 bench asserts that
Chipmunk reports nothing for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fs.bugs import BugConfig
from repro.fs.common.alloc import BlockAllocator, SlotAllocator
from repro.fs.common.layout import (
    Region,
    decode_name,
    encode_name,
    pad_to,
    read_u16,
    read_u32,
    read_u64,
    u16,
    u32,
    u64,
)
from repro.pm.device import PMDevice
from repro.pm.persistence import PersistenceOps, persistence_function
from repro.vfs.errors import (
    EEXIST,
    EFBIG,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOSPC,
    ENOTDIR,
    ENOTEMPTY,
    FsError,
)
from repro.vfs.interface import FileSystem, MountError
from repro.vfs.path import is_ancestor, normalize, split_parent, split_path
from repro.vfs.types import FileType, Stat

SB_MAGIC = 0x45583444  # "EX4D"
ROOT_INO = 0

INODE_SLOT_SIZE = 64
DENTRY_SIZE = 64
NAME_FIELD = 40
N_DIRECT = 10
XATTR_ENTRY = 64

FTYPE_REG = 1
FTYPE_DIR = 2

# Journal header and record framing.
JH_COMMIT = 0
JH_NRECORDS = 4  # u32
JOURNAL_HEADER = 64
REC_HDR = 16  # addr u64, len u16, pad


@dataclass(frozen=True)
class Ext4DaxGeometry:
    """Layout: superblock | journal | inode table | xattr area | bitmap | data.

    ``origin`` shifts the whole layout so the file system can live in a
    sub-region of a shared device — that is how SplitFS embeds its kernel
    component.  Block numbers are absolute device block numbers.
    """

    device_size: int = 512 * 1024
    block_size: int = 512
    inode_blocks: int = 4
    journal_blocks: int = 16
    xattr_blocks: int = 2
    origin: int = 0

    @property
    def n_blocks(self) -> int:
        """One past the last block of this file system (absolute)."""
        return (self.origin + self.device_size) // self.block_size

    @property
    def journal(self) -> Region:
        return Region(self.origin + self.block_size, self.journal_blocks * self.block_size)

    @property
    def inode_table(self) -> Region:
        return Region(self.journal.end, self.inode_blocks * self.block_size)

    @property
    def n_inodes(self) -> int:
        return self.inode_table.size // INODE_SLOT_SIZE

    @property
    def xattr_area(self) -> Region:
        return Region(self.inode_table.end, self.xattr_blocks * self.block_size)

    @property
    def bitmap(self) -> Region:
        return Region(self.xattr_area.end, self.block_size)

    @property
    def first_data_block(self) -> int:
        return self.bitmap.end // self.block_size

    @property
    def n_data_blocks(self) -> int:
        return self.n_blocks - self.first_data_block

    @property
    def max_file_size(self) -> int:
        return N_DIRECT * self.block_size

    def block_addr(self, block: int) -> int:
        return block * self.block_size

    def inode_addr(self, ino: int) -> int:
        return self.inode_table.slot(ino, INODE_SLOT_SIZE)


def pack_superblock(geom: Ext4DaxGeometry) -> bytes:
    body = (
        u32(SB_MAGIC)
        + u32(1)
        + u64(geom.device_size)
        + u32(geom.block_size)
        + u32(geom.inode_blocks)
        + u32(geom.journal_blocks)
        + u32(geom.xattr_blocks)
    )
    return pad_to(body, 64)


def unpack_superblock(buf: bytes) -> Ext4DaxGeometry:
    if read_u32(buf, 0) != SB_MAGIC:
        raise ValueError("bad ext4-DAX superblock magic")
    return Ext4DaxGeometry(
        device_size=read_u64(buf, 8),
        block_size=read_u32(buf, 16),
        inode_blocks=read_u32(buf, 20),
        journal_blocks=read_u32(buf, 24),
        xattr_blocks=read_u32(buf, 28),
    )


def layout_regions(geom: Ext4DaxGeometry, prefix: str = ""):
    """Named forensic regions of an ext4-DAX geometry.

    Honors ``origin``, so SplitFS can annotate its embedded kernel
    component with a ``kernel.`` prefix from the same definition.
    """
    from repro.fs.common.layout import NamedRegion

    data_start = geom.first_data_block * geom.block_size
    data_end = geom.origin + geom.device_size
    return (
        NamedRegion(f"{prefix}superblock", Region(geom.origin, geom.block_size)),
        NamedRegion(f"{prefix}journal", geom.journal),
        NamedRegion(f"{prefix}inode_table", geom.inode_table,
                    slot_size=INODE_SLOT_SIZE),
        NamedRegion(f"{prefix}xattr_area", geom.xattr_area,
                    slot_size=XATTR_ENTRY),
        NamedRegion(f"{prefix}bitmap", geom.bitmap),
        NamedRegion(f"{prefix}data", Region(data_start, data_end - data_start),
                    slot_size=geom.block_size),
    )


@dataclass
class DaxInode:
    """Volatile (authoritative between commits) inode state."""

    ino: int
    ftype: int
    mode: int
    nlink: int
    size: int = 0
    ptrs: List[int] = field(default_factory=lambda: [0] * N_DIRECT)
    xattrs: Dict[str, bytes] = field(default_factory=dict)


class Ext4Persistence(PersistenceOps):
    """ext4-DAX persistence functions (used only by journal/writeback code)."""

    persistence_function_names = (
        "dax_memcpy_nt",
        "dax_memset_nt",
        "dax_flush_buffer",
        "dax_fence",
    )

    @persistence_function("nt_store", addr_arg=0, data_arg=1)
    def dax_memcpy_nt(self, addr: int, data: bytes) -> None:
        PersistenceOps.memcpy_nt(self, addr, data)

    @persistence_function("nt_store", addr_arg=0, length_arg=2)
    def dax_memset_nt(self, addr: int, value: int, length: int) -> None:
        PersistenceOps.memset_nt(self, addr, value, length)

    @persistence_function("flush", addr_arg=0, length_arg=1)
    def dax_flush_buffer(self, addr: int, length: int) -> None:
        PersistenceOps.flush_range(self, addr, length)

    @persistence_function("fence")
    def dax_fence(self) -> None:
        PersistenceOps.sfence(self)


class Ext4DaxFS(FileSystem):
    """The ext4-DAX-like file system (see module docstring)."""

    name = "ext4-dax"
    strong_guarantees = False
    atomic_data_writes = False
    supports_xattr = True

    ops_class = Ext4Persistence
    geometry_class = Ext4DaxGeometry

    def __init__(
        self,
        device: PMDevice,
        ops: PersistenceOps,
        geometry: Ext4DaxGeometry,
        bugs: Optional[BugConfig] = None,
    ) -> None:
        super().__init__(device, ops)
        self.geom = geometry
        self.bugcfg = bugs if bugs is not None else BugConfig.fixed()
        self.inodes: Dict[int, DaxInode] = {}
        self.children: Dict[int, Dict[str, int]] = {}
        #: (ino, file block) -> full-block dirty page
        self.dirty_pages: Dict[Tuple[int, int], bytes] = {}
        self.dirty_meta = False
        self.alloc = BlockAllocator(geometry.first_data_block, geometry.n_data_blocks)
        self.ialloc = SlotAllocator(geometry.n_inodes, reserved=[ROOT_INO])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def mkfs(cls, device: PMDevice, geometry=None, bugs=None, **kwargs) -> "Ext4DaxFS":
        geom = geometry or cls.geometry_class(device_size=device.size)
        if geom.origin + geom.device_size > device.size:
            raise ValueError("geometry does not fit the device")
        fs = cls(device, cls.ops_class(device), geom, bugs, **kwargs)
        fs._format()
        return fs

    @classmethod
    def layout_map(cls, image: bytes):
        from repro.fs.common.layout import LayoutMap, single_region_map

        try:
            geom = unpack_superblock(bytes(image[:64]))
        except Exception:  # torn superblock on a crash image
            return single_region_map(len(image))
        if type(geom) is not cls.geometry_class:
            geom = cls.geometry_class(
                device_size=geom.device_size,
                block_size=geom.block_size,
                inode_blocks=geom.inode_blocks,
                journal_blocks=geom.journal_blocks,
                xattr_blocks=geom.xattr_blocks,
            )
        return LayoutMap(layout_regions(geom))

    @classmethod
    def mechanism_hints(cls):
        """ext4-DAX/XFS-DAX persistence mechanisms, in ``layout_map()``
        terms.

        jbd2-style redo journaling: transaction blocks then a commit
        record, checkpointed in place after commit.  Both DAX systems run
        under fsync crash points (weak guarantees), so — as for SplitFS —
        the hints feed recognition analytics rather than fence-epoch
        planning.
        """
        from repro.mech.recognize import MechanismHints

        return MechanismHints(journal_regions=("journal",))

    @classmethod
    def mount(cls, device: PMDevice, bugs=None, origin: int = 0, **kwargs) -> "Ext4DaxFS":
        try:
            geom = unpack_superblock(device.read(origin, 64))
        except ValueError as exc:
            raise MountError(str(exc)) from exc
        if type(geom) is not cls.geometry_class or origin:
            geom = cls.geometry_class(
                device_size=geom.device_size,
                block_size=geom.block_size,
                inode_blocks=geom.inode_blocks,
                journal_blocks=geom.journal_blocks,
                xattr_blocks=geom.xattr_blocks,
                origin=origin,
            )
        fs = cls(device, cls.ops_class(device), geom, bugs, **kwargs)
        fs._recover()
        return fs

    def _format(self) -> None:
        geom = self.geom
        meta_end = geom.first_data_block * geom.block_size
        self.ops.dax_memset_nt(geom.origin, 0, meta_end - geom.origin)
        self.ops.dax_memcpy_nt(geom.origin, pack_superblock(geom))
        self.inodes[ROOT_INO] = DaxInode(ROOT_INO, FTYPE_DIR, 0o755, 2)
        self.children[ROOT_INO] = {}
        self.dirty_meta = True
        self._commit()

    def _recover(self) -> None:
        self._replay_journal()
        geom = self.geom
        bitmap = self.ops.read_pm(geom.bitmap.offset, geom.bitmap.size)
        for block in range(geom.first_data_block, geom.n_blocks):
            if bitmap[block // 8] & (1 << (block % 8)):
                self.alloc.mark_used(block)
        for ino in range(geom.n_inodes):
            buf = self.ops.read_pm(geom.inode_addr(ino), INODE_SLOT_SIZE)
            if buf[0] != 1:
                continue
            di = DaxInode(
                ino=ino,
                ftype=buf[1],
                mode=read_u16(buf, 2),
                nlink=read_u32(buf, 4),
                size=read_u64(buf, 8),
                ptrs=[read_u32(buf, 16 + 4 * i) for i in range(N_DIRECT)],
            )
            if di.ftype not in (FTYPE_REG, FTYPE_DIR):
                raise MountError(f"inode {ino}: invalid file type {di.ftype}")
            self.inodes[ino] = di
            self.ialloc.mark_used(ino)
        root = self.inodes.get(ROOT_INO)
        if root is None or root.ftype != FTYPE_DIR:
            raise MountError("root inode missing or not a directory")
        for ino, di in self.inodes.items():
            if di.ftype == FTYPE_DIR:
                self.children[ino] = self._read_dir_blocks(di)
        self._read_xattrs()

    def _read_dir_blocks(self, di: DaxInode) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ptr in di.ptrs:
            if not ptr:
                continue
            base = self.geom.block_addr(ptr)
            per_block = self.geom.block_size // DENTRY_SIZE
            for j in range(per_block):
                buf = self.ops.read_pm(base + j * DENTRY_SIZE, DENTRY_SIZE)
                if buf[0] == 1:
                    out[decode_name(buf[8 : 8 + NAME_FIELD])] = read_u32(buf, 4)
        return out

    def _read_xattrs(self) -> None:
        area = self.geom.xattr_area
        n_entries = area.size // XATTR_ENTRY
        for i in range(n_entries):
            buf = self.ops.read_pm(area.offset + i * XATTR_ENTRY, XATTR_ENTRY)
            if buf[0] != 1:
                continue
            ino = read_u32(buf, 4)
            name = decode_name(buf[8:24])
            vlen = read_u16(buf, 24)
            value = bytes(buf[26 : 26 + vlen])
            if ino in self.inodes:
                self.inodes[ino].xattrs[name] = value

    # ------------------------------------------------------------------
    # Journal commit (jbd2-style redo)
    # ------------------------------------------------------------------
    def _replay_journal(self) -> None:
        geom = self.geom
        header = self.ops.read_pm(geom.journal.offset, JOURNAL_HEADER)
        if header[JH_COMMIT] != 1:
            return
        n_records = read_u32(header, JH_NRECORDS)
        pos = geom.journal.offset + JOURNAL_HEADER
        for _ in range(n_records):
            rec_hdr = self.ops.read_pm(pos, REC_HDR)
            addr = read_u64(rec_hdr, 0)
            length = read_u16(rec_hdr, 8)
            if pos + REC_HDR + length > geom.journal.end or addr + length > geom.origin + geom.device_size:
                raise MountError("corrupt journal record during replay")
            data = self.ops.read_pm(pos + REC_HDR, length)
            self.ops.store_cached(addr, data)
            self.ops.dax_flush_buffer(addr, length)
            pos += REC_HDR + ((length + 15) // 16) * 16
        self.ops.dax_fence()
        self.ops.store_cached(geom.journal.offset, b"\x00")
        self.ops.dax_flush_buffer(geom.journal.offset, 1)
        self.ops.dax_fence()

    def _serialize_metadata(self) -> List[Tuple[int, bytes]]:
        """Build the on-PM metadata image from DRAM state, block by block.

        Records are block-granular so :meth:`_commit` can drop the ones that
        already match the persistent content — keeping every commit small
        enough for a single atomic journal transaction.
        """
        geom = self.geom
        records: List[Tuple[int, bytes]] = []
        # Directories: serialize children into their blocks, (re)allocating
        # dentry blocks as needed.
        for ino, di in self.inodes.items():
            if di.ftype != FTYPE_DIR:
                continue
            entries = sorted(self.children.get(ino, {}).items())
            per_block = geom.block_size // DENTRY_SIZE
            needed = max(1, (len(entries) + per_block - 1) // per_block)
            if needed > N_DIRECT:
                raise ENOSPC("directory too large")
            for bi in range(needed):
                if di.ptrs[bi] == 0:
                    di.ptrs[bi] = self.alloc.alloc()
            for bi in range(needed, N_DIRECT):
                if di.ptrs[bi]:
                    self.alloc.free(di.ptrs[bi])
                    di.ptrs[bi] = 0
            di.size = needed * geom.block_size
            for bi in range(needed):
                block = bytearray(geom.block_size)
                for j, (name, child) in enumerate(
                    entries[bi * per_block : (bi + 1) * per_block]
                ):
                    dentry = bytearray(DENTRY_SIZE)
                    dentry[0] = 1
                    dentry[4:8] = u32(child)
                    dentry[8 : 8 + NAME_FIELD] = encode_name(name, NAME_FIELD)
                    block[j * DENTRY_SIZE : (j + 1) * DENTRY_SIZE] = dentry
                records.append((geom.block_addr(di.ptrs[bi]), bytes(block)))
        # Inode table (one record per table block).
        table = bytearray(geom.inode_table.size)
        for ino, di in self.inodes.items():
            slot = bytearray(INODE_SLOT_SIZE)
            slot[0] = 1
            slot[1] = di.ftype
            slot[2:4] = u16(di.mode)
            slot[4:8] = u32(di.nlink)
            slot[8:16] = u64(di.size)
            for i, ptr in enumerate(di.ptrs):
                slot[16 + 4 * i : 20 + 4 * i] = u32(ptr)
            table[ino * INODE_SLOT_SIZE : (ino + 1) * INODE_SLOT_SIZE] = slot
        for off in range(0, geom.inode_table.size, geom.block_size):
            records.append(
                (geom.inode_table.offset + off, bytes(table[off : off + geom.block_size]))
            )
        # Xattr area.
        xattr = bytearray(geom.xattr_area.size)
        idx = 0
        for ino, di in self.inodes.items():
            for name, value in sorted(di.xattrs.items()):
                if idx >= geom.xattr_area.size // XATTR_ENTRY:
                    raise ENOSPC("xattr area full")
                entry = bytearray(XATTR_ENTRY)
                entry[0] = 1
                entry[4:8] = u32(ino)
                entry[8:24] = encode_name(name, 16)
                entry[24:26] = u16(len(value))
                entry[26 : 26 + len(value)] = value
                xattr[idx * XATTR_ENTRY : (idx + 1) * XATTR_ENTRY] = entry
                idx += 1
        for off in range(0, geom.xattr_area.size, geom.block_size):
            records.append(
                (geom.xattr_area.offset + off, bytes(xattr[off : off + geom.block_size]))
            )
        # Bitmap.
        bitmap = bytearray(geom.bitmap.size)
        for block in range(geom.first_data_block):
            bitmap[block // 8] |= 1 << (block % 8)
        for block in range(geom.first_data_block, geom.n_blocks):
            if not self.alloc.is_free(block):
                bitmap[block // 8] |= 1 << (block % 8)
        records.append((geom.bitmap.offset, bytes(bitmap)))
        return records

    def _writeback_data(self) -> None:
        """Ordered-mode data writeback: flush all dirty pages to their blocks."""
        if not self.dirty_pages:
            return
        for (ino, fblk), page in sorted(self.dirty_pages.items()):
            ptr = self.inodes[ino].ptrs[fblk]
            if ptr:
                self.ops.dax_memcpy_nt(self.geom.block_addr(ptr), page)
        self.ops.dax_fence()
        self.dirty_pages.clear()

    def _commit(self) -> None:
        """Write back data, then journal-commit and checkpoint all metadata.

        The whole commit is one journal transaction: records whose target
        blocks already hold the serialized content are dropped, so only the
        genuinely dirty blocks are journaled.  A commit larger than the
        journal raises ``ENOSPC`` — splitting it into separately committed
        batches would not be crash-atomic, which (while invisible to
        ext4-DAX's own fsync-only crash points) breaks the synchronous
        guarantees SplitFS layers on top of this file system.
        """
        self._writeback_data()
        if not self.dirty_meta:
            return
        geom = self.geom
        records = [
            (addr, data)
            for addr, data in self._serialize_metadata()
            if self.ops.read_pm(addr, len(data)) != data
        ]
        if not records:
            self.dirty_meta = False
            return
        capacity = geom.journal.size - JOURNAL_HEADER
        used = sum(REC_HDR + ((len(d) + 15) // 16) * 16 for _, d in records)
        if used > capacity:
            raise ENOSPC(
                f"metadata commit of {used} bytes exceeds the "
                f"{capacity}-byte journal"
            )
        self._commit_batch(records)
        self.dirty_meta = False

    def _commit_batch(self, records: List[Tuple[int, bytes]]) -> None:
        geom = self.geom
        pos = geom.journal.offset + JOURNAL_HEADER
        for addr, data in records:
            rec = u64(addr) + u16(len(data)) + b"\x00" * 6 + data
            padded = rec + b"\x00" * ((-len(rec)) % 16)
            self.ops.dax_memcpy_nt(pos, padded)
            pos += len(padded)
        self.ops.dax_fence()
        header = bytearray(8)
        header[JH_COMMIT] = 1
        header[JH_NRECORDS : JH_NRECORDS + 4] = u32(len(records))
        self.ops.store_cached(geom.journal.offset, bytes(header))
        self.ops.dax_flush_buffer(geom.journal.offset, 8)
        self.ops.dax_fence()
        # Checkpoint: apply in place.
        for addr, data in records:
            self.ops.store_cached(addr, data)
            self.ops.dax_flush_buffer(addr, len(data))
        self.ops.dax_fence()
        self.ops.store_cached(geom.journal.offset, b"\x00")
        self.ops.dax_flush_buffer(geom.journal.offset, 1)
        self.ops.dax_fence()

    # ------------------------------------------------------------------
    # fsync family — the only persistence points (weak guarantees)
    # ------------------------------------------------------------------
    def fsync(self, path: str) -> None:
        self._resolve(path)
        self.cov("fsync")
        self._commit()

    def fdatasync(self, path: str) -> None:
        self.fsync(path)

    def sync(self) -> None:
        self.cov("sync")
        self._commit()

    # ------------------------------------------------------------------
    # Path resolution (DRAM)
    # ------------------------------------------------------------------
    def _inode(self, ino: int) -> DaxInode:
        di = self.inodes.get(ino)
        if di is None:
            raise FsError(f"missing inode {ino}")
        return di

    def _resolve(self, path: str) -> DaxInode:
        di = self._inode(ROOT_INO)
        for part in split_path(path):
            if di.ftype != FTYPE_DIR:
                raise ENOTDIR(path)
            kids = self.children.get(di.ino, {})
            if part not in kids:
                raise ENOENT(path)
            di = self._inode(kids[part])
        return di

    def _resolve_parent(self, path: str) -> Tuple[DaxInode, str]:
        parent_path, name = split_parent(path)
        parent = self._resolve(parent_path)
        if parent.ftype != FTYPE_DIR:
            raise ENOTDIR(parent_path)
        if len(name.encode("utf-8")) >= NAME_FIELD:
            raise EINVAL(f"name too long: {name!r}")
        return parent, name

    # ------------------------------------------------------------------
    # Namespace operations (all DRAM + dirty marking)
    # ------------------------------------------------------------------
    def creat(self, path: str, mode: int = 0o644) -> None:
        parent, name = self._resolve_parent(path)
        if name in self.children[parent.ino]:
            raise EEXIST(path)
        self.cov("creat")
        ino = self.ialloc.alloc()
        self.inodes[ino] = DaxInode(ino, FTYPE_REG, mode, 1)
        self.children[parent.ino][name] = ino
        self.dirty_meta = True

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        parent, name = self._resolve_parent(path)
        if name in self.children[parent.ino]:
            raise EEXIST(path)
        self.cov("mkdir")
        ino = self.ialloc.alloc()
        self.inodes[ino] = DaxInode(ino, FTYPE_DIR, mode, 2)
        self.children[ino] = {}
        parent.nlink += 1
        self.children[parent.ino][name] = ino
        self.dirty_meta = True

    def rmdir(self, path: str) -> None:
        if normalize(path) == "/":
            raise EINVAL("cannot rmdir the root")
        parent, name = self._resolve_parent(path)
        kids = self.children[parent.ino]
        if name not in kids:
            raise ENOENT(path)
        target = self._inode(kids[name])
        if target.ftype != FTYPE_DIR:
            raise ENOTDIR(path)
        if self.children.get(target.ino):
            raise ENOTEMPTY(path)
        self.cov("rmdir")
        del kids[name]
        parent.nlink -= 1
        self._drop_inode(target)
        self.dirty_meta = True

    def link(self, oldpath: str, newpath: str) -> None:
        target = self._resolve(oldpath)
        if target.ftype == FTYPE_DIR:
            raise EISDIR(f"cannot hard-link a directory: {oldpath}")
        parent, name = self._resolve_parent(newpath)
        if name in self.children[parent.ino]:
            raise EEXIST(newpath)
        self.cov("link")
        self.children[parent.ino][name] = target.ino
        target.nlink += 1
        self.dirty_meta = True

    def unlink(self, path: str) -> None:
        parent, name = self._resolve_parent(path)
        kids = self.children[parent.ino]
        if name not in kids:
            raise ENOENT(path)
        target = self._inode(kids[name])
        if target.ftype == FTYPE_DIR:
            raise EISDIR(path)
        self.cov("unlink")
        del kids[name]
        target.nlink -= 1
        if target.nlink <= 0:
            self._drop_inode(target)
        self.dirty_meta = True

    def _drop_inode(self, di: DaxInode) -> None:
        for i, ptr in enumerate(di.ptrs):
            if ptr:
                self.alloc.free(ptr)
                di.ptrs[i] = 0
        for key in [k for k in self.dirty_pages if k[0] == di.ino]:
            del self.dirty_pages[key]
        self.children.pop(di.ino, None)
        del self.inodes[di.ino]
        self.ialloc.free(di.ino)

    def rename(self, oldpath: str, newpath: str) -> None:
        if normalize(oldpath) == normalize(newpath):
            self._resolve(oldpath)
            return
        src_parent, src_name = self._resolve_parent(oldpath)
        src_kids = self.children[src_parent.ino]
        if src_name not in src_kids:
            raise ENOENT(oldpath)
        moved = self._inode(src_kids[src_name])
        if moved.ftype == FTYPE_DIR and is_ancestor(oldpath, newpath):
            raise EINVAL("cannot move a directory into itself")
        dst_parent, dst_name = self._resolve_parent(newpath)
        dst_kids = self.children[dst_parent.ino]
        if dst_name in dst_kids:
            target = self._inode(dst_kids[dst_name])
            if target.ftype == FTYPE_DIR:
                if moved.ftype != FTYPE_DIR:
                    raise EISDIR(newpath)
                if self.children.get(target.ino):
                    raise ENOTEMPTY(newpath)
                dst_parent.nlink -= 1
                self._drop_inode(target)
            else:
                if moved.ftype == FTYPE_DIR:
                    raise ENOTDIR(newpath)
                target.nlink -= 1
                if target.nlink <= 0:
                    self._drop_inode(target)
        self.cov("rename")
        del src_kids[src_name]
        dst_kids[dst_name] = moved.ino
        if moved.ftype == FTYPE_DIR and src_parent.ino != dst_parent.ino:
            src_parent.nlink -= 1
            dst_parent.nlink += 1
        self.dirty_meta = True

    # ------------------------------------------------------------------
    # Data operations (page cache)
    # ------------------------------------------------------------------
    def _file(self, path: str) -> DaxInode:
        di = self._resolve(path)
        if di.ftype != FTYPE_REG:
            raise EISDIR(path)
        return di

    def _page(self, di: DaxInode, fblk: int) -> bytearray:
        key = (di.ino, fblk)
        if key in self.dirty_pages:
            return bytearray(self.dirty_pages[key])
        if di.ptrs[fblk]:
            return bytearray(self.ops.read_pm(self.geom.block_addr(di.ptrs[fblk]), self.geom.block_size))
        return bytearray(self.geom.block_size)

    def write(self, path: str, offset: int, data: bytes) -> int:
        di = self._file(path)
        if offset < 0:
            raise EINVAL("negative write offset")
        if not data:
            return 0
        end = offset + len(data)
        if end > self.geom.max_file_size:
            raise EFBIG(f"file would exceed {self.geom.max_file_size} bytes")
        self.cov("write")
        bs = self.geom.block_size
        for fblk in range(offset // bs, (end - 1) // bs + 1):
            if di.ptrs[fblk] == 0:
                di.ptrs[fblk] = self.alloc.alloc()
                self.dirty_meta = True
            page = self._page(di, fblk)
            lo = max(offset, fblk * bs)
            hi = min(end, (fblk + 1) * bs)
            page[lo - fblk * bs : hi - fblk * bs] = data[lo - offset : hi - offset]
            self.dirty_pages[(di.ino, fblk)] = bytes(page)
        if end > di.size:
            di.size = end
            self.dirty_meta = True
        return len(data)

    def read(self, path: str, offset: int, length: int) -> bytes:
        di = self._file(path)
        if offset < 0 or length < 0:
            raise EINVAL("negative read offset or length")
        end = min(offset + length, di.size)
        if offset >= end:
            return b""
        bs = self.geom.block_size
        out = bytearray()
        for fblk in range(offset // bs, (end - 1) // bs + 1):
            out.extend(self._page(di, fblk))
        base = (offset // bs) * bs
        return bytes(out[offset - base : end - base])

    def truncate(self, path: str, length: int) -> None:
        di = self._file(path)
        if length < 0:
            raise EINVAL("negative truncate length")
        if length > self.geom.max_file_size:
            raise EFBIG("truncate beyond maximum file size")
        if length == di.size:
            return
        self.cov("truncate")
        bs = self.geom.block_size
        if length < di.size:
            cutoff = (length + bs - 1) // bs
            for fblk in range(cutoff, N_DIRECT):
                if di.ptrs[fblk]:
                    self.alloc.free(di.ptrs[fblk])
                    di.ptrs[fblk] = 0
                self.dirty_pages.pop((di.ino, fblk), None)
            if length % bs:
                # Zero the truncated tail in the page cache so a later
                # extension reads zeros.
                tail = length // bs
                if di.ptrs[tail]:
                    page = self._page(di, tail)
                    page[length % bs :] = b"\x00" * (bs - length % bs)
                    self.dirty_pages[(di.ino, tail)] = bytes(page)
        di.size = length
        self.dirty_meta = True

    def fallocate(self, path: str, offset: int, length: int) -> None:
        di = self._file(path)
        if offset < 0 or length <= 0:
            raise EINVAL("fallocate needs offset >= 0 and length > 0")
        end = offset + length
        if end > self.geom.max_file_size:
            raise EFBIG("fallocate beyond maximum file size")
        self.cov("fallocate")
        bs = self.geom.block_size
        for fblk in range(offset // bs, (end - 1) // bs + 1):
            if di.ptrs[fblk] == 0:
                di.ptrs[fblk] = self.alloc.alloc()
                self.dirty_pages[(di.ino, fblk)] = bytes(bs)
        if end > di.size:
            di.size = end
        self.dirty_meta = True

    # ------------------------------------------------------------------
    # Extended attributes
    # ------------------------------------------------------------------
    def setxattr(self, path: str, name: str, value: bytes) -> None:
        di = self._resolve(path)
        if len(name.encode("utf-8")) >= 16 or len(value) > 32:
            raise EINVAL("xattr name/value too large")
        self.cov("setxattr")
        di.xattrs[name] = bytes(value)
        self.dirty_meta = True

    def removexattr(self, path: str, name: str) -> None:
        di = self._resolve(path)
        if name not in di.xattrs:
            raise ENOENT(f"no xattr {name!r} on {path}")
        self.cov("removexattr")
        del di.xattrs[name]
        self.dirty_meta = True

    def getxattr(self, path: str, name: str) -> bytes:
        di = self._resolve(path)
        if name not in di.xattrs:
            raise ENOENT(f"no xattr {name!r} on {path}")
        return di.xattrs[name]

    def listxattr(self, path: str) -> List[str]:
        return sorted(self._resolve(path).xattrs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stat(self, path: str) -> Stat:
        di = self._resolve(path)
        ftype = FileType.DIRECTORY if di.ftype == FTYPE_DIR else FileType.REGULAR
        return Stat(di.ino, ftype, di.size, di.nlink, di.mode)

    def readdir(self, path: str) -> List[str]:
        di = self._resolve(path)
        if di.ftype != FTYPE_DIR:
            raise ENOTDIR(path)
        return sorted(self.children.get(di.ino, {}))


@dataclass(frozen=True)
class XfsGeometry(Ext4DaxGeometry):
    """XFS-DAX variant: a larger journal, otherwise the same mature design."""

    journal_blocks: int = 24


class XfsDaxFS(Ext4DaxFS):
    """XFS-DAX-like file system.

    The paper notes that ext4-DAX and XFS-DAX share the vast majority of
    their code with their mature disk-based versions; we model XFS-DAX as a
    configuration variant (bigger journal, same weak-guarantee semantics)
    and, like the paper, find no crash-consistency bugs in it.
    """

    name = "xfs-dax"
    geometry_class = XfsGeometry
