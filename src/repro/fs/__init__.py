"""Simulated persistent-memory file systems.

Six file systems mirroring the paper's test targets (section 4.1):

* :mod:`repro.fs.nova` — log-structured, per-inode logs + circular journal.
* :mod:`repro.fs.novafortis` — NOVA plus inode replicas and checksums.
* :mod:`repro.fs.pmfs` — in-place updates, undo journal, truncate list.
* :mod:`repro.fs.winefs` — PMFS-family with per-CPU journals and strict mode.
* :mod:`repro.fs.splitfs` — user-space op-log/staging over a kernel FS.
* :mod:`repro.fs.ext4dax` — weak-guarantee journaling FS (ext4-DAX/XFS-DAX).

Each Table-1 bug is implemented as an organic code path guarded by
:class:`repro.fs.bugs.BugConfig`, so the buggy and fixed variants of every
file system are both available.
"""

from repro.fs.bugs import ALL_BUG_IDS, BugConfig, BugSpec, BUG_REGISTRY, bugs_for_fs
from repro.fs.registry import FS_CLASSES, fs_class, make_fs

__all__ = [
    "BugConfig",
    "BugSpec",
    "BUG_REGISTRY",
    "ALL_BUG_IDS",
    "bugs_for_fs",
    "FS_CLASSES",
    "fs_class",
    "make_fs",
]
