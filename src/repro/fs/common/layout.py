"""On-PM layout helpers: little-endian integer codecs, regions, checksums."""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Tuple


def u16(value: int) -> bytes:
    return struct.pack("<H", value)


def u32(value: int) -> bytes:
    return struct.pack("<I", value)


def u64(value: int) -> bytes:
    return struct.pack("<Q", value)


def read_u16(buf: bytes, offset: int = 0) -> int:
    return struct.unpack_from("<H", buf, offset)[0]


def read_u32(buf: bytes, offset: int = 0) -> int:
    return struct.unpack_from("<I", buf, offset)[0]


def read_u64(buf: bytes, offset: int = 0) -> int:
    return struct.unpack_from("<Q", buf, offset)[0]


def crc32(data: bytes) -> int:
    """CRC32 checksum used by the Fortis-style resilience code."""
    return zlib.crc32(data) & 0xFFFFFFFF


def pad_to(data: bytes, size: int) -> bytes:
    """Zero-pad ``data`` to exactly ``size`` bytes."""
    if len(data) > size:
        raise ValueError(f"data of {len(data)} bytes does not fit in {size}")
    return data + b"\x00" * (size - len(data))


def encode_name(name: str, size: int) -> bytes:
    """Encode a file name into a fixed-size, NUL-padded field."""
    raw = name.encode("utf-8")
    if len(raw) >= size:
        raise ValueError(f"name too long for {size}-byte field: {name!r}")
    return pad_to(raw, size)


def decode_name(field: bytes) -> str:
    """Decode a NUL-padded name field."""
    return field.split(b"\x00", 1)[0].decode("utf-8", errors="replace")


@dataclass(frozen=True)
class Region:
    """A contiguous byte region of the PM device."""

    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.offset <= addr and addr + length <= self.end

    def at(self, rel: int) -> int:
        """Absolute address of relative offset ``rel`` within the region."""
        if rel < 0 or rel > self.size:
            raise ValueError(f"relative offset {rel} outside region of size {self.size}")
        return self.offset + rel

    def slot(self, index: int, slot_size: int) -> int:
        """Absolute address of fixed-size slot ``index``."""
        addr = self.offset + index * slot_size
        if addr + slot_size > self.end:
            raise ValueError(f"slot {index} (x{slot_size}) outside region")
        return addr

    @property
    def nslots(self) -> int:
        raise AttributeError("use slot_count(slot_size)")

    def slot_count(self, slot_size: int) -> int:
        return self.size // slot_size


@dataclass(frozen=True)
class NamedRegion:
    """A layout region with a human-readable name (forensics annotation).

    ``slot_size`` > 0 marks a slotted region (inode table, log pages):
    addresses inside it annotate as ``name[slot]+offset``.
    """

    name: str
    region: Region
    slot_size: int = 0


@dataclass(frozen=True)
class LayoutMap:
    """Named-region map of a device image.

    Built by each file system's ``layout_map`` classmethod; the forensics
    layer uses it to translate raw byte addresses in timelines and image
    diffs into layout terms a developer recognizes (``inode_table[3]+0x40``
    instead of ``0x5c0``).
    """

    regions: Tuple["NamedRegion", ...]

    def locate(self, addr: int) -> str:
        """Annotate one byte address with its region (and slot, if any)."""
        for named in self.regions:
            if named.region.contains(addr):
                rel = addr - named.region.offset
                if named.slot_size > 0:
                    slot, off = divmod(rel, named.slot_size)
                    return f"{named.name}[{slot}]+{off:#x}"
                return f"{named.name}+{rel:#x}"
        return f"<unmapped>+{addr:#x}"

    def region_of(self, addr: int) -> str:
        """The bare region name covering ``addr`` (no slot index).

        Slot and offset are deliberately dropped: provenance-guided triage
        keys on *which structure* a store touched, and slot indices would
        split one bug across workloads that happen to allocate different
        inodes.  Unmapped addresses all collapse to ``"<unmapped>"``.
        """
        for named in self.regions:
            if named.region.contains(addr):
                return named.name
        return "<unmapped>"

    def locate_range(self, addr: int, length: int) -> str:
        """Annotate a byte range; spans crossing regions name both ends."""
        start = self.locate(addr)
        if length <= 1:
            return start
        end = self.locate(addr + length - 1)
        if start == end:
            return start
        return f"{start}..{end}"


def single_region_map(size: int, name: str = "device") -> LayoutMap:
    """The fallback layout: one anonymous region covering the image."""
    return LayoutMap((NamedRegion(name, Region(0, size)),))
