"""Building blocks shared by the simulated file systems."""

from repro.fs.common.layout import (
    Region,
    crc32,
    read_u16,
    read_u32,
    read_u64,
    u16,
    u32,
    u64,
)
from repro.fs.common.alloc import AllocatorError, BlockAllocator

__all__ = [
    "Region",
    "u16",
    "u32",
    "u64",
    "read_u16",
    "read_u32",
    "read_u64",
    "crc32",
    "BlockAllocator",
    "AllocatorError",
]
