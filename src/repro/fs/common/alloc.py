"""Block allocators.

PM file systems keep their free lists in DRAM for performance and rebuild
them at mount (paper Observation 3) — exactly what :class:`BlockAllocator`
models.  The allocator itself is volatile; persistence of allocation state is
the file system's job (bitmaps for PMFS-family, log rebuild for NOVA-family).

The free set is stored as sorted disjoint ``[start, end)`` intervals
(:class:`_IntervalSet`), not a materialized ``set`` of block numbers:
construction is O(1) regardless of device size, membership is a bisect, and
lowest-address-first allocation peels the head interval.  A freshly mounted
16 MiB device used to pay ~32k set inserts plus an O(n) ``min`` per
allocation — with mounts happening once per *crash state*, that made the
checker's hot loop scale with device size instead of with the delta.  The
interval form keeps every observable semantic of the set form: ascending
allocation order, first-fit contiguous runs, and fatal double frees.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Optional

from repro.vfs.errors import ENOSPC


class AllocatorError(Exception):
    """Internal allocator invariant violation (e.g. double free).

    NOVA-Fortis bug 11 manifests as this assertion firing during mount-time
    recovery ("FS attempts to deallocate free blocks").
    """


class _IntervalSet:
    """Sorted disjoint half-open integer intervals with set-like operations.

    Every operation the allocators need is O(log n + k) in the number of
    intervals (k for the list shuffle), and the interval count stays small:
    sequential allocation and mount-time rebuilds only ever split or shrink
    the head, and frees merge back into their neighbours.
    """

    __slots__ = ("_starts", "_ends", "_count")

    def __init__(self, start: int, stop: int) -> None:
        if stop > start:
            self._starts = [start]
            self._ends = [stop]
            self._count = stop - start
        else:
            self._starts = []
            self._ends = []
            self._count = 0

    def __len__(self) -> int:
        return self._count

    def __contains__(self, value: int) -> bool:
        i = bisect_right(self._starts, value) - 1
        return i >= 0 and value < self._ends[i]

    def min(self) -> int:
        """Smallest member; the caller guarantees non-emptiness."""
        return self._starts[0]

    def remove(self, value: int) -> None:
        """Remove one member (must be present)."""
        i = bisect_right(self._starts, value) - 1
        start, end = self._starts[i], self._ends[i]
        if value == start:
            if start + 1 == end:
                del self._starts[i]
                del self._ends[i]
            else:
                self._starts[i] = start + 1
        elif value == end - 1:
            self._ends[i] = end - 1
        else:
            self._ends[i] = value
            self._starts.insert(i + 1, value + 1)
            self._ends.insert(i + 1, end)
        self._count -= 1

    def remove_run(self, start: int, count: int) -> None:
        """Remove ``[start, start+count)``; must lie within one interval."""
        i = bisect_right(self._starts, start) - 1
        lo, hi = self._starts[i], self._ends[i]
        end = start + count
        if start == lo and end == hi:
            del self._starts[i]
            del self._ends[i]
        elif start == lo:
            self._starts[i] = end
        elif end == hi:
            self._ends[i] = start
        else:
            self._ends[i] = start
            self._starts.insert(i + 1, end)
            self._ends.insert(i + 1, hi)
        self._count -= count

    def add(self, value: int) -> None:
        """Insert one member (must be absent), merging with neighbours."""
        i = bisect_right(self._starts, value)
        merge_left = i > 0 and self._ends[i - 1] == value
        merge_right = i < len(self._starts) and self._starts[i] == value + 1
        if merge_left and merge_right:
            self._ends[i - 1] = self._ends[i]
            del self._starts[i]
            del self._ends[i]
        elif merge_left:
            self._ends[i - 1] = value + 1
        elif merge_right:
            self._starts[i] = value
        else:
            self._starts.insert(i, value)
            self._ends.insert(i, value + 1)
        self._count += 1

    def first_run(self, count: int) -> Optional[int]:
        """Start of the first (lowest-address) run of ``count`` members.

        Runs of consecutive members are exactly the intervals, so this is
        the same answer a scan over the sorted member list would give.
        """
        for start, end in zip(self._starts, self._ends):
            if end - start >= count:
                return start
        return None


class BlockAllocator:
    """Volatile free-block tracker over a contiguous block range."""

    def __init__(self, first_block: int, n_blocks: int) -> None:
        self.first_block = first_block
        self.n_blocks = n_blocks
        self._free = _IntervalSet(first_block, first_block + n_blocks)

    # ------------------------------------------------------------------
    def mark_used(self, block: int) -> None:
        """Record that ``block`` is in use (mount-time rebuild)."""
        self._check(block)
        if block in self._free:
            self._free.remove(block)

    def mark_used_many(self, blocks: Iterable[int]) -> None:
        for block in blocks:
            self.mark_used(block)

    def alloc(self) -> int:
        """Allocate one block (lowest-address-first for determinism)."""
        if not len(self._free):
            raise ENOSPC("out of data blocks")
        block = self._free.min()
        self._free.remove(block)
        return block

    def alloc_contiguous(self, count: int) -> List[int]:
        """Allocate ``count`` consecutive blocks.

        Falls back to raising :class:`ENOSPC` when no contiguous run exists;
        callers that can split do so themselves.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        start = self._free.first_run(count)
        if start is None:
            raise ENOSPC(f"no contiguous run of {count} blocks")
        self._free.remove_run(start, count)
        return list(range(start, start + count))

    def alloc_many(self, count: int) -> List[int]:
        """Allocate ``count`` blocks, contiguous when possible."""
        try:
            return self.alloc_contiguous(count)
        except ENOSPC:
            if len(self._free) < count:
                raise
            return [self.alloc() for _ in range(count)]

    def free(self, block: int) -> None:
        """Return ``block`` to the free set; double frees are fatal."""
        self._check(block)
        if block in self._free:
            raise AllocatorError(f"double free of block {block}")
        self._free.add(block)

    def free_many(self, blocks: Iterable[int]) -> None:
        for block in blocks:
            self.free(block)

    def is_free(self, block: int) -> bool:
        self._check(block)
        return block in self._free

    @property
    def free_count(self) -> int:
        return len(self._free)

    def _check(self, block: int) -> None:
        if not (self.first_block <= block < self.first_block + self.n_blocks):
            raise AllocatorError(
                f"block {block} outside managed range "
                f"[{self.first_block}, {self.first_block + self.n_blocks})"
            )


class SlotAllocator:
    """Volatile allocator for fixed table slots (e.g. inode numbers)."""

    def __init__(self, n_slots: int, reserved: Optional[Iterable[int]] = None) -> None:
        self.n_slots = n_slots
        self._free = _IntervalSet(0, n_slots)
        for slot in reserved or ():
            if slot in self._free:
                self._free.remove(slot)

    def alloc(self) -> int:
        if not len(self._free):
            raise ENOSPC("out of inodes")
        slot = self._free.min()
        self._free.remove(slot)
        return slot

    def mark_used(self, slot: int) -> None:
        if slot in self._free:
            self._free.remove(slot)

    def free(self, slot: int) -> None:
        if slot in self._free:
            raise AllocatorError(f"double free of slot {slot}")
        if not (0 <= slot < self.n_slots):
            raise AllocatorError(f"slot {slot} out of range")
        self._free.add(slot)

    @property
    def free_count(self) -> int:
        return len(self._free)
