"""Block allocators.

PM file systems keep their free lists in DRAM for performance and rebuild
them at mount (paper Observation 3) — exactly what :class:`BlockAllocator`
models.  The allocator itself is volatile; persistence of allocation state is
the file system's job (bitmaps for PMFS-family, log rebuild for NOVA-family).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.vfs.errors import ENOSPC


class AllocatorError(Exception):
    """Internal allocator invariant violation (e.g. double free).

    NOVA-Fortis bug 11 manifests as this assertion firing during mount-time
    recovery ("FS attempts to deallocate free blocks").
    """


class BlockAllocator:
    """Volatile free-block tracker over a contiguous block range."""

    def __init__(self, first_block: int, n_blocks: int) -> None:
        self.first_block = first_block
        self.n_blocks = n_blocks
        self._free: Set[int] = set(range(first_block, first_block + n_blocks))

    # ------------------------------------------------------------------
    def mark_used(self, block: int) -> None:
        """Record that ``block`` is in use (mount-time rebuild)."""
        self._check(block)
        self._free.discard(block)

    def mark_used_many(self, blocks: Iterable[int]) -> None:
        for block in blocks:
            self.mark_used(block)

    def alloc(self) -> int:
        """Allocate one block (lowest-address-first for determinism)."""
        if not self._free:
            raise ENOSPC("out of data blocks")
        block = min(self._free)
        self._free.remove(block)
        return block

    def alloc_contiguous(self, count: int) -> List[int]:
        """Allocate ``count`` consecutive blocks.

        Falls back to raising :class:`ENOSPC` when no contiguous run exists;
        callers that can split do so themselves.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        run: List[int] = []
        for block in sorted(self._free):
            if run and block != run[-1] + 1:
                run = []
            run.append(block)
            if len(run) == count:
                for b in run:
                    self._free.remove(b)
                return run
        raise ENOSPC(f"no contiguous run of {count} blocks")

    def alloc_many(self, count: int) -> List[int]:
        """Allocate ``count`` blocks, contiguous when possible."""
        try:
            return self.alloc_contiguous(count)
        except ENOSPC:
            if len(self._free) < count:
                raise
            return [self.alloc() for _ in range(count)]

    def free(self, block: int) -> None:
        """Return ``block`` to the free set; double frees are fatal."""
        self._check(block)
        if block in self._free:
            raise AllocatorError(f"double free of block {block}")
        self._free.add(block)

    def free_many(self, blocks: Iterable[int]) -> None:
        for block in blocks:
            self.free(block)

    def is_free(self, block: int) -> bool:
        self._check(block)
        return block in self._free

    @property
    def free_count(self) -> int:
        return len(self._free)

    def _check(self, block: int) -> None:
        if not (self.first_block <= block < self.first_block + self.n_blocks):
            raise AllocatorError(
                f"block {block} outside managed range "
                f"[{self.first_block}, {self.first_block + self.n_blocks})"
            )


class SlotAllocator:
    """Volatile allocator for fixed table slots (e.g. inode numbers)."""

    def __init__(self, n_slots: int, reserved: Optional[Iterable[int]] = None) -> None:
        self.n_slots = n_slots
        self._free: Set[int] = set(range(n_slots))
        for slot in reserved or ():
            self._free.discard(slot)

    def alloc(self) -> int:
        if not self._free:
            raise ENOSPC("out of inodes")
        slot = min(self._free)
        self._free.remove(slot)
        return slot

    def mark_used(self, slot: int) -> None:
        self._free.discard(slot)

    def free(self, slot: int) -> None:
        if slot in self._free:
            raise AllocatorError(f"double free of slot {slot}")
        if not (0 <= slot < self.n_slots):
            raise AllocatorError(f"slot {slot} out of range")
        self._free.add(slot)

    @property
    def free_count(self) -> int:
        return len(self._free)
