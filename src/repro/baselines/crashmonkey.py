"""CrashMonkey-style baseline tester.

CrashMonkey (Mohan et al.) tests traditional file systems by recording
block-layer writes and injecting crashes **only after fsync-related
syscalls** — "they do not test what happens when you crash in the middle of
a system call" (paper section 1).  The real tool cannot intercept PM stores
at all; this baseline gives it the benefit of Chipmunk's PM write log and
keeps only its *crash-point policy*, so experiments isolate exactly the
strategy difference Observation 5 is about: 11 of the 23 bugs require a
crash during a syscall and are invisible to a between-syscalls policy.

Two policies are provided:

* ``"fsync"`` — crash states only after fsync/fdatasync/sync (CrashMonkey's
  actual behaviour; on PM file systems, whose workloads contain no fsync,
  this checks almost nothing);
* ``"post"`` — crash states after *every* syscall but never during one (a
  generous upgrade of CrashMonkey to synchronous-FS semantics; still misses
  every mid-syscall bug).
"""

from __future__ import annotations

from typing import Optional, Type, Union

from repro.core.harness import Chipmunk, ChipmunkConfig, TestResult
from repro.fs.bugs import BugConfig
from repro.vfs.interface import FileSystem
from repro.workloads.ops import Workload


class CrashMonkeyStyleTester:
    """Chipmunk pipeline restricted to CrashMonkey's crash-point policy."""

    def __init__(
        self,
        fs: Union[str, Type[FileSystem]],
        bugs: Optional[BugConfig] = None,
        policy: str = "post",
        config: Optional[ChipmunkConfig] = None,
    ) -> None:
        if policy not in ("fsync", "post"):
            raise ValueError(f"unknown CrashMonkey policy {policy!r}")
        config = config or ChipmunkConfig()
        config.crash_points = policy
        self.policy = policy
        self._chipmunk = Chipmunk(fs, bugs=bugs, config=config)

    @property
    def fs_class(self) -> Type[FileSystem]:
        return self._chipmunk.fs_class

    def test_workload(self, workload: Workload, setup: Workload = ()) -> TestResult:
        """Test one workload under the restricted crash-point policy."""
        return self._chipmunk.test_workload(workload, setup=setup)
