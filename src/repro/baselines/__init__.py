"""Baseline testers used for comparison experiments."""

from repro.baselines.crashmonkey import CrashMonkeyStyleTester

__all__ = ["CrashMonkeyStyleTester"]
