"""Worker-side memo client: fast when the service is up, silent when not.

The shared memo is a pure optimization — every verdict it serves could be
recomputed locally — so the client's failure policy is *degrade, never
disrupt*:

* connect and per-request timeouts (a wedged server costs a worker at most
  ``request_timeout`` per attempt, not a campaign);
* one in-call retry over a fresh connection (survives a server restart or
  an idle-connection reset without losing the request);
* after :attr:`max_failures` *consecutive* failed requests the client
  permanently disables itself — every later call returns a miss in
  nanoseconds and the worker runs on its local memo alone.  A killed
  ``memod`` therefore slows a campaign down; it never changes its output.

The client is used serially by one worker process over one persistent
connection; it is not thread-safe and does not need to be.
"""

from __future__ import annotations

import socket
from time import perf_counter
from typing import Optional, Tuple

from repro.memo.store import VERDICTS
from repro.memo.wire import FrameError, recv_frame, send_frame


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``"host:port"``; raises ``ValueError`` on malformed input."""
    host, sep, port_s = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"memo address {address!r} is not HOST:PORT")
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"memo address {address!r} has a non-integer port")
    if not (0 < port < 65536):
        raise ValueError(f"memo address {address!r} port out of range")
    return host, port


class MemoClient:
    """One worker's connection to the shared memo service."""

    def __init__(
        self,
        address: str,
        connect_timeout: float = 1.0,
        request_timeout: float = 1.0,
        max_failures: int = 3,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_failures = max_failures
        self._sock: Optional[socket.socket] = None
        self._consecutive_failures = 0
        self._dead = False
        #: Completed request round trips and their summed latency.
        self.requests = 0
        self.rtt_total = 0.0
        #: Failed request attempts (timeouts, resets, frame errors).
        self.errors = 0

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """False once the client has permanently degraded to local-only."""
        return not self._dead

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        # Request/response with tiny frames: Nagle would trade the one
        # thing this client cares about (latency) for nothing.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.request_timeout)
        return sock

    def _close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _request(self, obj: dict) -> Optional[dict]:
        """One request/response round trip; None on any failure.

        Two attempts: a stale persistent connection (server restarted
        between calls) fails once and retries on a fresh one.  Failures of
        *both* attempts count one consecutive failure toward permanent
        degradation; any success resets the count.
        """
        if self._dead:
            return None
        for attempt in (0, 1):
            t0 = perf_counter()
            try:
                if self._sock is None:
                    self._sock = self._connect()
                send_frame(self._sock, obj)
                response = recv_frame(self._sock)
                if response is None:
                    raise FrameError("connection closed before the response")
            except (OSError, FrameError, ValueError):
                self.errors += 1
                self._close()
                if attempt == 0:
                    continue
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.max_failures:
                    self._dead = True
                    self._close()
                return None
            self.requests += 1
            self.rtt_total += perf_counter() - t0
            self._consecutive_failures = 0
            return response
        return None

    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[str]:
        """The stored verdict for ``key``, or None (miss *or* degraded)."""
        response = self._request({"op": "lookup", "key": key.hex()})
        if not response or not response.get("ok"):
            return None
        verdict = response.get("verdict")
        return verdict if verdict in VERDICTS else None

    def publish(self, key: bytes, verdict: str) -> bool:
        response = self._request(
            {"op": "publish", "key": key.hex(), "verdict": verdict}
        )
        return bool(response and response.get("ok"))

    def ping(self) -> bool:
        response = self._request({"op": "ping"})
        return bool(response and response.get("ok"))

    def stats(self) -> Optional[dict]:
        response = self._request({"op": "stats"})
        if not response or not response.get("ok"):
            return None
        return dict(response.get("stats", {}))

    def close(self) -> None:
        self._close()
