"""Threaded TCP memo server: the campaign's shared verdict authority.

One :class:`MemoServer` instance serves both deployment modes with the
same code path:

* **host-local** — the campaign engine starts an in-process server on a
  loopback ephemeral port for ``--shared-memo`` and hands the address to
  its workers.  (A ``multiprocessing.Manager`` proxy would also be a
  socket round trip per call — a real server is no slower and additionally
  serves mode two.)
* **multi-host** — ``python -m repro memod`` runs the same server
  standalone; campaigns on other machines attach via
  ``--memo-server HOST:PORT``.  The memo key is a pure function of image
  bytes and oracle expectations (PR 7 made the content address canonical),
  so keys are host-portable by construction.

The server is deliberately dumb: it stores verdict strings under opaque
hex keys and never inspects them.  All soundness reasoning (what a key
must fold in, which verdicts may be skipped) lives client-side in
:class:`repro.core.checker.CheckMemo` — a stale or wrong *server* can at
worst return a verdict for a key nobody asked about, which the client
ignores.

Protocol (one JSON frame per request/response, see :mod:`repro.memo.wire`):

``{"op": "lookup", "key": HEX}``  → ``{"ok": true, "verdict": "clean" | "buggy" | null}``
``{"op": "publish", "key": HEX, "verdict": V}`` → ``{"ok": true}``
``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}``
``{"op": "ping"}`` → ``{"ok": true}``

Malformed requests get ``{"ok": false, "error": ...}``; frame-level
violations (oversized, torn, non-JSON) close the connection.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
from typing import Optional, Tuple

from repro.memo.store import DEFAULT_MAX_ENTRIES, MemoTable, VERDICTS
from repro.memo.wire import FrameError, recv_frame, send_frame

#: Hex sha1 is 40 chars; allow headroom for longer digests without
#: admitting unbounded keys into the table.
MAX_KEY_CHARS = 128

#: Accept-loop poll granularity; bounds shutdown latency.
_ACCEPT_POLL_S = 0.2


class MemoServer:
    """Shared check-memo server: a :class:`MemoTable` behind a TCP socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        table: Optional[MemoTable] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.table = table if table is not None else MemoTable(max_entries)
        self._sock: Optional[socket.socket] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.connections = 0
        self.frame_errors = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind, listen, and serve from a daemon acceptor thread."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(64)
        sock.settimeout(_ACCEPT_POLL_S)
        self.port = sock.getsockname()[1]
        self._sock = sock
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._accept_loop, name="memod-accept", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def address_str(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us during shutdown
            self.connections += 1
            threading.Thread(
                target=self._serve_client, args=(conn,),
                name="memod-conn", daemon=True,
            ).start()

    def _serve_client(self, conn: socket.socket) -> None:
        # Per-request timeout: a wedged client must not hold a server
        # thread forever, but an idle-but-alive worker connection may sit
        # between requests indefinitely — so only cap time *inside* a
        # frame by polling the stop event between recv attempts.
        conn.settimeout(_ACCEPT_POLL_S)
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # e.g. a non-TCP test socketpair
        try:
            while not self._stop.is_set():
                try:
                    request = recv_frame(conn)
                except socket.timeout:
                    continue
                except FrameError:
                    # Oversized/torn/non-JSON: drop the connection; there
                    # is no way to resynchronize a byte stream mid-frame.
                    self.frame_errors += 1
                    return
                if request is None:
                    return
                send_frame(conn, self._handle(request))
        except OSError:
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "stats": self.table.stats()}
        if op in ("lookup", "publish"):
            key = request.get("key")
            if not isinstance(key, str) or not key or len(key) > MAX_KEY_CHARS:
                return {"ok": False, "error": "bad key"}
            if op == "lookup":
                return {"ok": True, "verdict": self.table.lookup(key)}
            verdict = request.get("verdict")
            if verdict not in VERDICTS:
                return {"ok": False, "error": f"bad verdict {verdict!r}"}
            self.table.publish(key, verdict)
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


def run_memod(
    host: str = "127.0.0.1",
    port: int = 0,
    max_entries: int = DEFAULT_MAX_ENTRIES,
    out=None,
) -> int:
    """CLI entry point (``python -m repro memod``): serve until interrupted."""
    out = out if out is not None else sys.stdout
    server = MemoServer(host=host, port=port, max_entries=max_entries)
    server.start()
    print(
        f"[memod] serving shared check memo on {server.address_str} "
        f"(max {server.table.max_entries} clean entries); Ctrl-C to stop",
        file=out, flush=True,
    )
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        stats = server.table.stats()
        print(
            f"\n[memod] {stats['entries']} entrie(s) "
            f"({stats['buggy']} buggy pinned), {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es), {stats['evictions']} eviction(s) "
            f"over {server.connections} connection(s)",
            file=out, flush=True,
        )
        return 130
    finally:
        server.stop()
