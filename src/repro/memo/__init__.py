"""Campaign-wide shared check-memo service ("one fleet, one dedup domain").

Every workload in a campaign re-checks the same mkfs-fresh early crash
states, yet :class:`~repro.core.checker.CheckMemo` historically lived and
died inside one harness — the bench showed the hit-rate stuck below 10%
because the dedup domain was a single workload.  This package promotes the
memo to a campaign-wide content-addressed verdict service:

* :mod:`repro.memo.store` — :class:`~repro.memo.store.MemoTable`, a
  thread-safe LRU/size-bounded verdict table (clean entries evict, buggy
  entries pin) with hit/miss/evict counters;
* :mod:`repro.memo.wire` — the length-prefixed JSON frame protocol, with
  torn- and oversized-frame rejection;
* :mod:`repro.memo.server` — :class:`~repro.memo.server.MemoServer`, a
  threaded TCP server the campaign engine embeds for ``--shared-memo`` and
  ``python -m repro memod`` runs standalone for multi-host campaigns;
* :mod:`repro.memo.client` — :class:`~repro.memo.client.MemoClient`, a
  worker-side client with connect/request timeouts, bounded retries, and
  silent permanent degradation to the local memo on any failure.

Soundness contract (see DESIGN.md "Shared check-memo service"): entries
are keyed by ``sha1(oracle-context digest ‖ content address ‖ syscall
context)``, so key equality implies both byte-identical images *and*
identical oracle expectations — a shared hit can never mask a bug.  Only
CLEAN verdicts are skippable; a BUGGY verdict forces a local re-check so
every workload still emits its own reports and ``bugs.json`` stays
byte-equal to a memo-off run.
"""

from repro.memo.client import MemoClient
from repro.memo.server import MemoServer, run_memod
from repro.memo.store import BUGGY, CLEAN, DEFAULT_MAX_ENTRIES, MemoTable
from repro.memo.wire import FrameError, MAX_FRAME, recv_frame, send_frame

__all__ = [
    "MemoClient",
    "MemoServer",
    "run_memod",
    "MemoTable",
    "CLEAN",
    "BUGGY",
    "DEFAULT_MAX_ENTRIES",
    "FrameError",
    "MAX_FRAME",
    "recv_frame",
    "send_frame",
]
