"""Memo wire protocol: 4-byte length-prefixed JSON frames.

Requests and responses are small dicts (a lookup carries a hex key, a
response a verdict string), so the frame cap is tight: anything larger
than :data:`MAX_FRAME` is rejected *from the header alone* — the body is
never read, so a hostile or corrupted peer cannot make the server buffer
arbitrary data.  A connection that closes mid-frame raises
:class:`FrameError` ("torn frame"); a close exactly on a frame boundary
is a clean EOF and :func:`recv_frame` returns ``None``.
"""

from __future__ import annotations

import json
import struct
from typing import Optional

#: Maximum frame payload in bytes.  Every legitimate message is well under
#: 200 bytes (op + hex sha1 key + verdict); 4 KiB leaves headroom for the
#: stats response without admitting anything pathological.
MAX_FRAME = 4096

_HEADER = struct.Struct(">I")


class FrameError(ValueError):
    """Malformed frame: oversized, torn mid-read, or not a JSON object."""


def send_frame(sock, obj: dict) -> None:
    """Serialize ``obj`` and send it as one length-prefixed frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise FrameError(
            f"frame payload {len(payload)} exceeds MAX_FRAME {MAX_FRAME}"
        )
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on EOF before the first byte,
    :class:`FrameError` on EOF after it (a torn frame)."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise FrameError(
                    f"torn frame: connection closed with "
                    f"{remaining} of {n} byte(s) outstanding"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> Optional[dict]:
    """Receive one frame; ``None`` on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"oversized frame: {length} > MAX_FRAME {MAX_FRAME}")
    if length == 0:
        raise FrameError("empty frame")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("torn frame: connection closed before the body")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"frame body is not an object: {type(obj).__name__}")
    return obj
