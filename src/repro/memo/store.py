"""Bounded verdict store: the table behind both the local and shared memo.

One :class:`MemoTable` maps an opaque key (the memo's content-addressed
key, or the shared service's context-folded digest) to a *verdict*:

``CLEAN``
    The state was checked and produced zero reports.  Skipping a re-check
    of a clean state can never change ``bugs.json`` — there is nothing to
    suppress — so clean entries are the ones worth sharing and the ones
    safe to evict (re-checking an evicted clean state costs time, never
    correctness).
``BUGGY``
    The state produced at least one report.  Buggy entries are **pinned**:
    they are never evicted, because inside one workload an evicted buggy
    key would be re-checked and its reports appended *again*, breaking the
    memo-on/off byte-equality contract.  Pinning is naturally bounded —
    the harness stops a workload at ``max_reports_per_workload`` (64), so
    a table can only ever pin a handful of buggy keys per workload.

Eviction is LRU over the clean entries only, bounded by ``max_entries``
(0 disables the bound).  The table is thread-safe: the shared memo server
serves one thread per connection against a single instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

#: Verdict labels stored per key (and carried over the wire protocol).
CLEAN = "clean"
BUGGY = "buggy"
VERDICTS = (CLEAN, BUGGY)

#: Default clean-entry cap.  A seq-2 campaign checks ~10^5 distinct states;
#: at ~100 bytes per table entry this bounds the store near 25 MiB while
#: still holding an entire campaign's working set.
DEFAULT_MAX_ENTRIES = 262144


class MemoTable:
    """Thread-safe, LRU/size-bounded verdict table."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = int(max_entries)
        self._clean: "OrderedDict[object, bool]" = OrderedDict()
        self._buggy: set = set()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.publishes = 0

    # ------------------------------------------------------------------
    def lookup(self, key) -> Optional[str]:
        """Return the stored verdict, refreshing LRU recency; None = miss."""
        with self._lock:
            if key in self._buggy:
                self.hits += 1
                return BUGGY
            if key in self._clean:
                self._clean.move_to_end(key)
                self.hits += 1
                return CLEAN
            self.misses += 1
            return None

    def publish(self, key, verdict: str) -> None:
        """Record a verdict; idempotent, so racing workers publishing the
        same key (both missed, both checked byte-identical states under the
        same oracle context) converge on the same entry."""
        if verdict not in VERDICTS:
            raise ValueError(f"unknown verdict {verdict!r}")
        with self._lock:
            self.publishes += 1
            if verdict == BUGGY:
                # Key equality implies verdict equality, so a clean→buggy
                # transition only happens for keys that were never clean;
                # the pop is defensive, keeping the invariant structural.
                self._clean.pop(key, None)
                self._buggy.add(key)
                return
            if key in self._buggy:
                return
            self._clean[key] = True
            self._clean.move_to_end(key)
            if self.max_entries > 0:
                while len(self._clean) > self.max_entries:
                    self._clean.popitem(last=False)
                    self.evictions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._clean) + len(self._buggy)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._buggy or key in self._clean

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._clean) + len(self._buggy),
                "clean": len(self._clean),
                "buggy": len(self._buggy),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "publishes": self.publishes,
                "max_entries": self.max_entries,
            }
