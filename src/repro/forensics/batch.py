"""``repro explain --all``: campaign-scale batch forensics.

Walks a campaign's ``bugs.json``, runs the full forensic pass on every
provenance-carrying report through one shared
:class:`~repro.forensics.cache.ForensicsCache` (K reports sharing a
reproduction context cost one recording, not K), triages the reports with
the provenance-guided clustering mode, and renders everything into a
``forensics.md`` document next to the campaign's ``report.md``.

The output is deliberately wall-clock-free: the same ``bugs.json`` always
renders to byte-identical markdown, so the document can be diffed across
campaign runs (and the test suite asserts a ``--workers 1`` and a
``--workers 4`` campaign over the same spec explain identically).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.report import BugReport
from repro.core.triage import Cluster, Triage
from repro.forensics.cache import ForensicsCache
from repro.forensics.explain import (
    Explanation,
    explain_report,
    load_report_dicts,
)
from repro.forensics.minimize import DEFAULT_BUDGET, DEFAULT_WORKLOAD_BUDGET

#: File name written next to ``report.md``.
FORENSICS_BASENAME = "forensics.md"


@dataclass
class BatchExplanation:
    """Everything ``repro explain --all`` derived from one campaign."""

    #: Per-report forensic results, in ``bugs.json`` order.  Reports without
    #: provenance are skipped (counted in ``skipped``).
    explanations: List[Explanation]
    #: Provenance-guided cluster assignment over the explained reports.
    clusters: List[Cluster]
    #: The shared cache (hit/miss counters readable after the run).
    cache: ForensicsCache
    #: Indices of reports skipped for missing provenance.
    skipped: List[int] = field(default_factory=list)
    #: The rendered ``forensics.md`` document.
    text: str = ""

    @property
    def reproduced(self) -> int:
        return sum(1 for e in self.explanations if e.reproduced)


def _cluster_section(
    clusters: List[Cluster], reports: List[BugReport]
) -> List[str]:
    index_of = {id(r): i for i, r in enumerate(reports)}
    lines = ["## Cluster assignment (provenance-guided)", ""]
    for n, cluster in enumerate(clusters, 1):
        members = ", ".join(
            f"#{index_of[id(m)]}" for m in cluster.members if id(m) in index_of
        )
        mode = "sites" if cluster.prov_key is not None else "lexical"
        line = (
            f"- cluster {n} ({cluster.exemplar.consequence.name}, "
            f"x{cluster.count}, {mode}): report(s) {members}"
        )
        if cluster.sites:
            line += f" — culprit sites: {cluster.describe_sites()}"
        lines.append(line)
    lines.append("")
    return lines


def explain_all(
    reports: List[BugReport],
    minimize: bool = True,
    budget: int = DEFAULT_BUDGET,
    minimize_ops: bool = False,
    workload_budget: int = DEFAULT_WORKLOAD_BUDGET,
    telemetry=None,
    title: str = "Batch forensics",
) -> BatchExplanation:
    """Explain every provenance-carrying report through one shared cache."""
    cache = ForensicsCache(telemetry=telemetry)
    explanations: List[Explanation] = []
    explained: List[BugReport] = []
    skipped: List[int] = []
    for i, report in enumerate(reports):
        if report.provenance is None:
            skipped.append(i)
            continue
        explanations.append(
            explain_report(
                report,
                minimize=minimize,
                budget=budget,
                telemetry=telemetry,
                cache=cache,
                minimize_ops=minimize_ops,
                workload_budget=workload_budget,
            )
        )
        explained.append(report)
    triage = Triage(provenance=True)
    triage.add_all(explained)
    clusters = triage.clusters

    lines: List[str] = [f"# {title}", ""]
    lines.append(f"- **reports:** {len(reports)}")
    lines.append(
        f"- **explained:** {len(explanations)} "
        f"({sum(1 for e in explanations if e.reproduced)} reproduced offline)"
    )
    if skipped:
        lines.append(
            f"- **skipped (no provenance):** "
            f"{', '.join(f'#{i}' for i in skipped)}"
        )
    lines.append(f"- **clusters:** {len(clusters)}")
    lines.append("")
    if clusters:
        lines.extend(_cluster_section(clusters, explained))
    for i, explanation in zip(
        (j for j in range(len(reports)) if j not in set(skipped)),
        explanations,
    ):
        lines.append(
            f"## Report {i}: {explanation.report.consequence.name}"
        )
        lines.append("")
        lines.append("```")
        lines.append(explanation.text)
        lines.append("```")
        lines.append("")
    lines.append("## Cache")
    lines.append("")
    lines.append(f"- {cache.session_counters.describe()}")
    lines.append(f"- {cache.verdict_counters.describe()}")
    lines.append("")
    return BatchExplanation(
        explanations=explanations,
        clusters=clusters,
        cache=cache,
        skipped=skipped,
        text="\n".join(lines),
    )


def explain_campaign(
    campaign_dir: str,
    minimize: bool = True,
    budget: int = DEFAULT_BUDGET,
    minimize_ops: bool = False,
    workload_budget: int = DEFAULT_WORKLOAD_BUDGET,
    telemetry=None,
    out: Optional[str] = None,
) -> BatchExplanation:
    """Explain a campaign directory's ``bugs.json`` and write ``forensics.md``.

    ``campaign_dir`` may also point directly at a report JSON file, in which
    case ``forensics.md`` lands next to it (or at ``out``).
    """
    if os.path.isdir(campaign_dir):
        bugs_path = os.path.join(campaign_dir, "bugs.json")
        out_dir = campaign_dir
    else:
        bugs_path = campaign_dir
        out_dir = os.path.dirname(campaign_dir) or "."
    reports = [BugReport.from_dict(d) for d in load_report_dicts(bugs_path)]
    batch = explain_all(
        reports,
        minimize=minimize,
        budget=budget,
        minimize_ops=minimize_ops,
        workload_budget=workload_budget,
        telemetry=telemetry,
        title=f"Batch forensics: {os.path.basename(bugs_path)}",
    )
    out_path = out if out is not None else os.path.join(
        out_dir, FORENSICS_BASENAME
    )
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(batch.text)
    return batch
