"""``repro explain``: offline bug forensics from a saved report.

Given one serialized :class:`~repro.core.report.BugReport` carrying
provenance, this module rebuilds the exact crash state (recording is
deterministic), re-runs the checker to confirm the saved consequence still
reproduces, optionally minimizes the dropped store set, and renders the
full forensic view: the fence-epoch ordering timeline with the culprit set
highlighted, an annotated image diff against the fully-persisted reference,
and (on request) a Chrome trace-event file of the lineage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.core.report import BugReport
from repro.forensics.cache import ForensicsCache
from repro.forensics.minimize import (
    DEFAULT_BUDGET,
    DEFAULT_WORKLOAD_BUDGET,
    MinimizationResult,
    WorkloadMinimizationResult,
    minimize_dropped_set,
    minimize_workload,
)
from repro.forensics.replay import materialize_state, outcome_of, rebuild_session
from repro.forensics.timeline import (
    render_image_diff,
    render_timeline,
    write_chrome_trace,
)


def load_report_dicts(path: str) -> List[Dict[str, object]]:
    """Read saved bug-report dicts from ``path``.

    Accepts the three shapes the toolchain writes: a single report object,
    a bare list of reports, or a ``{"reports": [...]}`` document (the
    ``--save-reports`` format, also used by the campaign's ``bugs.json``).
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict) and "reports" in data:
        data = data["reports"]
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ValueError(f"{path}: not a bug-report document")
    return data


@dataclass
class Explanation:
    """Everything ``repro explain`` derived from one saved report."""

    report: BugReport
    #: Checker outcome of the rebuilt original crash state.
    outcome: FrozenSet[str]
    #: True when the saved consequence still reproduces offline.
    reproduced: bool
    minimization: Optional[MinimizationResult]
    #: The rendered forensic view (timeline + diff + verdicts).
    text: str
    #: Workload minimization result, when that pass was requested.
    workload_minimization: Optional[WorkloadMinimizationResult] = None


def explain_report(
    report: BugReport,
    minimize: bool = False,
    budget: int = DEFAULT_BUDGET,
    chrome_out: Optional[str] = None,
    telemetry=None,
    cache: Optional[ForensicsCache] = None,
    minimize_ops: bool = False,
    workload_budget: int = DEFAULT_WORKLOAD_BUDGET,
) -> Explanation:
    """Run the full forensic pass on one provenance-carrying report.

    With a ``cache`` the session rebuild and every ddmin verdict go through
    the cross-report memo, so batch callers pay one recording per
    reproduction context instead of one per report.  ``minimize_ops``
    additionally runs workload ddmin, shrinking the op sequence to the ops
    essential for the consequence.
    """
    prov = report.provenance
    if prov is None:
        raise ValueError(
            "report carries no provenance (was the campaign run with "
            "forensics disabled?)"
        )
    if cache is not None:
        session = cache.session(prov)
    else:
        session = rebuild_session(prov, telemetry=telemetry)
    target = report.consequence.name
    outcome = outcome_of(session.original_reports())
    reproduced = target in outcome
    lines = [report.render(), ""]
    if reproduced:
        lines.append(f"offline replay reproduces {target} "
                     f"(outcome: {', '.join(sorted(outcome)) or 'clean'})")
    else:
        lines.append(
            f"WARNING: offline replay does NOT reproduce {target} "
            f"(outcome: {', '.join(sorted(outcome)) or 'clean'})"
        )
    minimization: Optional[MinimizationResult] = None
    culprits: tuple = ()
    if minimize and reproduced:
        minimization = minimize_dropped_set(
            session, target, budget=budget, telemetry=telemetry, cache=cache
        )
        culprits = minimization.culprit_seqs
        lines.append(minimization.describe())
        if minimization.reproduced and not minimization.minimal_dropped:
            lines.append(
                "  (the state fails even with every in-flight store "
                "persisted: the required persist is missing from the log "
                "entirely — a missing-flush bug)"
            )
    workload_min: Optional[WorkloadMinimizationResult] = None
    if minimize_ops and reproduced:
        workload_min = minimize_workload(
            prov, target, budget=workload_budget, telemetry=telemetry
        )
        lines.append(workload_min.describe())
    layout = session.chipmunk.fs_class.layout_map(session.base)
    lines.append("")
    lines.append(render_timeline(prov, layout, culprits, workload_min))
    # Flatten both lazy images once up front: the per-byte diff scan would
    # otherwise pay a Python-level indirection on every subscript.
    reference = bytes(
        materialize_state(
            prov, session.region, range(len(session.region.units)), kind="subset"
        ).image
    )
    lines.append("")
    lines.append(
        render_image_diff(
            bytes(session.original_state().image),
            reference,
            layout,
            label="image with all in-flight stores persisted",
        )
    )
    if chrome_out is not None:
        n = write_chrome_trace(prov, chrome_out, culprits)
        lines.append("")
        lines.append(f"wrote {n} Chrome trace event(s) to {chrome_out}")
    return Explanation(
        report=report,
        outcome=outcome,
        reproduced=reproduced,
        minimization=minimization,
        text="\n".join(lines),
        workload_minimization=workload_min,
    )
