"""Crash-state provenance: the store-level lineage behind a checker failure.

A :class:`~repro.core.report.BugReport` used to say *what* diverged; this
module records *why* — which persistence operations were in flight at the
crash, which subset the replayer persisted, and which were dropped.  The
lineage is captured from the recorded :class:`~repro.pm.log.PMLog` at the
moment a checker failure is reported (never for clean states, so capture
cost scales with bugs, not with crash states) and travels inside the report
as a compact, JSON-serializable :class:`CrashProvenance`.

The provenance also carries the full *reproduction context* — file system,
workload and setup operations, bug configuration, and harness knobs — so
``python -m repro explain`` can rebuild the exact crash state offline from
a saved report, re-run the checker, and minimize the culprit store set
(:mod:`repro.forensics.minimize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pm.log import Fence, Flush, NTStore, PMLog, SyscallBegin, SyscallEnd

#: Entry statuses.  ``durable`` — fenced before the crash region;
#: ``replayed`` — in flight at the crash and persisted in this state;
#: ``dropped`` — in flight at the crash and lost in this state;
#: ``fence`` / ``marker`` — ordering structure, not data.
DURABLE = "durable"
REPLAYED = "replayed"
DROPPED = "dropped"
FENCE = "fence"
MARKER = "marker"

#: Maximum store payload bytes embedded per provenance entry.  Data-heavy
#: workloads log block-sized (512 B+) stores; embedding them whole would
#: blow up ``bugs.json`` by orders of magnitude, and the first cache line is
#: what a developer actually reads in a lineage (the replay layer never
#: needs the payload — it re-records).  Longer payloads are truncated with
#: an explicit ``payload_truncated`` marker.
PAYLOAD_CAP = 32


@dataclass(frozen=True)
class ProvEntry:
    """One log entry of the crash lineage, tagged with its persistence fate."""

    #: Position in ``PMLog.entries`` (stable across re-recordings).
    seq: int
    #: ``"store"`` | ``"flush"`` | ``"fence"`` | ``"syscall_begin"`` |
    #: ``"syscall_end"``.
    kind: str
    status: str
    #: Fence epoch the entry belongs to (fences close their own epoch).
    epoch: int
    #: Issuing persistence function — the probe site that recorded it.
    func: str = ""
    addr: int = -1
    length: int = 0
    syscall: Optional[int] = None
    #: Marker text (syscall name and arguments) for begin/end entries.
    label: str = ""
    #: Hex of the store payload's first :data:`PAYLOAD_CAP` bytes ("" for
    #: non-store entries or payload-free captures).
    payload: str = ""
    #: True when the payload was longer than :data:`PAYLOAD_CAP`.
    payload_truncated: bool = False

    def to_dict(self) -> Dict[str, object]:
        out = {
            "seq": self.seq,
            "kind": self.kind,
            "status": self.status,
            "epoch": self.epoch,
            "func": self.func,
            "addr": self.addr,
            "length": self.length,
            "syscall": self.syscall,
            "label": self.label,
        }
        # Payload keys only when present: fences, markers, and short-store
        # captures pay zero serialization cost.
        if self.payload:
            out["payload"] = self.payload
        if self.payload_truncated:
            out["payload_truncated"] = True
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProvEntry":
        return cls(
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            status=str(data["status"]),
            epoch=int(data["epoch"]),
            func=str(data.get("func", "")),
            addr=int(data.get("addr", -1)),
            length=int(data.get("length", 0)),
            syscall=data.get("syscall"),
            label=str(data.get("label", "")),
            payload=str(data.get("payload", "")),
            payload_truncated=bool(data.get("payload_truncated", False)),
        )


def _ops_to_tuples(ops: Sequence) -> Tuple[Tuple[str, Tuple], ...]:
    return tuple((op.name, tuple(op.args)) for op in ops)


def ops_from_tuples(packed: Sequence[Sequence]) -> List:
    """Rebuild :class:`~repro.workloads.ops.Op` values from packed form."""
    from repro.workloads.ops import Op  # deferred: keep this module light

    return [Op(str(name), tuple(args)) for name, args in packed]


@dataclass(frozen=True)
class CrashProvenance:
    """Full lineage of one failing crash state plus its repro context."""

    fs_name: str
    #: Crash-point identity (mirrors :class:`~repro.core.replayer.CrashState`).
    fence_index: int
    log_pos: int
    mid_syscall: bool
    syscall: Optional[int]
    syscall_name: Optional[str]
    after_syscall: int
    state_kind: str  # "subset" | "post" | "final"
    #: Positions (within the crash region's in-flight vector) persisted.
    replayed_entries: Tuple[int, ...]
    #: Every log entry up to the crash point, tagged.
    entries: Tuple[ProvEntry, ...]
    #: Reproduction context: the workload as (name, args) pairs.
    workload: Tuple[Tuple[str, Tuple], ...] = ()
    setup: Tuple[Tuple[str, Tuple], ...] = ()
    bug_ids: Tuple[int, ...] = ()
    cap: Optional[int] = 2
    coalesce_threshold: int = 256
    device_size: int = 256 * 1024
    crash_points: str = "fence"
    usability_check: bool = True

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def stores(self) -> List[ProvEntry]:
        return [e for e in self.entries if e.kind in ("store", "flush")]

    def dropped(self) -> List[ProvEntry]:
        return [e for e in self.entries if e.status == DROPPED]

    def counts(self) -> Dict[str, int]:
        out = {DURABLE: 0, REPLAYED: 0, DROPPED: 0}
        for entry in self.stores():
            out[entry.status] += 1
        return out

    @property
    def n_epochs(self) -> int:
        return max((e.epoch for e in self.entries), default=-1) + 1

    def crash_region(self) -> List[ProvEntry]:
        """Entries of the fence epoch the crash happened in."""
        return [e for e in self.entries if e.epoch == self.fence_index]

    def where(self) -> str:
        if self.mid_syscall:
            return f"during syscall #{self.syscall} {self.syscall_name}"
        return f"after syscall #{self.after_syscall}"

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "fs_name": self.fs_name,
            "fence_index": self.fence_index,
            "log_pos": self.log_pos,
            "mid_syscall": self.mid_syscall,
            "syscall": self.syscall,
            "syscall_name": self.syscall_name,
            "after_syscall": self.after_syscall,
            "state_kind": self.state_kind,
            "replayed_entries": list(self.replayed_entries),
            "entries": [e.to_dict() for e in self.entries],
            "workload": [[name, list(args)] for name, args in self.workload],
            "setup": [[name, list(args)] for name, args in self.setup],
            "bug_ids": list(self.bug_ids),
            "cap": self.cap,
            "coalesce_threshold": self.coalesce_threshold,
            "device_size": self.device_size,
            "crash_points": self.crash_points,
            "usability_check": self.usability_check,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CrashProvenance":
        return cls(
            fs_name=str(data["fs_name"]),
            fence_index=int(data["fence_index"]),
            log_pos=int(data["log_pos"]),
            mid_syscall=bool(data["mid_syscall"]),
            syscall=data.get("syscall"),
            syscall_name=data.get("syscall_name"),
            after_syscall=int(data["after_syscall"]),
            state_kind=str(data.get("state_kind", "subset")),
            replayed_entries=tuple(
                int(i) for i in data.get("replayed_entries", ())
            ),
            entries=tuple(
                ProvEntry.from_dict(e) for e in data.get("entries", ())
            ),
            workload=tuple(
                (str(name), tuple(args)) for name, args in data.get("workload", ())
            ),
            setup=tuple(
                (str(name), tuple(args)) for name, args in data.get("setup", ())
            ),
            bug_ids=tuple(int(b) for b in data.get("bug_ids", ())),
            cap=data.get("cap"),
            coalesce_threshold=int(data.get("coalesce_threshold", 256)),
            device_size=int(data.get("device_size", 256 * 1024)),
            crash_points=str(data.get("crash_points", "fence")),
            usability_check=bool(data.get("usability_check", True)),
        )


def capture_provenance(
    log: PMLog,
    state,
    *,
    fs_name: str,
    workload: Sequence = (),
    setup: Sequence = (),
    bug_ids: Sequence[int] = (),
    cap: Optional[int] = 2,
    coalesce_threshold: int = 256,
    device_size: int = 256 * 1024,
    crash_points: str = "fence",
    usability_check: bool = True,
) -> CrashProvenance:
    """Tag every log entry up to the crash point of ``state``.

    Stores before the crash region's opening fence are ``durable``; stores
    inside the crash region are ``replayed`` or ``dropped`` according to the
    state's ``replayed_entries`` positions; fences and syscall markers keep
    their structural role.
    """
    prefix = log.entries[: state.log_pos]
    last_fence = -1
    for i, entry in enumerate(prefix):
        if isinstance(entry, Fence):
            last_fence = i
    replayed = set(state.replayed_entries)
    entries: List[ProvEntry] = []
    epoch = 0
    pos_in_region = 0
    for seq, entry in enumerate(prefix):
        if isinstance(entry, (NTStore, Flush)):
            if seq < last_fence:
                status = DURABLE
            else:
                status = REPLAYED if pos_in_region in replayed else DROPPED
                pos_in_region += 1
            data = entry.data
            entries.append(
                ProvEntry(
                    seq=seq,
                    kind="store" if isinstance(entry, NTStore) else "flush",
                    status=status,
                    epoch=epoch,
                    func=entry.func,
                    addr=entry.addr,
                    length=entry.length,
                    syscall=entry.syscall,
                    payload=data[:PAYLOAD_CAP].hex(),
                    payload_truncated=len(data) > PAYLOAD_CAP,
                )
            )
        elif isinstance(entry, Fence):
            entries.append(
                ProvEntry(
                    seq=seq,
                    kind="fence",
                    status=FENCE,
                    epoch=epoch,
                    func=entry.func,
                    syscall=entry.syscall,
                )
            )
            epoch += 1
        elif isinstance(entry, SyscallBegin):
            entries.append(
                ProvEntry(
                    seq=seq,
                    kind="syscall_begin",
                    status=MARKER,
                    epoch=epoch,
                    syscall=entry.index,
                    label=f"{entry.name}({entry.args})",
                )
            )
        elif isinstance(entry, SyscallEnd):
            entries.append(
                ProvEntry(
                    seq=seq,
                    kind="syscall_end",
                    status=MARKER,
                    epoch=epoch,
                    syscall=entry.index,
                    label=entry.name,
                )
            )
    return CrashProvenance(
        fs_name=fs_name,
        fence_index=state.fence_index,
        log_pos=state.log_pos,
        mid_syscall=state.mid_syscall,
        syscall=state.syscall,
        syscall_name=state.syscall_name,
        after_syscall=state.after_syscall,
        state_kind=getattr(state, "kind", "subset"),
        replayed_entries=tuple(sorted(state.replayed_entries)),
        entries=tuple(entries),
        workload=_ops_to_tuples(workload),
        setup=_ops_to_tuples(setup),
        bug_ids=tuple(sorted(bug_ids)),
        cap=cap,
        coalesce_threshold=coalesce_threshold,
        device_size=device_size,
        crash_points=crash_points,
        usability_check=usability_check,
    )


class ProvenanceRecorder:
    """Per-workload provenance factory handed to the consistency checker.

    Memoizes by crash-point identity: a crash state producing several
    reports (e.g. unreadable + unusable) captures its lineage once.
    """

    def __init__(self, log: PMLog, **context) -> None:
        self.log = log
        self.context = context
        self._cache: Dict[Tuple[int, Tuple[int, ...]], CrashProvenance] = {}

    def for_state(self, state) -> CrashProvenance:
        key = (state.log_pos, tuple(state.replayed_entries))
        hit = self._cache.get(key)
        if hit is None:
            hit = capture_provenance(self.log, state, **self.context)
            self._cache[key] = hit
        return hit
