"""Store-set minimization by delta debugging.

A failing crash state usually drops more in-flight writes than the bug
needs: the replayer enumerates subsets bottom-up, so the *persisted* set is
small but the *dropped* set — the complement — can contain stores that are
irrelevant to the failure.  This pass runs classic ddmin (Zeller &
Hildebrandt) over the dropped write units, re-replaying shrinking candidate
sets through the real checker until no single chunk can be removed, and
returns the minimal set of unpersisted stores that still trips the same
checker outcome.

Every candidate costs one mount + walk + compare, so the pass is bounded by
a replay budget; when the budget runs out the best set found so far is
returned, flagged ``budget_exhausted``.  All replays run under a PR-1
telemetry span (``forensics.minimize``) with a ``forensics.replays``
counter when a telemetry object is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.forensics.replay import ReplaySession, outcome_of

#: Default maximum checker replays per minimization.
DEFAULT_BUDGET = 128


class BudgetExhausted(Exception):
    """Internal signal: the replay budget ran out mid-pass."""


@dataclass
class MinimizationResult:
    """Outcome of one store-set minimization."""

    #: Consequence name the pass preserved.
    target: str
    #: Dropped unit indices of the original failing state.
    original_dropped: Tuple[int, ...]
    #: Minimal dropped unit set still reproducing the target consequence.
    minimal_dropped: Tuple[int, ...]
    #: Log sequence numbers of the write entries in the minimal set — the
    #: culprit stores a timeline can highlight.
    culprit_seqs: Tuple[int, ...]
    #: Checker replays spent.
    n_replays: int
    #: True when the budget ran out before the pass converged; the result
    #: is still 1-minimal only if False.
    budget_exhausted: bool
    #: False when the rebuilt original state did not reproduce the target
    #: consequence (stale report or nondeterministic workload) — the
    #: remaining fields are then meaningless.
    reproduced: bool = True

    @property
    def removed(self) -> int:
        return len(self.original_dropped) - len(self.minimal_dropped)

    def describe(self) -> str:
        if not self.reproduced:
            return f"minimization failed: {self.target} did not reproduce"
        note = " [budget exhausted]" if self.budget_exhausted else ""
        return (
            f"minimal culprit set: {len(self.minimal_dropped)} of "
            f"{len(self.original_dropped)} dropped unit(s) suffice for "
            f"{self.target} ({self.n_replays} replays{note})"
        )


def _split(items: List[int], n: int) -> List[List[int]]:
    """Partition ``items`` into ``n`` contiguous, non-empty chunks."""
    chunks: List[List[int]] = []
    start = 0
    for i in range(n):
        end = start + (len(items) - start) // (n - i)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def ddmin(
    items: Sequence[int],
    test: Callable[[List[int]], bool],
    budget: int = DEFAULT_BUDGET,
) -> Tuple[List[int], int, bool]:
    """Classic ddmin: a minimal sublist of ``items`` for which ``test`` holds.

    ``test`` must hold for ``items`` itself.  Returns ``(minimal, n_tests,
    budget_exhausted)``; with an exhausted budget the best set found so far
    is returned (still failing, but possibly not 1-minimal).
    """
    spent = 0

    def run(candidate: List[int]) -> bool:
        nonlocal spent
        if spent >= budget:
            raise BudgetExhausted
        spent += 1
        return test(candidate)

    current = list(items)
    try:
        if run([]):
            # Persisting everything still fails: no dropped store is needed
            # for the outcome (a synchrony/oracle-level divergence).
            return [], spent, False
        n = 2
        while len(current) >= 2:
            chunks = _split(current, n)
            reduced = False
            for chunk in chunks:
                if run(chunk):
                    current = chunk
                    n = 2
                    reduced = True
                    break
            if not reduced and n > 2:
                for chunk in chunks:
                    complement = [i for i in current if i not in set(chunk)]
                    if run(complement):
                        current = complement
                        n = max(n - 1, 2)
                        reduced = True
                        break
            if not reduced:
                if n >= len(current):
                    break
                n = min(len(current), 2 * n)
    except BudgetExhausted:
        return current, spent, True
    return current, spent, False


def minimize_dropped_set(
    session: ReplaySession,
    target: str,
    budget: int = DEFAULT_BUDGET,
    telemetry=None,
) -> MinimizationResult:
    """Shrink the dropped unit set of a session's crash state.

    ``target`` is the consequence name (e.g. ``"UNREADABLE"``) to preserve:
    a candidate set of dropped units reproduces when the checker's verdict
    for the corresponding state still contains it.
    """
    tel = telemetry if telemetry is not None and telemetry.enabled else None
    all_units = list(range(len(session.region.units)))
    dropped = list(session.dropped_units)

    def test(candidate_dropped: List[int]) -> bool:
        if tel is not None:
            tel.count("forensics.replays")
        persisted = [i for i in all_units if i not in set(candidate_dropped)]
        return target in outcome_of(session.check_units(persisted))

    def run() -> MinimizationResult:
        if not test(dropped):
            return MinimizationResult(
                target=target,
                original_dropped=tuple(dropped),
                minimal_dropped=tuple(dropped),
                culprit_seqs=(),
                n_replays=1,
                budget_exhausted=False,
                reproduced=False,
            )
        minimal, spent, exhausted = ddmin(dropped, test, budget=budget)
        seqs: List[int] = []
        stores = [e for e in session.prov.entries
                  if e.kind in ("store", "flush")]
        # Map minimal units -> in-flight positions -> provenance seqs.  The
        # crash region's in-flight stores are exactly the last
        # ``len(inflight)`` store entries of the provenance.
        region_stores = stores[len(stores) - len(session.region.inflight):]
        for unit_index in minimal:
            for pos in session.region.unit_positions[unit_index]:
                seqs.append(region_stores[pos].seq)
        return MinimizationResult(
            target=target,
            original_dropped=tuple(dropped),
            minimal_dropped=tuple(minimal),
            culprit_seqs=tuple(sorted(seqs)),
            n_replays=spent + 1,
            budget_exhausted=exhausted,
        )

    if tel is not None:
        with tel.span("forensics.minimize", target=target,
                      dropped=len(dropped), budget=budget):
            result = run()
        tel.count("forensics.minimizations")
        return result
    return run()
