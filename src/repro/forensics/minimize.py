"""Store-set and workload minimization by delta debugging.

A failing crash state usually drops more in-flight writes than the bug
needs: the replayer enumerates subsets bottom-up, so the *persisted* set is
small but the *dropped* set — the complement — can contain stores that are
irrelevant to the failure.  This pass runs classic ddmin (Zeller &
Hildebrandt) over the dropped write units, re-replaying shrinking candidate
sets through the real checker until no single chunk can be removed, and
returns the minimal set of unpersisted stores that still trips the same
checker outcome.

The same ddmin core also shrinks the *workload*
(:func:`minimize_workload`): re-running the full harness on op
subsequences while the consequence survives, so a seq-3 culprit workload
collapses to its essential ops.  A full harness run is far more expensive
than a checker replay, so the workload pass gets its own, much smaller,
default budget.

Every candidate costs one mount + walk + compare (or, for the workload
pass, a full record/oracle/enumerate/check run), so both passes are bounded
by a budget; when it runs out the best set found so far is returned,
flagged ``budget_exhausted``.  All replays run under a PR-1 telemetry span
(``forensics.minimize`` / ``forensics.minimize_workload``) with
``forensics.replays`` / ``forensics.workload_runs`` counters when a
telemetry object is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.forensics.replay import ReplaySession, outcome_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache -> replay)
    from repro.forensics.cache import ForensicsCache

#: Default maximum checker replays per minimization.
DEFAULT_BUDGET = 128

#: Default maximum full harness runs per workload minimization.  Each test
#: is a complete record/oracle/enumerate/check pipeline, so the budget is an
#: order of magnitude tighter than the store-set one.
DEFAULT_WORKLOAD_BUDGET = 24


class BudgetExhausted(Exception):
    """Internal signal: the replay budget ran out mid-pass."""


@dataclass
class MinimizationResult:
    """Outcome of one store-set minimization."""

    #: Consequence name the pass preserved.
    target: str
    #: Dropped unit indices of the original failing state.
    original_dropped: Tuple[int, ...]
    #: Minimal dropped unit set still reproducing the target consequence.
    minimal_dropped: Tuple[int, ...]
    #: Log sequence numbers of the write entries in the minimal set — the
    #: culprit stores a timeline can highlight.
    culprit_seqs: Tuple[int, ...]
    #: Checker replays spent.
    n_replays: int
    #: True when the budget ran out before the pass converged; the result
    #: is still 1-minimal only if False.
    budget_exhausted: bool
    #: False when the rebuilt original state did not reproduce the target
    #: consequence (stale report or nondeterministic workload) — the
    #: remaining fields are then meaningless.
    reproduced: bool = True

    @property
    def removed(self) -> int:
        return len(self.original_dropped) - len(self.minimal_dropped)

    def describe(self) -> str:
        if not self.reproduced:
            return f"minimization failed: {self.target} did not reproduce"
        note = " [budget exhausted]" if self.budget_exhausted else ""
        return (
            f"minimal culprit set: {len(self.minimal_dropped)} of "
            f"{len(self.original_dropped)} dropped unit(s) suffice for "
            f"{self.target} ({self.n_replays} replays{note})"
        )


def _split(items: List[int], n: int) -> List[List[int]]:
    """Partition ``items`` into ``n`` contiguous, non-empty chunks."""
    chunks: List[List[int]] = []
    start = 0
    for i in range(n):
        end = start + (len(items) - start) // (n - i)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks


def ddmin(
    items: Sequence[int],
    test: Callable[[List[int]], bool],
    budget: int = DEFAULT_BUDGET,
) -> Tuple[List[int], int, bool]:
    """Classic ddmin: a minimal sublist of ``items`` for which ``test`` holds.

    ``test`` must hold for ``items`` itself.  Returns ``(minimal, n_tests,
    budget_exhausted)``; with an exhausted budget the best set found so far
    is returned (still failing, but possibly not 1-minimal).
    """
    spent = 0

    def run(candidate: List[int]) -> bool:
        nonlocal spent
        if spent >= budget:
            raise BudgetExhausted
        spent += 1
        return test(candidate)

    current = list(items)
    try:
        if run([]):
            # Persisting everything still fails: no dropped store is needed
            # for the outcome (a synchrony/oracle-level divergence).
            return [], spent, False
        n = 2
        while len(current) >= 2:
            chunks = _split(current, n)
            reduced = False
            for chunk in chunks:
                if run(chunk):
                    current = chunk
                    n = 2
                    reduced = True
                    break
            if not reduced and n > 2:
                for chunk in chunks:
                    complement = [i for i in current if i not in set(chunk)]
                    if run(complement):
                        current = complement
                        n = max(n - 1, 2)
                        reduced = True
                        break
            if not reduced:
                if n >= len(current):
                    break
                n = min(len(current), 2 * n)
    except BudgetExhausted:
        return current, spent, True
    return current, spent, False


def minimize_dropped_set(
    session: ReplaySession,
    target: str,
    budget: int = DEFAULT_BUDGET,
    telemetry=None,
    cache: Optional["ForensicsCache"] = None,
) -> MinimizationResult:
    """Shrink the dropped unit set of a session's crash state.

    ``target`` is the consequence name (e.g. ``"UNREADABLE"``) to preserve:
    a candidate set of dropped units reproduces when the checker's verdict
    for the corresponding state still contains it.  With a ``cache``, every
    verdict goes through its persisted-subset memo, so minimizing K reports
    that share a crash point re-uses each other's replays.
    """
    tel = telemetry if telemetry is not None and telemetry.enabled else None
    all_units = list(range(len(session.region.units)))
    dropped = list(session.dropped_units)

    def test(candidate_dropped: List[int]) -> bool:
        if tel is not None:
            tel.count("forensics.replays")
        persisted = [i for i in all_units if i not in set(candidate_dropped)]
        if cache is not None:
            return target in cache.check_positions(session, persisted)
        return target in outcome_of(session.check_units(persisted))

    def run() -> MinimizationResult:
        if not test(dropped):
            return MinimizationResult(
                target=target,
                original_dropped=tuple(dropped),
                minimal_dropped=tuple(dropped),
                culprit_seqs=(),
                n_replays=1,
                budget_exhausted=False,
                reproduced=False,
            )
        minimal, spent, exhausted = ddmin(dropped, test, budget=budget)
        seqs: List[int] = []
        stores = [e for e in session.prov.entries
                  if e.kind in ("store", "flush")]
        # Map minimal units -> in-flight positions -> provenance seqs.  The
        # crash region's in-flight stores are exactly the last
        # ``len(inflight)`` store entries of the provenance.
        region_stores = stores[len(stores) - len(session.region.inflight):]
        for unit_index in minimal:
            for pos in session.region.unit_positions[unit_index]:
                seqs.append(region_stores[pos].seq)
        return MinimizationResult(
            target=target,
            original_dropped=tuple(dropped),
            minimal_dropped=tuple(minimal),
            culprit_seqs=tuple(sorted(seqs)),
            n_replays=spent + 1,
            budget_exhausted=exhausted,
        )

    if tel is not None:
        with tel.span("forensics.minimize", target=target,
                      dropped=len(dropped), budget=budget):
            result = run()
        tel.count("forensics.minimizations")
        return result
    return run()


@dataclass
class WorkloadMinimizationResult:
    """Outcome of one workload (op-sequence) minimization."""

    #: Consequence name the pass preserved.
    target: str
    #: Descriptions of the full original workload, in program order.
    original_ops: Tuple[str, ...]
    #: Descriptions of the minimal subsequence still reproducing the target.
    minimal_ops: Tuple[str, ...]
    #: Indices into the original workload of the minimal subsequence.
    minimal_indices: Tuple[int, ...]
    #: Full harness runs spent.
    n_runs: int
    #: True when the budget ran out before the pass converged.
    budget_exhausted: bool
    #: False when even the full workload no longer produces the target
    #: consequence — the remaining fields are then meaningless.
    reproduced: bool = True

    @property
    def removed(self) -> int:
        return len(self.original_ops) - len(self.minimal_ops)

    def describe(self) -> str:
        if not self.reproduced:
            return f"workload minimization failed: {self.target} did not reproduce"
        note = " [budget exhausted]" if self.budget_exhausted else ""
        return (
            f"minimal workload: {len(self.minimal_ops)} of "
            f"{len(self.original_ops)} op(s) suffice for {self.target} "
            f"({self.n_runs} runs{note})"
        )

    def headline(self) -> str:
        """One timeline-header line naming the essential ops."""
        if not self.reproduced:
            return f"minimal workload: (not reproduced for {self.target})"
        ops = "; ".join(self.minimal_ops) or "<empty>"
        return (
            f"minimal workload: {ops} "
            f"({len(self.minimal_ops)} of {len(self.original_ops)} op(s))"
        )


def minimize_workload(
    prov,
    target: str,
    budget: int = DEFAULT_WORKLOAD_BUDGET,
    telemetry=None,
) -> WorkloadMinimizationResult:
    """Shrink a provenance's workload to the ops essential for ``target``.

    Runs ddmin over the op *subsequence* lattice: each candidate re-runs the
    full harness pipeline (record, oracle, enumerate, check) on the
    subsequence — with the original setup phase intact — and reproduces when
    any resulting crash state files the target consequence.  Unlike the
    store-set pass this explores different recordings, so it cannot share
    the replay session or the verdict cache; each test costs a full
    pipeline run and the default budget is correspondingly small.
    """
    from repro.core.harness import Chipmunk, ChipmunkConfig
    from repro.forensics.provenance import ops_from_tuples
    from repro.fs.bugs import BugConfig

    tel = telemetry if telemetry is not None and telemetry.enabled else None
    workload = ops_from_tuples(prov.workload)
    setup = ops_from_tuples(prov.setup)
    bugs = BugConfig(frozenset(prov.bug_ids))
    config = ChipmunkConfig(
        device_size=prov.device_size,
        cap=prov.cap,
        coalesce_threshold=prov.coalesce_threshold,
        usability_check=prov.usability_check,
        crash_points=prov.crash_points,
        forensics=False,  # candidates need verdicts, not new provenance
    )

    def test(indices: List[int]) -> bool:
        if tel is not None:
            tel.count("forensics.workload_runs")
        candidate = [workload[i] for i in indices]
        chipmunk = Chipmunk(prov.fs_name, bugs=bugs, config=config)
        result = chipmunk.test_workload(candidate, setup=setup)
        return any(r.consequence.name == target for r in result.reports)

    indices = list(range(len(workload)))
    descriptions = tuple(op.describe() for op in workload)

    def run() -> WorkloadMinimizationResult:
        if not test(indices):
            return WorkloadMinimizationResult(
                target=target,
                original_ops=descriptions,
                minimal_ops=descriptions,
                minimal_indices=tuple(indices),
                n_runs=1,
                budget_exhausted=False,
                reproduced=False,
            )
        minimal, spent, exhausted = ddmin(indices, test, budget=budget)
        minimal = sorted(minimal)
        return WorkloadMinimizationResult(
            target=target,
            original_ops=descriptions,
            minimal_ops=tuple(descriptions[i] for i in minimal),
            minimal_indices=tuple(minimal),
            n_runs=spent + 1,
            budget_exhausted=exhausted,
        )

    if tel is not None:
        with tel.span("forensics.minimize_workload", target=target,
                      ops=len(workload), budget=budget):
            result = run()
        tel.count("forensics.workload_minimizations")
        return result
    return run()
