"""Rendering a crash lineage: ASCII timelines, Chrome traces, image diffs.

Three views of the same :class:`~repro.forensics.provenance.CrashProvenance`:

* :func:`render_timeline` — a plain-text ordering timeline grouped by fence
  epoch, with persisted/dropped fates per store and the minimizer's culprit
  set highlighted.  Deterministic and byte-stable, so it can live in bug
  reports and golden tests.
* :func:`provenance_to_chrome` / :func:`write_chrome_trace` — the lineage as
  a Chrome trace-event document (``chrome://tracing`` / Perfetto), reusing
  the exporter in :mod:`repro.obs.tracing`.  Log sequence numbers stand in
  for timestamps: what matters in a persistence trace is ordering, not
  wall-clock duration.
* :func:`render_image_diff` — contiguous byte ranges where the crashed
  image diverges from a reference image, mapped through the file system's
  :class:`~repro.fs.common.layout.LayoutMap` so a range reads as
  ``inode_table[3]+0x40`` instead of a raw address.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fs.common.layout import LayoutMap
from repro.forensics.provenance import (
    DROPPED,
    REPLAYED,
    CrashProvenance,
    ProvEntry,
)
from repro.obs.tracing import spans_to_chrome


# ----------------------------------------------------------------------
# ASCII ordering timeline
# ----------------------------------------------------------------------
def _annotate(entry: ProvEntry, layout: Optional[LayoutMap]) -> str:
    if layout is None or entry.addr < 0:
        return ""
    return "  " + layout.locate_range(entry.addr, max(entry.length, 1))


def _store_line(
    entry: ProvEntry,
    layout: Optional[LayoutMap],
    culprits: frozenset,
) -> str:
    mark = " *" if entry.seq in culprits else "  "
    status = entry.status.upper() if entry.status in (REPLAYED, DROPPED) else entry.status
    return (
        f"  seq {entry.seq:>4}{mark}{entry.kind:<6} {status:<9}"
        f"{entry.func:<28} addr={entry.addr:#08x} len={entry.length:<5}"
        f"{_annotate(entry, layout)}"
    ).rstrip()


def render_timeline(
    prov: CrashProvenance,
    layout: Optional[LayoutMap] = None,
    culprit_seqs: Sequence[int] = (),
    workload_min=None,
) -> str:
    """The lineage as a fence-epoch ordering timeline (plain text).

    ``culprit_seqs`` — log sequence numbers from a
    :class:`~repro.forensics.minimize.MinimizationResult` — are starred.
    ``workload_min`` — a
    :class:`~repro.forensics.minimize.WorkloadMinimizationResult` — adds a
    minimal-workload header line; existing callers passing ``None`` get
    byte-identical output.
    """
    culprits = frozenset(culprit_seqs)
    counts = prov.counts()
    lines = [
        f"ordering timeline: {prov.fs_name}, crash {prov.where()}",
        (
            f"stores: {counts[REPLAYED]} replayed, {counts[DROPPED]} dropped"
            f" in flight, {counts['durable']} durable"
            f" | fence epochs: {prov.n_epochs} | state: {prov.state_kind}"
        ),
    ]
    if workload_min is not None:
        lines.append(workload_min.headline())
    current_epoch = -1
    for entry in prov.entries:
        if entry.epoch != current_epoch:
            current_epoch = entry.epoch
            crash = "   <<< crash region >>>" if current_epoch == prov.fence_index else ""
            lines.append("")
            lines.append(f"epoch {current_epoch}{crash}")
        if entry.kind in ("store", "flush"):
            lines.append(_store_line(entry, layout, culprits))
        elif entry.kind == "fence":
            lines.append(
                f"  seq {entry.seq:>4}  ----- fence ----- {entry.func}"
            )
        elif entry.kind == "syscall_begin":
            lines.append(f"  seq {entry.seq:>4}  > syscall #{entry.syscall} {entry.label}")
        elif entry.kind == "syscall_end":
            lines.append(f"  seq {entry.seq:>4}  < syscall #{entry.syscall} {entry.label} done")
    lines.append("")
    lines.append(f"===== crash point: log position {prov.log_pos} =====")
    if culprits:
        lines.append(
            f"* = minimal culprit store set ({len(culprits)} unpersisted entr"
            f"{'y' if len(culprits) == 1 else 'ies'} sufficient for the failure)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def provenance_to_chrome(
    prov: CrashProvenance,
    culprit_seqs: Sequence[int] = (),
) -> Dict[str, object]:
    """The lineage as a Chrome trace-event document.

    Log sequence numbers are used as timestamps (one unit per entry):
    syscalls become enclosing spans, stores/flushes unit-width spans tagged
    with their persistence fate, and fences instant events.
    """
    culprits = frozenset(culprit_seqs)
    records: List[Dict[str, object]] = []
    begins: Dict[int, ProvEntry] = {}
    for entry in prov.entries:
        if entry.kind == "syscall_begin" and entry.syscall is not None:
            begins[entry.syscall] = entry
        elif entry.kind == "syscall_end" and entry.syscall is not None:
            begin = begins.pop(entry.syscall, None)
            if begin is not None:
                records.append({
                    "type": "span",
                    "name": f"syscall #{entry.syscall} {begin.label}",
                    "ts": float(begin.seq),
                    "dur": float(entry.seq - begin.seq),
                })
        elif entry.kind in ("store", "flush"):
            attrs: Dict[str, object] = {
                "status": entry.status,
                "epoch": entry.epoch,
                "addr": f"{entry.addr:#x}",
                "length": entry.length,
                "seq": entry.seq,
            }
            if entry.seq in culprits:
                attrs["culprit"] = True
            records.append({
                "type": "span",
                "name": f"{entry.kind}:{entry.status} {entry.func}",
                "ts": float(entry.seq),
                "dur": 1.0,
                "attrs": attrs,
            })
        elif entry.kind == "fence":
            records.append({
                "type": "event",
                "name": f"fence (epoch {entry.epoch} ends)",
                "ts": float(entry.seq),
                "fields": {"func": entry.func, "seq": entry.seq},
            })
    # A syscall interrupted by the crash never saw its end marker: close it
    # at the crash point so the span is visible in the trace.
    for index, begin in begins.items():
        records.append({
            "type": "span",
            "name": f"syscall #{index} {begin.label} [interrupted]",
            "ts": float(begin.seq),
            "dur": float(prov.log_pos - begin.seq),
        })
    records.append({
        "type": "event",
        "name": "CRASH",
        "ts": float(prov.log_pos),
        "fields": {"state_kind": prov.state_kind, "where": prov.where()},
    })
    return spans_to_chrome(records)


def write_chrome_trace(
    prov: CrashProvenance,
    path: str,
    culprit_seqs: Sequence[int] = (),
) -> int:
    """Write the lineage as a Chrome trace file; returns the event count."""
    doc = provenance_to_chrome(prov, culprit_seqs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


# ----------------------------------------------------------------------
# Annotated image diff
# ----------------------------------------------------------------------
def diff_ranges(a: bytes, b: bytes) -> List[Tuple[int, int]]:
    """Contiguous ``(offset, length)`` ranges where ``a`` and ``b`` differ.

    A length difference counts as a trailing differing range.
    """
    n = min(len(a), len(b))
    out: List[Tuple[int, int]] = []
    start = -1
    for i in range(n):
        if a[i] != b[i]:
            if start < 0:
                start = i
        elif start >= 0:
            out.append((start, i - start))
            start = -1
    if start >= 0:
        out.append((start, n - start))
    if len(a) != len(b):
        out.append((n, max(len(a), len(b)) - n))
    return out


def _preview(data: bytes, offset: int, length: int, cap: int = 16) -> str:
    chunk = data[offset : offset + min(length, cap)]
    suffix = ".." if length > cap else ""
    return chunk.hex() + suffix if chunk else "<absent>"


def render_image_diff(
    crashed: bytes,
    reference: bytes,
    layout: Optional[LayoutMap] = None,
    label: str = "reference image",
    max_ranges: int = 16,
) -> str:
    """Byte-range diff of a crashed image against a reference image.

    Each differing range is annotated through ``layout`` so it names the
    on-PM structure it falls in.  The listing is capped at ``max_ranges``
    ranges (a note reports how many were elided).
    """
    ranges = diff_ranges(crashed, reference)
    total = sum(length for _, length in ranges)
    lines = [
        f"image diff vs {label}: {len(ranges)} range(s), {total} byte(s) differ"
    ]
    if not ranges:
        return lines[0]
    for offset, length in ranges[:max_ranges]:
        where = (
            layout.locate_range(offset, length)
            if layout is not None
            else f"{offset:#x}"
        )
        lines.append(
            f"  {where} ({offset:#x}, {length} bytes): "
            f"{_preview(crashed, offset, length)} -> "
            f"{_preview(reference, offset, length)}"
        )
    if len(ranges) > max_ranges:
        lines.append(f"  ... {len(ranges) - max_ranges} more range(s) elided")
    return "\n".join(lines)
