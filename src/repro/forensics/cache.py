"""Cross-report minimization cache.

A campaign's ``bugs.json`` typically holds many reports that share one
*reproduction context* (same file system, workload, bug configuration, and
harness knobs) and often one *crash point*: the checker files several
consequences against the same crash state, and triage keeps an exemplar of
each.  Explaining them independently re-records the workload N times and
re-replays the same candidate subsets over and over.

This module memoizes both layers:

* **Session cache** — rebuilt :class:`~repro.forensics.replay.Recording`
  objects keyed by the full reproduction context.  Explaining N reports
  that share a context costs one recording (the expensive half of
  :func:`~repro.forensics.replay.rebuild_session`); the per-crash-point
  session derivation stays cheap and uncached.
* **Verdict cache** — checker outcomes keyed by (context, crash point,
  persisted-subset).  The subset component is a frozenset of in-flight
  positions, so the key is stable under any reordering of an equal store
  set; ddmin passes over reports sharing a crash point re-use each other's
  replays.

Both caches surface hit/miss counters through
:class:`repro.obs.metrics.CacheCounters` (``forensics.cache.session.*`` and
``forensics.cache.verdict.*``) when a telemetry object is attached.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.forensics.provenance import CrashProvenance
from repro.forensics.replay import (
    Recording,
    ReplaySession,
    rebuild_recording,
    session_from_recording,
)
from repro.obs.metrics import CacheCounters

#: Hashable identity of one reproduction context.
ContextKey = Tuple
#: Hashable identity of one checker replay.
SubsetKey = Tuple


def context_key(prov: CrashProvenance) -> ContextKey:
    """The reproduction-context identity of a provenance.

    Two provenances with equal keys rebuild byte-identical recordings
    (recording is deterministic); any differing field — file system,
    workload, setup, bug set, or harness knob — must yield a different key,
    or the session cache would hand back a mismatched session.
    """
    return (
        prov.fs_name,
        prov.workload,
        prov.setup,
        tuple(sorted(prov.bug_ids)),
        prov.cap,
        prov.coalesce_threshold,
        prov.device_size,
        prov.crash_points,
        prov.usability_check,
    )


def subset_key(
    prov: CrashProvenance, persisted_positions: Sequence[int]
) -> SubsetKey:
    """Identity of one checker replay: context + crash point + persisted set.

    ``persisted_positions`` are in-flight vector positions (the stable
    coordinates of the crash region); the frozenset makes the key
    order-insensitive, so equal sets presented in any order — ddmin chunks,
    complements, re-splits — hash to the same verdict.
    """
    return (
        context_key(prov),
        prov.log_pos,
        frozenset(int(p) for p in persisted_positions),
    )


class ForensicsCache:
    """Shared recording sessions and ddmin verdicts for a batch of reports."""

    def __init__(self, telemetry=None) -> None:
        self._telemetry = telemetry if telemetry is not None else None
        registry = (
            telemetry.metrics
            if telemetry is not None and getattr(telemetry, "enabled", False)
            else None
        )
        self.session_counters = CacheCounters(
            "forensics.cache.session", registry
        )
        self.verdict_counters = CacheCounters(
            "forensics.cache.verdict", registry
        )
        self._recordings: Dict[ContextKey, Recording] = {}
        self._verdicts: Dict[SubsetKey, FrozenSet[str]] = {}

    # ------------------------------------------------------------------
    # Session layer
    # ------------------------------------------------------------------
    @property
    def n_recordings(self) -> int:
        return len(self._recordings)

    def session(self, prov: CrashProvenance) -> ReplaySession:
        """A replay session for ``prov``, sharing recordings by context.

        Only the context-level recording is cached; the returned session's
        crash region is always derived fresh from this provenance's crash
        point, so a hit can never leak another report's crash state.
        """
        key = context_key(prov)
        recording = self._recordings.get(key)
        if recording is None:
            self.session_counters.miss()
            recording = rebuild_recording(prov, telemetry=self._telemetry)
            self._recordings[key] = recording
        else:
            self.session_counters.hit()
        return session_from_recording(prov, recording)

    # ------------------------------------------------------------------
    # Verdict layer
    # ------------------------------------------------------------------
    def check_positions(
        self, session: ReplaySession, persisted_units: Sequence[int]
    ) -> FrozenSet[str]:
        """Checker outcome for a persisted unit set, memoized by position set.

        The cache key uses in-flight *positions* rather than unit indices:
        positions are the canonical coordinates of the crash region, so two
        sessions over the same context and crash point share verdicts even
        though they coalesced units independently.
        """
        positions = session.region.positions_of(persisted_units)
        key = subset_key(session.prov, positions)
        outcome = self._verdicts.get(key)
        if outcome is None:
            self.verdict_counters.miss()
            outcome = frozenset(
                r.consequence.name
                for r in session.check_units(list(persisted_units))
            )
            self._verdicts[key] = outcome
        else:
            self.verdict_counters.hit()
        return outcome

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"{self.session_counters.describe()}; "
            f"{self.verdict_counters.describe()}"
        )

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for reports and tests."""
        return {
            "session_hits": self.session_counters.hits.value,
            "session_misses": self.session_counters.misses.value,
            "verdict_hits": self.verdict_counters.hits.value,
            "verdict_misses": self.verdict_counters.misses.value,
            "recordings": len(self._recordings),
            "verdicts": len(self._verdicts),
        }
