"""Bug forensics: crash-state provenance, minimization, and timelines.

The subsystem turns a confirmed checker failure into a diagnosis:

* :mod:`repro.forensics.provenance` — store-level lineage
  (:class:`CrashProvenance`) captured when a failing crash state is
  materialized and attached to :class:`~repro.core.report.BugReport`;
* :mod:`repro.forensics.replay` — offline rematerialization of a crash
  state from its provenance (the engine behind ``python -m repro explain``);
* :mod:`repro.forensics.minimize` — delta-debugging pass that shrinks the
  dropped store set to a minimal culprit set reproducing the same outcome;
* :mod:`repro.forensics.timeline` — fence-epoch ordering timelines (ASCII
  and Chrome trace-event) and layout-annotated image diffs;
* :mod:`repro.forensics.explain` — the ``repro explain`` driver.

Only the dependency-light provenance layer is imported eagerly; the replay
and explain layers import the harness and are loaded as submodules to keep
``repro.core`` ↔ ``repro.forensics`` imports acyclic.
"""

from repro.forensics.provenance import (
    CrashProvenance,
    ProvEntry,
    ProvenanceRecorder,
    capture_provenance,
)

__all__ = [
    "CrashProvenance",
    "ProvEntry",
    "ProvenanceRecorder",
    "capture_provenance",
]
