"""Bug forensics: crash-state provenance, minimization, and timelines.

The subsystem turns a confirmed checker failure into a diagnosis:

* :mod:`repro.forensics.provenance` — store-level lineage
  (:class:`CrashProvenance`) captured when a failing crash state is
  materialized and attached to :class:`~repro.core.report.BugReport`;
* :mod:`repro.forensics.replay` — offline rematerialization of a crash
  state from its provenance (the engine behind ``python -m repro explain``);
* :mod:`repro.forensics.minimize` — delta-debugging passes that shrink
  the dropped store set to a minimal culprit set and the op sequence to a
  minimal workload reproducing the same outcome;
* :mod:`repro.forensics.cache` — cross-report minimization cache:
  recordings keyed by repro context, ddmin verdicts keyed by
  persisted-subset hash;
* :mod:`repro.forensics.timeline` — fence-epoch ordering timelines (ASCII
  and Chrome trace-event) and layout-annotated image diffs;
* :mod:`repro.forensics.explain` — the ``repro explain`` driver;
* :mod:`repro.forensics.batch` — ``repro explain --all``: every report in
  a campaign's ``bugs.json`` through one shared cache, clustered by
  culprit site, rendered to ``forensics.md``.

Only the dependency-light provenance layer is imported eagerly; the replay
and explain layers import the harness and are loaded as submodules to keep
``repro.core`` ↔ ``repro.forensics`` imports acyclic.
"""

from repro.forensics.provenance import (
    CrashProvenance,
    ProvEntry,
    ProvenanceRecorder,
    capture_provenance,
)

__all__ = [
    "CrashProvenance",
    "ProvEntry",
    "ProvenanceRecorder",
    "capture_provenance",
]
