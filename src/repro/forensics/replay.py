"""Offline rematerialization of crash states from saved provenance.

Recording is deterministic (the simulated file systems have no hidden
entropy), so a :class:`~repro.forensics.provenance.CrashProvenance` is a
complete recipe: rebuild the harness from the context fields, re-record the
workload to recover the base image and write log, then replay any subset of
the crash region's in-flight write units — including subsets the original
enumeration never generated, which is what the minimizer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.checker import CheckerConfig, ConsistencyChecker
from repro.core.harness import Chipmunk, ChipmunkConfig
from repro.core.oracle import run_oracle
from repro.core.replayer import (
    CrashState,
    apply_entries,
    coalesce_units,
    unit_positions,
)
from repro.core.report import BugReport
from repro.forensics.provenance import CrashProvenance, ops_from_tuples
from repro.fs.bugs import BugConfig
from repro.pm.image import CrashImage, FenceBase
from repro.pm.log import Fence, Flush, NTStore, PMLog, WriteEntry
from repro.workloads.ops import describe_workload


def outcome_of(reports: Sequence[BugReport]) -> FrozenSet[str]:
    """Checker outcome of one state: the set of consequence names."""
    return frozenset(r.consequence.name for r in reports)


@dataclass
class CrashRegion:
    """The crash fence region of a rebuilt log: base image + in-flight units."""

    #: Persistent image with every pre-crash fence applied, as the shared
    #: fence base every rematerialized state of this region builds on —
    #: the minimizer re-checks dozens of subsets per region, and each one
    #: costs O(overlay) instead of an image copy.
    base: FenceBase
    #: In-flight write entries of the crash region, in program order.
    inflight: List[WriteEntry]
    #: Coalesced replay units; ``units[i]`` covers ``unit_positions[i]``.
    units: List[List[WriteEntry]]
    #: In-flight vector positions covered by each unit.
    unit_positions: List[Tuple[int, ...]]

    @property
    def persistent(self) -> bytes:
        """The flat persistent image (the fence base's snapshot)."""
        return self.base.data

    def positions_of(self, unit_indices: Sequence[int]) -> Tuple[int, ...]:
        out: List[int] = []
        for i in unit_indices:
            out.extend(self.unit_positions[i])
        return tuple(sorted(out))

    def units_of(self, positions: Sequence[int]) -> Tuple[int, ...]:
        """Map in-flight positions back to the units covering them.

        Raises ``ValueError`` when the positions split a unit — replay
        always persists whole units.
        """
        wanted = set(positions)
        chosen: List[int] = []
        for i, covered in enumerate(self.unit_positions):
            hit = wanted & set(covered)
            if not hit:
                continue
            if hit != set(covered):
                raise ValueError(
                    f"positions {sorted(wanted)} split replay unit {i} "
                    f"(covers {covered})"
                )
            chosen.append(i)
        return tuple(chosen)


def crash_region(prov: CrashProvenance, base: bytes, log: PMLog) -> CrashRegion:
    """Walk the rebuilt log up to the crash point and split it into the
    persistent base and the crash region's coalesced in-flight units."""
    persistent = bytearray(base)
    inflight: List[WriteEntry] = []
    for entry in log.entries[: prov.log_pos]:
        if isinstance(entry, Fence):
            apply_entries(persistent, inflight)
            inflight.clear()
        elif isinstance(entry, (NTStore, Flush)):
            inflight.append(entry)
    units = coalesce_units(inflight, prov.coalesce_threshold)
    return CrashRegion(
        base=FenceBase(bytes(persistent)),
        inflight=inflight,
        units=units,
        unit_positions=unit_positions(units),
    )


def materialize_state(
    prov: CrashProvenance,
    region: CrashRegion,
    unit_indices: Sequence[int],
    kind: Optional[str] = None,
) -> CrashState:
    """Build the crash state persisting exactly ``unit_indices``.

    With ``kind=None`` the state reproduces the provenance's original
    crash-point flavor (so descriptions — and therefore report text —
    match byte-for-byte); the minimizer passes explicit unit subsets and
    keeps the original flavor's checker semantics via the copied
    ``mid_syscall``/``after_syscall`` fields.
    """
    kind = kind if kind is not None else prov.state_kind
    chosen: List[WriteEntry] = []
    for i in sorted(unit_indices):
        chosen.extend(region.units[i])
    image = CrashImage(region.base, tuple((e.addr, e.data) for e in chosen))
    if kind == "post":
        desc: Tuple[str, ...] = (
            ("<post-syscall; in-flight writes lost>",)
            if region.inflight
            else ("<post-syscall>",)
        )
    elif kind == "final":
        desc = ("<final state>",)
    else:
        desc = tuple(e.describe() for e in chosen) or ("<none persisted>",)
    return CrashState(
        image=image,
        fence_index=prov.fence_index,
        syscall=prov.syscall,
        syscall_name=prov.syscall_name,
        mid_syscall=prov.mid_syscall,
        after_syscall=prov.after_syscall,
        subset_desc=desc,
        n_replayed=len(unit_indices),
        log_pos=prov.log_pos,
        replayed_entries=region.positions_of(unit_indices),
        kind=kind,
    )


@dataclass
class ReplaySession:
    """Everything needed to re-check crash states of one saved bug."""

    prov: CrashProvenance
    chipmunk: Chipmunk
    base: bytes
    log: PMLog
    checker: ConsistencyChecker
    region: CrashRegion
    #: Unit indices the original crash state persisted.
    original_units: Tuple[int, ...]

    @property
    def dropped_units(self) -> Tuple[int, ...]:
        return tuple(
            i for i in range(len(self.region.units))
            if i not in set(self.original_units)
        )

    def check_units(self, unit_indices: Sequence[int]) -> List[BugReport]:
        """Checker verdict for the state persisting ``unit_indices``."""
        state = materialize_state(
            self.prov,
            self.region,
            unit_indices,
            kind=None if set(unit_indices) == set(self.original_units)
            else "subset",
        )
        return self.checker.check(state)

    def original_state(self) -> CrashState:
        return materialize_state(self.prov, self.region, self.original_units)

    def original_reports(self) -> List[BugReport]:
        return self.checker.check(self.original_state())


@dataclass
class Recording:
    """The crash-point-independent part of a rebuilt session.

    Re-recording the workload (mkfs + setup + probed execution + oracle)
    dominates the cost of :func:`rebuild_session`; everything in this
    object depends only on the provenance's *reproduction context* — not on
    where the crash happened — so reports sharing a context can share one
    ``Recording`` (:mod:`repro.forensics.cache`).
    """

    chipmunk: Chipmunk
    base: bytes
    log: PMLog
    checker: ConsistencyChecker


def rebuild_recording(prov: CrashProvenance, telemetry=None) -> Recording:
    """Re-record the workload of a saved provenance and set up checking.

    The rebuilt harness uses the same bug configuration, replay cap, and
    coalescing threshold as the original campaign run, so the recovered
    write log — and every derived crash state — is bit-identical.
    """
    bugs = BugConfig(frozenset(prov.bug_ids))
    config = ChipmunkConfig(
        device_size=prov.device_size,
        cap=prov.cap,
        coalesce_threshold=prov.coalesce_threshold,
        usability_check=prov.usability_check,
        crash_points=prov.crash_points,
    )
    chipmunk = Chipmunk(prov.fs_name, bugs=bugs, config=config,
                        telemetry=telemetry)
    workload = ops_from_tuples(prov.workload)
    setup = ops_from_tuples(prov.setup)
    base, log, _errnos = chipmunk.record(workload, setup=setup)
    oracle = run_oracle(
        chipmunk.fs_class, workload, config.device_size, bugs=bugs, setup=setup
    )
    checker = ConsistencyChecker(
        chipmunk.fs_class,
        oracle,
        describe_workload(workload),
        bugs=bugs,
        config=CheckerConfig(usability_check=config.usability_check),
    )
    return Recording(chipmunk=chipmunk, base=base, log=log, checker=checker)


def session_from_recording(
    prov: CrashProvenance, recording: Recording
) -> ReplaySession:
    """Derive the crash-point-specific session from a shared recording.

    This is the cheap half of :func:`rebuild_session`: walking the already-
    recorded log up to this provenance's crash point and coalescing the
    in-flight units.  The caller is responsible for only pairing a
    provenance with a recording rebuilt from the same reproduction context.
    """
    region = crash_region(prov, recording.base, recording.log)
    if prov.log_pos > len(recording.log.entries):
        raise ValueError(
            f"provenance crash point {prov.log_pos} beyond rebuilt log of "
            f"{len(recording.log.entries)} entries — recording is not "
            "reproducing"
        )
    original_units = region.units_of(prov.replayed_entries)
    return ReplaySession(
        prov=prov,
        chipmunk=recording.chipmunk,
        base=recording.base,
        log=recording.log,
        checker=recording.checker,
        region=region,
        original_units=original_units,
    )


def rebuild_session(prov: CrashProvenance, telemetry=None) -> ReplaySession:
    """One-shot rebuild: re-record the context, then derive the session.

    Batch callers explaining many reports should go through
    :class:`repro.forensics.cache.ForensicsCache` instead, which shares the
    expensive recording across reports with the same reproduction context.
    """
    return session_from_recording(prov, rebuild_recording(prov, telemetry))
