"""Merge stage: fold per-worker results into one campaign report.

Parallel execution must not change *what the campaign found* — only how
fast it found it.  Three properties make the merged output equal a serial
run's:

1. **Canonical order.**  Results fold in work-item ordinal order (the
   serial execution order), never completion order, so the triage pass
   sees reports in the same sequence a single process would have.
2. **Cross-worker dedup.**  Clustering runs *here*, over the union of all
   workers' reports, through the same :class:`~repro.core.triage.Triage`
   the serial path uses — two workers finding the same bug yield one
   cluster, not two.
3. **Real objects.**  Serialized results rebuild into genuine
   :class:`~repro.core.harness.TestResult`s, so the existing aggregation
   (:class:`~repro.analysis.reporting.CampaignSummary`) is reused verbatim
   rather than reimplemented.

Per-worker telemetry traces are concatenated into one campaign trace; the
multi-file ``python -m repro stats`` path consumes either form.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.reporting import CampaignSummary, render_markdown
from repro.campaign.queue import WorkItem
from repro.campaign.spec import CampaignSpec
from repro.core.harness import TestResult
from repro.obs.coverage import coverage_from_results
from repro.obs.tracing import read_jsonl, write_jsonl


@dataclass
class MergedCampaign:
    """The campaign engine's final product."""

    spec: CampaignSpec
    summary: CampaignSummary
    #: Quarantine records (sorted by ordinal) — items the campaign gave up
    #: on after bounded retries; the report carries them so a campaign with
    #: failures is visibly incomplete rather than silently short.
    quarantined: List[dict] = field(default_factory=list)
    engine: Dict[str, object] = field(default_factory=dict)
    trace_path: Optional[str] = None

    @property
    def clusters(self):
        return self.summary.clusters

    @property
    def interrupted(self) -> bool:
        return bool(self.engine.get("interrupted"))

    def render_markdown(self) -> str:
        return render_markdown(
            self.summary,
            engine_meta=self.engine,
            quarantined=self.quarantined,
        )

    def console_summary(self) -> str:
        """The one-line summary ``cmd_ace`` prints, plus engine counters."""
        s = self.summary
        line = (
            f"{s.workloads_tested} workloads, {s.crash_states} crash states, "
            f"{len(s.clusters)} clusters, {s.wall_time:.1f}s cpu"
        )
        wall = self.engine.get("wall_clock")
        if wall is not None:
            line += f", {float(wall):.1f}s wall"
        line += (
            f" [{self.engine.get('workers', '?')} workers, "
            f"{self.engine.get('steals', 0)} steals, "
            f"{self.engine.get('requeues', 0)} requeues, "
            f"{len(self.quarantined)} quarantined]"
        )
        memo = self.engine.get("shared_memo") or {}
        if memo or s.memo_shared_hits:
            line += (
                f"\n[shared memo] {s.memo_shared_hits} cross-workload "
                f"hit(s) served"
            )
            if memo:
                line += (
                    f"; service table: {memo.get('entries', 0)} entrie(s) "
                    f"({memo.get('buggy', 0)} buggy pinned), "
                    f"{memo.get('hits', 0)}/{memo.get('hits', 0) + memo.get('misses', 0)} "
                    f"lookup(s) hit, {memo.get('evictions', 0)} eviction(s)"
                )
        if self.interrupted:
            line += " [INTERRUPTED — resume with --resume]"
        return line


def merge_results(
    spec: CampaignSpec,
    items: List[WorkItem],
    results: Dict[str, List[dict]],
) -> CampaignSummary:
    """Fold serialized per-item results into a summary, in canonical order."""
    summary = CampaignSummary(fs_name=spec.fs, generator=spec.generator)
    for item in sorted(items, key=lambda i: i.ordinal):
        for result_dict in results.get(item.item_id, ()):
            summary.add_result(TestResult.from_dict(result_dict))
    return summary


def merge_worker_traces(campaign_dir: str) -> Optional[str]:
    """Concatenate ``worker-*.trace.jsonl`` into one campaign trace file."""
    paths = sorted(glob.glob(os.path.join(campaign_dir, "worker-*.trace.jsonl")))
    if not paths:
        return None
    records: List[dict] = []
    for path in paths:
        records.extend(read_jsonl(path))
    out = os.path.join(campaign_dir, "trace.jsonl")
    write_jsonl(out, records)
    return out


def merge_campaign(
    spec: CampaignSpec,
    items: List[WorkItem],
    results: Dict[str, List[dict]],
    quarantined: Dict[str, dict],
    engine_stats,
    campaign_dir: Optional[str] = None,
) -> MergedCampaign:
    """Full merge: summary + quarantine + traces + report file."""
    summary = merge_results(spec, items, results)
    merged = MergedCampaign(
        spec=spec,
        summary=summary,
        quarantined=sorted(
            quarantined.values(), key=lambda r: int(r.get("ordinal", 0))
        ),
        engine=engine_stats.to_dict(),
    )
    if campaign_dir is not None:
        merged.trace_path = merge_worker_traces(campaign_dir)
        report_path = os.path.join(campaign_dir, "report.md")
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(merged.render_markdown())
        # Exploration-coverage analytics next to the findings report: the
        # same ordinal-ordered result dicts, viewed as distributions
        # (window CDFs, store breakdowns, memo-miss attribution).
        coverage = coverage_from_results(
            (
                result_dict
                for item in sorted(items, key=lambda i: i.ordinal)
                for result_dict in results.get(item.item_id, ())
            ),
            fs=spec.fs,
            generator=spec.generator,
            meta={"seq": spec.seq} if spec.generator == "ace" else None,
        )
        with open(os.path.join(campaign_dir, "coverage.md"), "w",
                  encoding="utf-8") as fh:
            fh.write(coverage.render_markdown())
        # One exemplar per triaged cluster, with provenance, in the
        # `--save-reports` shape — `python -m repro explain
        # DIR/bugs.json --index N` drives the forensic pass offline.
        bugs_path = os.path.join(campaign_dir, "bugs.json")
        with open(bugs_path, "w", encoding="utf-8") as fh:
            json.dump(
                {"reports": [c.exemplar.to_dict() for c in summary.clusters]},
                fh,
                sort_keys=True,
            )
    return merged
