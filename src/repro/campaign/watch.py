"""Live campaign monitor (``python -m repro watch CAMPAIGN_DIR``).

The campaign engine already externalizes everything a dashboard needs, as
a side effect of being crash-safe: the fsync'd checkpoint journal is an
append-only event log of per-item completions (now timestamped), and each
worker leaves a per-item heartbeat beacon.  The monitor is therefore a
pure *reader* — it attaches to a campaign directory from any terminal,
re-replays the journal each tick, and renders a refreshing dashboard:

* progress bar, throughput (recent items/min) and ETA,
* memo hit-rate and bugs-so-far folded from the journaled results,
* per-worker liveness from heartbeat mtimes (a worker grinding through a
  slow workload shows its current item; a wedged one shows as stale),
* quarantine count.

It exits 0 when the journal's ``campaign_done`` marker appears, so shell
scripts can ``repro ace ... &; repro watch DIR && notify``.  Re-replaying
the whole journal per tick is deliberate: journals are small (one line per
work item), and statelessness means the monitor survives the campaign
being killed, resumed, or finished between any two polls.
"""

from __future__ import annotations

import glob
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.journal import CheckpointJournal, JournalState

#: A heartbeat older than this is rendered as stale ("no heartbeat").
STALE_HEARTBEAT_S = 30.0
#: Throughput window: rate is computed over item completions this recent.
RATE_WINDOW_S = 60.0


@dataclass
class WorkerBeat:
    """One worker's last heartbeat beacon."""

    worker: int
    item: Optional[str]
    t: float

    @property
    def age(self) -> float:
        return max(0.0, time.time() - self.t)

    @property
    def stale(self) -> bool:
        return self.age > STALE_HEARTBEAT_S


@dataclass
class Snapshot:
    """One poll's view of a campaign directory."""

    state: JournalState
    beats: List[WorkerBeat] = field(default_factory=list)
    now: float = 0.0

    @property
    def n_done(self) -> int:
        return len(self.state.results)

    @property
    def n_quarantined(self) -> int:
        return len(self.state.quarantined)

    @property
    def n_items(self) -> Optional[int]:
        return self.state.n_items

    @property
    def complete(self) -> bool:
        return self.state.completed_marker

    @property
    def rate_per_min(self) -> float:
        """Item completions per minute over the recent window."""
        recent = [t for t in self.state.times.values()
                  if self.now - t <= RATE_WINDOW_S]
        if len(recent) < 2:
            # Fall back to the whole-campaign average when the window is
            # too thin (start-up, or a very slow campaign).
            stamps = sorted(self.state.times.values())
            if len(stamps) < 2:
                return 0.0
            span = stamps[-1] - stamps[0]
            return (len(stamps) - 1) / span * 60.0 if span > 0 else 0.0
        span = self.now - min(recent)
        return len(recent) / span * 60.0 if span > 0 else 0.0

    @property
    def eta_s(self) -> Optional[float]:
        if self.n_items is None or self.complete:
            return None
        remaining = self.n_items - self.n_done - self.n_quarantined
        rate = self.rate_per_min
        if remaining <= 0 or rate <= 0:
            return None
        return remaining / (rate / 60.0)

    def fold_counters(self) -> Dict[str, object]:
        """Sum the exploration counters out of the journaled results."""
        totals: Dict[str, object] = {
            "crash_states": 0, "checked": 0, "memo_hits": 0,
            "memo_misses": 0, "memo_shared_hits": 0, "memo_shared_errors": 0,
            "reports": 0, "mech_plans": 0,
            "mech_fallbacks": 0,
        }
        profile_bytes: Dict[str, int] = {}
        for results in self.state.results.values():
            for fields in results:
                totals["crash_states"] += int(fields.get("n_crash_states", 0))
                totals["checked"] += int(fields.get("n_unique_states", 0))
                totals["memo_hits"] += int(fields.get("memo_hits", 0))
                totals["memo_misses"] += int(fields.get("memo_misses", 0))
                totals["memo_shared_hits"] += int(
                    fields.get("memo_shared_hits", 0)
                )
                totals["memo_shared_errors"] += int(
                    fields.get("memo_shared_errors", 0)
                )
                totals["reports"] += len(list(fields.get("reports", [])))
                totals["mech_plans"] += int(
                    fields.get("mech_plans_emitted", 0)
                )
                totals["mech_fallbacks"] += int(
                    fields.get("mech_fallback_epochs", 0)
                )
                for cat, n in dict(
                    (fields.get("profile") or {}).get("bytes") or {}
                ).items():
                    profile_bytes[cat] = profile_bytes.get(cat, 0) + int(n)
        totals["profile_bytes"] = profile_bytes
        return totals


class CampaignMonitor:
    """Stateless poller + renderer over one campaign directory."""

    def __init__(self, campaign_dir: str) -> None:
        self.campaign_dir = campaign_dir

    def snapshot(self) -> Snapshot:
        state = CheckpointJournal.replay(self.campaign_dir)
        beats: List[WorkerBeat] = []
        for path in sorted(glob.glob(
            os.path.join(self.campaign_dir, "worker-*.hb")
        )):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
                beats.append(WorkerBeat(
                    worker=int(record.get("worker", -1)),
                    item=record.get("item"),
                    t=float(record.get("t", 0.0)),
                ))
            except (OSError, ValueError):
                continue  # torn beacon write: skip this poll, not fatal
        # A resumed campaign leaves beacons from several run tags; keep the
        # freshest beacon per worker id.
        freshest: Dict[int, WorkerBeat] = {}
        for beat in beats:
            if beat.worker not in freshest or beat.t > freshest[beat.worker].t:
                freshest[beat.worker] = beat
        return Snapshot(
            state=state,
            beats=[freshest[w] for w in sorted(freshest)],
            now=time.time(),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _fmt_eta(seconds: Optional[float]) -> str:
        if seconds is None:
            return "--"
        seconds = int(seconds)
        if seconds >= 3600:
            return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
        if seconds >= 60:
            return f"{seconds // 60}m{seconds % 60:02d}s"
        return f"{seconds}s"

    def render(self, snap: Snapshot, width: int = 72) -> str:
        lines: List[str] = []
        spec = snap.state.spec_dict or {}
        name = f"{spec.get('fs', '?')}/{spec.get('generator', '?')}"
        status = "COMPLETE" if snap.complete else "running"
        lines.append(f"campaign {self.campaign_dir}  [{name}]  {status}")

        n_items = snap.n_items
        done = snap.n_done
        if n_items:
            frac = min(1.0, (done + snap.n_quarantined) / n_items)
            bar_w = max(10, width - 30)
            filled = int(round(frac * bar_w))
            bar = "=" * filled + "-" * (bar_w - filled)
            lines.append(
                f"[{bar}] {done}/{n_items} ({frac * 100:.0f}%)"
            )
        else:
            lines.append(f"{done} item(s) done (total unknown)")

        rate = snap.rate_per_min
        lines.append(
            f"throughput {rate:.1f} items/min   "
            f"eta {self._fmt_eta(snap.eta_s)}   "
            f"quarantined {snap.n_quarantined}"
        )

        totals = snap.fold_counters()
        memo_total = totals["memo_hits"] + totals["memo_misses"]
        memo = (
            f"{totals['memo_hits'] / memo_total * 100:.0f}%"
            if memo_total else "--"
        )
        shared = ""
        if totals["memo_shared_hits"] or totals["memo_shared_errors"]:
            shared = (
                f"shared hits {totals['memo_shared_hits']}"
                + (
                    f" ({totals['memo_shared_errors']} err)"
                    if totals["memo_shared_errors"] else ""
                )
                + "   "
            )
        lines.append(
            f"crash states {totals['crash_states']}   "
            f"checked {totals['checked']}   "
            f"memo hit-rate {memo}   "
            f"{shared}"
            f"bug reports {totals['reports']}"
        )
        if totals["mech_plans"] or totals["mech_fallbacks"]:
            lines.append(
                f"mech plans {totals['mech_plans']}   "
                f"fallback epochs {totals['mech_fallbacks']}"
            )
        profile_bytes = totals["profile_bytes"]
        if any(profile_bytes.values()):
            from repro.obs.profile import human_bytes

            lines.append("profile bytes: " + "   ".join(
                f"{cat} {human_bytes(n)}"
                for cat, n in sorted(profile_bytes.items()) if n
            ))

        if snap.beats and not snap.complete:
            lines.append("workers:")
            for beat in snap.beats:
                if beat.stale:
                    liveness = f"STALE ({int(beat.age)}s without heartbeat)"
                elif beat.item:
                    liveness = f"running {beat.item} ({beat.age:.0f}s ago)"
                else:
                    liveness = f"idle ({beat.age:.0f}s ago)"
                lines.append(f"  w{beat.worker}: {liveness}")
        if snap.state.torn_lines:
            lines.append(f"(journal has {snap.state.torn_lines} torn line(s))")
        return "\n".join(lines)


def watch(
    campaign_dir: str,
    interval: float = 1.0,
    once: bool = False,
    timeout: Optional[float] = None,
    out=None,
) -> int:
    """Poll a campaign directory until it completes; returns an exit code.

    0 — campaign complete (or ``once`` rendered a frame); 2 — the directory
    has no journal; 3 — ``timeout`` elapsed before completion; 130 —
    interrupted.
    """
    out = out if out is not None else sys.stdout
    if not os.path.exists(
        os.path.join(campaign_dir, CheckpointJournal.FILENAME)
    ):
        print(f"no {CheckpointJournal.FILENAME} in {campaign_dir} — "
              f"not a campaign directory (or the campaign has not started)",
              file=out)
        return 2
    monitor = CampaignMonitor(campaign_dir)
    is_tty = hasattr(out, "isatty") and out.isatty()
    deadline = time.monotonic() + timeout if timeout is not None else None
    try:
        while True:
            snap = monitor.snapshot()
            frame = monitor.render(snap)
            if is_tty:
                # Clear + home: a refreshing dashboard, not a scrolling log.
                out.write("\x1b[2J\x1b[H" + frame + "\n")
            else:
                out.write(frame + "\n")
            out.flush()
            if snap.complete or once:
                return 0
            if deadline is not None and time.monotonic() >= deadline:
                print("watch timeout reached before campaign completion",
                      file=out)
                return 3
            time.sleep(interval)
    except KeyboardInterrupt:
        return 130
