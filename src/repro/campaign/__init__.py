"""Parallel, fault-tolerant campaign engine with checkpoint/resume.

The paper executed its largest campaign by hand-splitting 50k workloads
across ten VMs (section 4.2).  This package is that scale-out as a
subsystem: :class:`CampaignEngine` fans ACE shards (or fuzzer seed
segments) out to a local worker pool with work-stealing rebalancing, a
per-workload-timeout / bounded-retry / quarantine fault model, an
append-only checkpoint journal that makes any campaign killable and
resumable, and a merge stage whose output matches a serial run's.

Layout::

    spec.py     CampaignSpec — the JSON-round-trippable campaign closure
    queue.py    WorkItem, ShardedWorkQueue — sharding + work-stealing
    journal.py  CheckpointJournal — append-only JSONL checkpoint/resume
    worker.py   worker_main — the per-process execution loop
    engine.py   CampaignEngine — dispatch, fault handling, lifecycle
    merge.py    merge_campaign — canonical-order fold, cross-worker dedup

Entry point: ``python -m repro campaign <fs> --workers N [--resume]``.
"""

from repro.campaign.engine import (
    CampaignEngine,
    EngineConfig,
    EngineStats,
    SpecMismatch,
)
from repro.campaign.journal import CheckpointJournal, JournalState
from repro.campaign.merge import MergedCampaign, merge_campaign, merge_results
from repro.campaign.queue import ShardedWorkQueue, WorkItem, build_items
from repro.campaign.spec import CampaignSpec

__all__ = [
    "CampaignEngine",
    "EngineConfig",
    "EngineStats",
    "SpecMismatch",
    "CheckpointJournal",
    "JournalState",
    "MergedCampaign",
    "merge_campaign",
    "merge_results",
    "ShardedWorkQueue",
    "WorkItem",
    "build_items",
    "CampaignSpec",
]
