"""Campaign specification: everything a worker needs to rebuild its world.

A campaign crosses process boundaries twice — parent → worker at dispatch
and disk → parent at ``--resume`` — so the full configuration must round-
trip through plain JSON.  :class:`CampaignSpec` is that closure: file
system, bug configuration, harness knobs, generator parameters.  Workers
receive the dict form and call :meth:`CampaignSpec.build_chipmunk`;
``--resume`` compares the journal's stored spec against the requested one
and refuses to mix campaigns.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.core.harness import Chipmunk, ChipmunkConfig
from repro.fs.bugs import BugConfig
from repro.fs.registry import FS_CLASSES


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign's full, JSON-serializable configuration."""

    fs: str
    generator: str = "ace"  # "ace" | "fuzz"
    #: ``None`` means "all of the FS's catalogue bugs" (the CLI default);
    #: an explicit list pins the configuration, ``[]`` means fully fixed.
    bug_ids: Optional[List[int]] = None
    cap: Optional[int] = 2
    #: ACE parameters.
    seq: int = 1
    max_workloads: int = 0  # 0 = the whole sequence space
    #: Fuzzer parameters: the seed space [seed, seed + segments) is split
    #: into one work item per segment, each running ``executions`` programs.
    seed: int = 0
    segments: int = 4
    executions: int = 25
    #: Write per-worker telemetry traces into the campaign directory.
    trace: bool = False
    #: Content-addressed check memoization (``ChipmunkConfig.memoize``);
    #: part of the spec so a resumed campaign keeps the original setting.
    memoize: bool = True
    #: Crash-plan selection (``ChipmunkConfig.crash_plans``): ``"subset"``
    #: or ``"mech"``; in the spec so resumed campaigns and every worker
    #: explore the same state space.
    crash_plans: str = "subset"
    #: Hot-path profiler (``ChipmunkConfig.profile``): per-stage/per-site
    #: time and byte attribution recorded into each ``TestResult``.
    profile: bool = False
    #: Crash-image backend (``ChipmunkConfig.image_backend``): ``"auto"``
    #: picks numpy when importable; ``"python"``/``"numpy"`` pin one.  In
    #: the spec so every worker replays states on the same backend.
    image_backend: str = "auto"
    #: Campaign-wide shared check memo: workers dedup clean verdicts
    #: against one table instead of each rediscovering the same states.
    #: With :attr:`memo_address` unset the engine hosts the service itself
    #: on a loopback ephemeral port.
    shared_memo: bool = False
    #: ``HOST:PORT`` of an external ``repro memod`` — lets campaigns on
    #: several hosts share one table.  Implies :attr:`shared_memo`.
    memo_address: Optional[str] = None
    #: Local memo bound (``ChipmunkConfig.memo_entries``): LRU cap on
    #: clean verdict entries per workload memo; 0 = unbounded.
    memo_entries: int = 262144

    def __post_init__(self) -> None:
        if self.fs not in FS_CLASSES():
            raise ValueError(f"unknown file system {self.fs!r}")
        if self.generator not in ("ace", "fuzz"):
            raise ValueError(f"unknown generator {self.generator!r}")
        if self.generator == "ace" and self.seq not in (1, 2, 3):
            raise ValueError(f"seq must be 1, 2, or 3 (got {self.seq})")
        if self.crash_plans not in ("subset", "mech"):
            raise ValueError(f"unknown crash-plan mode {self.crash_plans!r}")
        from repro.pm.backend import BACKEND_CHOICES

        if self.image_backend not in BACKEND_CHOICES:
            raise ValueError(f"unknown image backend {self.image_backend!r}")
        if self.memo_address is not None:
            from repro.memo.client import parse_address

            parse_address(self.memo_address)  # raises ValueError if malformed
            # An external address only makes sense with sharing on; fold it
            # in so `memo_address and not shared_memo` is unrepresentable.
            object.__setattr__(self, "shared_memo", True)

    @property
    def mode(self) -> str:
        """ACE mode for this file system (paper section 3.4.1)."""
        return "pm" if FS_CLASSES()[self.fs].strong_guarantees else "fsync"

    def bug_config(self) -> BugConfig:
        if self.bug_ids is None:
            return BugConfig.buggy(self.fs)
        if not self.bug_ids:
            return BugConfig.fixed()
        return BugConfig.only(*self.bug_ids)

    def build_chipmunk(self, telemetry=None, shared_memo=None) -> Chipmunk:
        return Chipmunk(
            self.fs,
            bugs=self.bug_config(),
            config=ChipmunkConfig(
                cap=self.cap,
                memoize=self.memoize,
                crash_plans=self.crash_plans,
                profile=self.profile,
                image_backend=self.image_backend,
                memo_entries=self.memo_entries,
            ),
            telemetry=telemetry,
            shared_memo=shared_memo,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})
