"""Checkpoint journal: append-only JSONL that makes campaigns killable.

Record types (one JSON object per line)::

    {"type": "campaign_meta", "spec": {...}, "n_items": N}
    {"type": "item_done", "id": "ace:1:000007", "ordinal": 7, "worker": 0,
     "retries": 0, "results": [<TestResult.to_dict()>, ...]}
    {"type": "item_quarantined", "id": ..., "ordinal": ..., "retries": R,
     "error": "..."}
    {"type": "campaign_done", "elapsed": ...}

Every record additionally carries ``"t"``, a wall-clock timestamp stamped
centrally on append; ``python -m repro watch`` derives throughput and ETA
from the ``item_done`` stamps.  Replay tolerates records without it.

Every record is flushed and fsync'd on append, so a SIGKILL at any point
loses at most the in-flight (unjournaled) workloads — exactly the ones
``--resume`` is allowed to re-run.  A torn final line (the kill landed
mid-write) is detected and ignored on replay; the item it described simply
runs again.

``item_done`` carries the item's full serialized results (reports included)
rather than a bare index: the merge stage rebuilds the campaign's entire
bug set from the journal alone, which is what makes a resumed campaign's
report equal an uninterrupted one without re-executing finished work.
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class JournalState:
    """Everything replayable from a journal file."""

    spec_dict: Optional[Dict[str, object]] = None
    n_items: Optional[int] = None
    #: item id -> list of serialized TestResult dicts.
    results: Dict[str, List[dict]] = field(default_factory=dict)
    #: item id -> ordinal (canonical merge order).
    ordinals: Dict[str, int] = field(default_factory=dict)
    #: item id -> quarantine record.
    quarantined: Dict[str, dict] = field(default_factory=dict)
    completed_marker: bool = False
    torn_lines: int = 0
    #: item id -> wall-clock journal-append time (``repro watch`` derives
    #: throughput and ETA from these).
    times: Dict[str, float] = field(default_factory=dict)
    started_t: Optional[float] = None
    finished_t: Optional[float] = None

    @property
    def done_ids(self) -> set:
        return set(self.results) | set(self.quarantined)


class CheckpointJournal:
    """Append-only JSONL journal for one campaign directory."""

    FILENAME = "journal.jsonl"

    def __init__(self, campaign_dir: str) -> None:
        self.path = os.path.join(campaign_dir, self.FILENAME)
        self._fh: Optional[io.TextIOBase] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def open(self) -> None:
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _append(self, record: Dict[str, object]) -> None:
        if self._fh is None:
            raise RuntimeError("journal is not open")
        # Stamp every record centrally so the monitor can derive progress
        # rates without the writers having to care about time at all.
        record.setdefault("t", round(time.time(), 3))
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        # Flush + fsync per record: the journal is the campaign's crash
        # consistency, so it gets the durability the tested file systems
        # only aspire to.
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def write_meta(self, spec_dict: Dict[str, object], n_items: int) -> None:
        self._append({"type": "campaign_meta", "spec": spec_dict,
                      "n_items": n_items})

    def write_item_done(
        self, item_id: str, ordinal: int, worker: int, retries: int,
        results: List[dict],
    ) -> None:
        self._append({
            "type": "item_done", "id": item_id, "ordinal": ordinal,
            "worker": worker, "retries": retries, "results": results,
        })

    def write_item_quarantined(
        self, item_id: str, ordinal: int, retries: int, error: str,
    ) -> None:
        self._append({
            "type": "item_quarantined", "id": item_id, "ordinal": ordinal,
            "retries": retries, "error": error,
        })

    def write_done(self, elapsed: float) -> None:
        self._append({"type": "campaign_done", "elapsed": elapsed})

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @classmethod
    def replay(cls, campaign_dir: str) -> JournalState:
        """Parse a journal, tolerating a torn final line."""
        state = JournalState()
        path = os.path.join(campaign_dir, cls.FILENAME)
        if not os.path.exists(path):
            return state
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A kill mid-append tears at most the last line; the
                    # item it described is simply not marked done.
                    state.torn_lines += 1
                    continue
                kind = record.get("type")
                stamp = record.get("t")
                if kind == "campaign_meta":
                    state.spec_dict = dict(record.get("spec", {}))
                    state.n_items = record.get("n_items")
                    if stamp is not None:
                        state.started_t = float(stamp)
                elif kind == "item_done":
                    item_id = str(record.get("id"))
                    state.results[item_id] = list(record.get("results", []))
                    state.ordinals[item_id] = int(record.get("ordinal", 0))
                    if stamp is not None:
                        state.times[item_id] = float(stamp)
                    # A resume may legitimately re-complete an item that was
                    # in flight at kill time; last write wins.
                    state.quarantined.pop(item_id, None)
                elif kind == "item_quarantined":
                    item_id = str(record.get("id"))
                    if item_id not in state.results:
                        state.quarantined[item_id] = record
                        state.ordinals[item_id] = int(record.get("ordinal", 0))
                        if stamp is not None:
                            state.times[item_id] = float(stamp)
                elif kind == "campaign_done":
                    state.completed_marker = True
                    if stamp is not None:
                        state.finished_t = float(stamp)
        return state
