"""Campaign worker: the process that actually runs workloads.

Each worker owns a private :class:`~repro.core.harness.Chipmunk` instance
rebuilt from the campaign spec (nothing heavier than a dict crosses the
process boundary) and a pair of queues: the parent pushes batches of
:class:`~repro.campaign.queue.WorkItem` on the task queue, the worker
streams one message per completed workload back on its result queue.
Per-item streaming is what gives the parent per-workload progress — the
engine's timeout clock resets on every message, and a killed worker only
orphans items whose results have not been streamed yet.

ACE items are regenerated worker-side from their index via
:func:`repro.workloads.ace.workload_at`; fuzz items run a whole seed
segment (a fresh :class:`~repro.workloads.fuzzer.WorkloadFuzzer` seeded
with the segment's seed) and stream one result per execution, so both
generators merge identically.

Queue messages are *not* crash-durable: ``multiprocessing.Queue`` buffers
through a feeder thread, so a worker that dies right after ``put`` can
lose results it already finished.  Each worker therefore also appends
every result to a per-incarnation fsync'd results file; on reaping a dead
worker the engine recovers completed items from that file and only the
genuinely in-flight workload is charged a retry.

Fault injection (tests only): the spec's engine config may name an item to
``crash`` (``os._exit``), ``hang`` (sleep past the timeout), or ``raise``
on, with a bounded number of occurrences tracked via marker files in the
campaign directory so the count survives worker respawns.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from repro.campaign.queue import WorkItem
from repro.campaign.spec import CampaignSpec
from repro.memo.client import MemoClient
from repro.obs import Telemetry
from repro.workloads import ace
from repro.workloads.fuzzer import WorkloadFuzzer

#: Message tags on the worker → parent result queue.
MSG_READY = "ready"
MSG_RESULT = "result"
MSG_ITEM_ERROR = "item_error"
MSG_BATCH_DONE = "batch_done"
MSG_STOPPED = "stopped"

#: Parent → worker task queue messages.
TASK_BATCH = "batch"
TASK_STOP = "stop"

_ORPHAN_POLL_S = 2.0


def _fault_fires(fault: Optional[dict], item: WorkItem, campaign_dir: str) -> Optional[str]:
    """Check (and consume) one occurrence of an injected fault."""
    if not fault or fault.get("item_id") != item.item_id:
        return None
    times = int(fault.get("times", 1))
    slug = item.item_id.replace(":", "_")
    fired = sum(
        1 for name in os.listdir(campaign_dir)
        if name.startswith(f"fault.{slug}.")
    )
    if fired >= times:
        return None
    marker = os.path.join(campaign_dir, f"fault.{slug}.{fired}")
    with open(marker, "w", encoding="utf-8"):
        pass
    return str(fault.get("kind", "crash"))


def _append_result(fh, item_id: str, results: List[dict]) -> None:
    """Durably persist one result before it is queued to the parent."""
    fh.write(json.dumps({"id": item_id, "results": results}) + "\n")
    fh.flush()
    os.fsync(fh.fileno())


def _write_heartbeat(path: str, wid: int, item_id: Optional[str]) -> None:
    """Overwrite the worker's liveness beacon (best-effort, no fsync).

    ``repro watch`` reads these to tell a worker grinding through a slow
    workload from one that is wedged.  Liveness is advisory — losing a
    beacon to a crash costs nothing, so unlike the results file this is
    deliberately not durable.
    """
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"worker": wid, "item": item_id, "t": round(time.time(), 3)}
            ))
    except OSError:
        pass


def _run_item(chipmunk, spec: CampaignSpec, item: WorkItem) -> List[dict]:
    """Execute one work item, returning serialized per-workload results."""
    if item.kind == "ace":
        workload = ace.workload_at(item.seq, item.index, mode=spec.mode)
        result = chipmunk.test_workload(workload.core, setup=workload.setup)
        return [result.to_dict()]
    fuzzer = WorkloadFuzzer(chipmunk, seed=item.seed)
    results: List[dict] = []
    for _ in range(item.executions):
        results.append(fuzzer.step().to_dict())
    return results


def worker_main(
    wid: int,
    spec_dict: Dict[str, object],
    task_q,
    result_q,
    campaign_dir: str,
    fault: Optional[dict] = None,
    run_tag: str = "run",
    memo_address: Optional[str] = None,
) -> None:
    """Process entrypoint (top-level so it survives spawn-style pickling).

    ``run_tag`` distinguishes engine invocations: a resumed campaign's
    workers must not overwrite the original run's trace files.
    ``memo_address`` points at the campaign's shared check-memo service
    (engine-hosted or external ``repro memod``); the client degrades to
    local-only memoization on any failure, so a bad address costs a few
    timeouts, never the campaign.
    """
    spec = CampaignSpec.from_dict(spec_dict)
    telemetry = None
    if spec.trace:
        telemetry = Telemetry()
        telemetry.meta.update(
            fs=spec.fs, generator=spec.generator, worker=wid, run=run_tag,
        )
    shared = None
    if memo_address:
        try:
            shared = MemoClient(memo_address)
        except ValueError:
            shared = None  # malformed address: run local-only
    chipmunk = spec.build_chipmunk(telemetry=telemetry, shared_memo=shared)
    results_path = os.path.join(
        campaign_dir, f"worker-{run_tag}-{wid}.results.jsonl"
    )
    hb_path = os.path.join(campaign_dir, f"worker-{run_tag}-{wid}.hb")
    results_fh = open(results_path, "a", encoding="utf-8")
    _write_heartbeat(hb_path, wid, None)
    result_q.put((MSG_READY, wid))
    while True:
        try:
            message = task_q.get(timeout=_ORPHAN_POLL_S)
        except Exception:
            # Timeout: if the parent died (SIGKILL leaves no one to send
            # "stop"), we are reparented — exit rather than leak.
            if os.getppid() == 1:
                return
            continue
        if message[0] == TASK_STOP:
            break
        batch = [WorkItem.from_dict(d) for d in message[1]]
        for item in batch:
            _write_heartbeat(hb_path, wid, item.item_id)
            kind = _fault_fires(fault, item, campaign_dir)
            if kind == "crash":
                os._exit(41)
            elif kind == "hang":
                time.sleep(3600.0)
            elif kind == "raise":
                result_q.put((MSG_ITEM_ERROR, wid, item.item_id,
                              "injected fault"))
                continue
            try:
                results = _run_item(chipmunk, spec, item)
            except Exception as exc:  # noqa: BLE001 — fault boundary
                result_q.put((MSG_ITEM_ERROR, wid, item.item_id,
                              f"{type(exc).__name__}: {exc}"))
            else:
                _append_result(results_fh, item.item_id, results)
                result_q.put((MSG_RESULT, wid, item.item_id, results))
        _write_heartbeat(hb_path, wid, None)
        result_q.put((MSG_BATCH_DONE, wid))
    if telemetry is not None:
        telemetry.event("worker_stop", worker=wid)
        trace_path = os.path.join(
            campaign_dir, f"worker-{run_tag}-{wid}.trace.jsonl"
        )
        try:
            telemetry.export_jsonl(trace_path)
        except OSError:
            pass
    if shared is not None:
        shared.close()
    results_fh.close()
    result_q.put((MSG_STOPPED, wid))
