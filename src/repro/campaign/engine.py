"""Campaign engine: parallel, fault-tolerant orchestration.

The paper ran its 50k-workload seq-3 campaign split across ten VMs
(section 4.2); this engine is that scale-out pattern as a library — a
worker-pool analogue of the VM fleet, with the scheduling and fault
handling the paper's ad-hoc split lacked:

* **Scheduling** — work items are striped into per-worker shards
  (:class:`~repro.campaign.queue.ShardedWorkQueue`) and rebalanced by
  work-stealing when per-workload runtimes skew.
* **Fault tolerance** — a worker that dies or stops streaming results for
  longer than ``item_timeout`` is killed and its unfinished items are
  requeued; an item that exhausts ``max_retries`` is *quarantined* into
  the report instead of sinking the campaign.
* **Checkpointing** — every finished item is journaled
  (:class:`~repro.campaign.journal.CheckpointJournal`) before it counts,
  so ``resume=True`` skips journaled work after a kill and the merged
  report still covers the whole campaign.
* **Merging** — per-worker results fold back in canonical order through
  :mod:`repro.campaign.merge`, producing the same bug set a serial run
  yields.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.campaign.journal import CheckpointJournal, JournalState
from repro.campaign.merge import MergedCampaign, merge_campaign
from repro.campaign.queue import ShardedWorkQueue, WorkItem, build_items
from repro.campaign.spec import CampaignSpec
from repro.campaign import worker as workermod


@dataclass
class EngineConfig:
    """Execution knobs of the campaign engine (not part of the spec: they
    may legitimately differ between a run and its resume)."""

    workers: int = 2
    #: Items handed to a worker per dispatch; small batches keep the
    #: work-stealing granularity fine.
    batch_size: int = 8
    #: Seconds without a progress message before a worker is presumed hung.
    item_timeout: float = 60.0
    #: Re-executions allowed per item before quarantine.
    max_retries: int = 2
    poll_interval: float = 0.005
    #: Test-only fault injection forwarded to workers
    #: (``{"item_id": ..., "kind": "crash"|"hang"|"raise", "times": N}``).
    fault: Optional[dict] = None


@dataclass
class _WorkerHandle:
    wid: int
    shard: int
    process: multiprocessing.Process
    task_q: object
    result_q: object
    #: The worker's fsync'd results file — the crash-durable copy of what
    #: it streamed over the (feeder-thread-buffered, lossy) result queue.
    results_path: str = ""
    #: Items dispatched and not yet individually resolved.
    in_flight: Dict[str, WorkItem] = field(default_factory=dict)
    awaiting_dispatch: bool = False
    last_progress: float = field(default_factory=time.monotonic)
    stopped: bool = False


@dataclass
class EngineStats:
    """Counters surfaced in the campaign report and CLI output."""

    workers: int = 0
    dispatched: int = 0
    steals: int = 0
    requeues: int = 0
    workers_killed: int = 0
    items_quarantined: int = 0
    items_resumed: int = 0
    wall_clock: float = 0.0
    interrupted: bool = False
    #: Final shared memo-service table stats (``MemoTable.stats()``) when
    #: the campaign ran with a shared memo; empty otherwise.  For an
    #: external ``memod`` this is a best-effort end-of-run snapshot.
    shared_memo: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


class SpecMismatch(ValueError):
    """``resume`` pointed at a journal written by a different campaign."""


class CampaignEngine:
    """Run one campaign spec across a local worker pool."""

    def __init__(
        self,
        spec: CampaignSpec,
        campaign_dir: str,
        config: Optional[EngineConfig] = None,
        resume: bool = False,
    ) -> None:
        self.spec = spec
        self.campaign_dir = campaign_dir
        self.config = config or EngineConfig()
        self.resume = resume
        self.stats = EngineStats(workers=self.config.workers)
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._workers: Dict[int, _WorkerHandle] = {}
        self._next_wid = 0
        #: Engine-hosted shared memo server (``spec.shared_memo`` without
        #: an external address) and the address workers connect to.
        self._memo_server = None
        self._memo_address: Optional[str] = None
        #: Distinguishes this engine invocation's trace files from any
        #: earlier run's in the same campaign directory (resume).
        self._run_tag = uuid.uuid4().hex[:8]

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _load_prior_state(self) -> JournalState:
        state = CheckpointJournal.replay(self.campaign_dir)
        if not self.resume:
            if state.results or state.quarantined:
                raise SpecMismatch(
                    f"{self.campaign_dir} already holds a campaign journal; "
                    "pass resume=True (CLI: --resume) to continue it"
                )
            return JournalState()
        if state.spec_dict is not None:
            stored = CampaignSpec.from_dict(state.spec_dict)
            if stored != self.spec:
                raise SpecMismatch(
                    "journal was written by a different campaign spec: "
                    f"stored {stored.to_dict()}, requested {self.spec.to_dict()}"
                )
        return state

    def _spawn_worker(self, shard: int) -> _WorkerHandle:
        wid = self._next_wid
        self._next_wid += 1
        task_q = self._ctx.Queue()
        result_q = self._ctx.Queue()
        process = self._ctx.Process(
            target=workermod.worker_main,
            args=(wid, self.spec.to_dict(), task_q, result_q,
                  self.campaign_dir, self.config.fault, self._run_tag,
                  self._memo_address),
            daemon=True,
        )
        process.start()
        handle = _WorkerHandle(
            wid=wid, shard=shard, process=process,
            task_q=task_q, result_q=result_q,
            results_path=os.path.join(
                self.campaign_dir,
                f"worker-{self._run_tag}-{wid}.results.jsonl",
            ),
        )
        self._workers[wid] = handle
        return handle

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> MergedCampaign:
        started = time.monotonic()
        os.makedirs(self.campaign_dir, exist_ok=True)
        prior = self._load_prior_state()
        items = build_items(self.spec)
        self.stats.items_resumed = sum(
            1 for item in items if item.item_id in prior.done_ids
        )
        pending = [i for i in items if i.item_id not in prior.done_ids]

        journal = CheckpointJournal(self.campaign_dir)
        journal.open()
        if prior.spec_dict is None:
            journal.write_meta(self.spec.to_dict(), n_items=len(items))

        queue = ShardedWorkQueue(self.config.workers, pending)
        results: Dict[str, List[dict]] = dict(prior.results)
        quarantined: Dict[str, dict] = dict(prior.quarantined)
        retries: Dict[str, int] = {}
        ordinals = {item.item_id: item.ordinal for item in items}

        try:
            if self.spec.shared_memo:
                self._start_shared_memo()
            for shard in range(self.config.workers):
                self._spawn_worker(shard)
            self._event_loop(queue, journal, results, quarantined, retries)
        except KeyboardInterrupt:
            self.stats.interrupted = True
        finally:
            self._shutdown_workers()
            self._stop_shared_memo()
            self.stats.dispatched = queue.stats.dispatched
            self.stats.steals = queue.stats.steals
            self.stats.requeues = queue.stats.requeues
            self.stats.items_quarantined = len(quarantined)
            self.stats.wall_clock = time.monotonic() - started
            if not self.stats.interrupted:
                journal.write_done(self.stats.wall_clock)
            journal.close()
            if not self.stats.interrupted:
                self._remove_worker_results_files()

        merged = merge_campaign(
            self.spec, items, results, quarantined, self.stats,
            campaign_dir=self.campaign_dir,
        )
        return merged

    def _event_loop(self, queue, journal, results, quarantined, retries) -> None:
        config = self.config
        while True:
            in_flight = sum(len(w.in_flight) for w in self._workers.values())
            if not queue.pending() and not in_flight:
                break
            progressed = False
            for handle in list(self._workers.values()):
                progressed |= self._drain_messages(
                    handle, queue, journal, results, quarantined, retries
                )
            self._dispatch_ready(queue)
            self._reap_failures(queue, journal, results, quarantined, retries)
            if not progressed:
                time.sleep(config.poll_interval)

    # ------------------------------------------------------------------
    def _drain_messages(self, handle, queue, journal, results,
                        quarantined, retries) -> bool:
        progressed = False
        while True:
            try:
                message = handle.result_q.get_nowait()
            except Exception:
                break
            progressed = True
            handle.last_progress = time.monotonic()
            tag = message[0]
            if tag == workermod.MSG_READY:
                handle.awaiting_dispatch = True
            elif tag == workermod.MSG_RESULT:
                _, wid, item_id, item_results = message
                item = handle.in_flight.pop(item_id, None)
                if item is not None:
                    results[item_id] = item_results
                    journal.write_item_done(
                        item_id, item.ordinal, handle.wid,
                        retries.get(item_id, 0), item_results,
                    )
            elif tag == workermod.MSG_ITEM_ERROR:
                _, wid, item_id, error = message
                item = handle.in_flight.pop(item_id, None)
                if item is not None:
                    self._retry_or_quarantine(
                        item, error, queue, journal, quarantined, retries
                    )
            elif tag == workermod.MSG_BATCH_DONE:
                handle.awaiting_dispatch = True
            elif tag == workermod.MSG_STOPPED:
                handle.stopped = True
        return progressed

    def _dispatch_ready(self, queue) -> None:
        for handle in self._workers.values():
            if handle.stopped or not handle.awaiting_dispatch:
                continue
            batch = queue.next_batch(handle.shard, self.config.batch_size)
            if not batch:
                # Stay idle but alive: in-flight items on other workers may
                # yet fail and requeue.
                continue
            handle.awaiting_dispatch = False
            handle.in_flight.update({item.item_id: item for item in batch})
            handle.last_progress = time.monotonic()
            handle.task_q.put(
                (workermod.TASK_BATCH, [item.to_dict() for item in batch])
            )

    def _recover_results(self, handle, journal, results, retries) -> None:
        """Salvage results a dead worker persisted but never delivered.

        Queue messages ride a feeder thread that dies unflushed with the
        process; the fsync'd per-worker results file is the durable copy,
        so finished-but-undelivered items are not misblamed for the crash.
        """
        try:
            fh = open(handle.results_path, encoding="utf-8")
        except OSError:
            return
        with fh:
            for line in fh:
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from the crash itself
                item = handle.in_flight.pop(record.get("id"), None)
                if item is not None:
                    results[item.item_id] = record["results"]
                    journal.write_item_done(
                        item.item_id, item.ordinal, handle.wid,
                        retries.get(item.item_id, 0), record["results"],
                    )

    def _reap_failures(self, queue, journal, results, quarantined,
                       retries) -> None:
        now = time.monotonic()
        for handle in list(self._workers.values()):
            if handle.stopped:
                continue
            died = not handle.process.is_alive()
            hung = (
                handle.in_flight
                and now - handle.last_progress > self.config.item_timeout
            )
            if not died and not hung:
                continue
            if hung:
                handle.process.terminate()
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=5.0)
            self.stats.workers_killed += 1
            self._recover_results(handle, journal, results, retries)
            orphans = list(handle.in_flight.values())
            handle.in_flight.clear()
            del self._workers[handle.wid]
            reason = "worker hung past item timeout" if hung else "worker died"
            if orphans:
                # Workers run and stream a batch in dispatch order, so the
                # first unfinished item is the one that was executing when
                # the worker died — only it is charged a retry.  Its
                # batchmates never started; they requeue uncharged.
                self._retry_or_quarantine(
                    orphans[0], reason, queue, journal, quarantined, retries
                )
                queue.requeue(orphans[1:])
            # Replace the worker if there could still be work for it.
            if queue.pending() or any(
                w.in_flight for w in self._workers.values()
            ) or orphans:
                self._spawn_worker(handle.shard)

    def _retry_or_quarantine(self, item, error, queue, journal,
                             quarantined, retries) -> None:
        attempts = retries.get(item.item_id, 0) + 1
        retries[item.item_id] = attempts
        if attempts > self.config.max_retries:
            record = {
                "type": "item_quarantined", "id": item.item_id,
                "ordinal": item.ordinal, "retries": attempts, "error": error,
            }
            quarantined[item.item_id] = record
            journal.write_item_quarantined(
                item.item_id, item.ordinal, attempts, error
            )
        else:
            queue.requeue([item])

    def _remove_worker_results_files(self) -> None:
        """The journal subsumes the per-worker durable copies once done.

        Heartbeat beacons go too: a completed campaign has no liveness to
        monitor, and stale beacons would confuse a later ``repro watch``.
        """
        try:
            names = os.listdir(self.campaign_dir)
        except OSError:
            return
        for name in names:
            if name.startswith("worker-") and (
                name.endswith(".results.jsonl") or name.endswith(".hb")
            ):
                try:
                    os.remove(os.path.join(self.campaign_dir, name))
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Shared check memo
    # ------------------------------------------------------------------
    def _start_shared_memo(self) -> None:
        """Resolve the shared memo address the workers will connect to.

        ``--memo-server HOST:PORT`` attaches to an external ``repro memod``
        (multi-host campaigns share one table); otherwise the engine hosts
        the same server in-process on a loopback ephemeral port — the
        workers cannot tell the difference.
        """
        if self.spec.memo_address is not None:
            self._memo_address = self.spec.memo_address
            return
        from repro.memo.server import MemoServer

        self._memo_server = MemoServer(max_entries=self.spec.memo_entries)
        self._memo_server.start()
        self._memo_address = self._memo_server.address_str

    def _stop_shared_memo(self) -> None:
        """Capture final service stats into :class:`EngineStats`, stop the
        embedded server.  Best-effort throughout — the shared memo is an
        optimization and must never turn a finished campaign into an error."""
        if self._memo_server is not None:
            self.stats.shared_memo = self._memo_server.table.stats()
            self._memo_server.stop()
            self._memo_server = None
        elif self._memo_address is not None:
            from repro.memo.client import MemoClient

            try:
                client = MemoClient(self._memo_address)
                stats = client.stats()
                client.close()
            except Exception:  # noqa: BLE001 — stats are advisory
                stats = None
            if stats:
                self.stats.shared_memo = stats
        self._memo_address = None

    # ------------------------------------------------------------------
    def _shutdown_workers(self) -> None:
        for handle in self._workers.values():
            if handle.process.is_alive():
                try:
                    handle.task_q.put((workermod.TASK_STOP,))
                except Exception:
                    pass
        deadline = time.monotonic() + 10.0
        for handle in self._workers.values():
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=5.0)
        self._workers.clear()
