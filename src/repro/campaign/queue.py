"""Work queue and scheduler: sharded dispatch with work-stealing.

The scheduler lives in the campaign parent.  Work items (one ACE workload
index, or one fuzzer seed segment) are striped into per-worker shards by
:func:`repro.workloads.sharding.assign_shard` — the same round-robin rule
the paper's ten-VM split used — and each worker drains its own shard first.

Static splits are unbalanced in practice: per-workload crash-state counts
vary ~3× across file systems and syscalls, so a worker whose shard happened
to draw rename-heavy workloads finishes long after the others.  When a
worker's shard runs dry the scheduler *steals* from the tail of the fullest
remaining shard (the classic work-stealing discipline: owners take from the
head, thieves from the tail), so the campaign ends when the slowest *item*
finishes, not the slowest *shard*.

Retries requeue at the head of the item's home shard so a flaky item is
retried promptly while its context is fresh; items that exhaust their retry
budget are quarantined by the engine, not the queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List

from repro.workloads.sharding import assign_shard


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit of campaign work.

    ACE items carry a workload index (regenerated worker-side via
    :func:`repro.workloads.ace.workload_at`); fuzz items carry a seed
    segment (``seed`` plus an execution budget).  ``ordinal`` is the
    item's rank in the canonical serial order — the merge stage folds
    results by ordinal so parallel completion order never leaks into the
    merged report.
    """

    item_id: str
    kind: str  # "ace" | "fuzz"
    ordinal: int
    seq: int = 0
    index: int = 0
    seed: int = 0
    executions: int = 0

    @staticmethod
    def ace(seq: int, index: int, ordinal: int) -> "WorkItem":
        return WorkItem(
            item_id=f"ace:{seq}:{index:06d}", kind="ace", ordinal=ordinal,
            seq=seq, index=index,
        )

    @staticmethod
    def fuzz(seed: int, executions: int, ordinal: int) -> "WorkItem":
        return WorkItem(
            item_id=f"fuzz:{seed}", kind="fuzz", ordinal=ordinal,
            seed=seed, executions=executions,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "item_id": self.item_id, "kind": self.kind, "ordinal": self.ordinal,
            "seq": self.seq, "index": self.index, "seed": self.seed,
            "executions": self.executions,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkItem":
        return cls(
            item_id=str(data["item_id"]), kind=str(data["kind"]),
            ordinal=int(data["ordinal"]), seq=int(data.get("seq", 0)),
            index=int(data.get("index", 0)), seed=int(data.get("seed", 0)),
            executions=int(data.get("executions", 0)),
        )


@dataclass
class QueueStats:
    """Scheduler counters surfaced in the campaign report."""

    dispatched: int = 0
    steals: int = 0
    requeues: int = 0


class ShardedWorkQueue:
    """Per-shard deques with work-stealing between them."""

    def __init__(self, n_shards: int, items: Iterable[WorkItem]) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.shards: List[Deque[WorkItem]] = [deque() for _ in range(n_shards)]
        self.stats = QueueStats()
        for item in items:
            self.shards[assign_shard(item.ordinal, n_shards)].append(item)

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def pending(self) -> int:
        return len(self)

    def next_batch(self, shard_index: int, batch_size: int) -> List[WorkItem]:
        """Up to ``batch_size`` items for the worker owning ``shard_index``.

        Drains the home shard from the head; once it is dry, steals from
        the *tail* of the fullest other shard.  An empty list means the
        whole queue is drained.
        """
        if not (0 <= shard_index < self.n_shards):
            raise ValueError(f"shard_index {shard_index} out of range")
        batch: List[WorkItem] = []
        home = self.shards[shard_index]
        while home and len(batch) < batch_size:
            batch.append(home.popleft())
        while len(batch) < batch_size:
            victim = max(
                (s for s in self.shards if s), key=len, default=None
            )
            if victim is None:
                break
            batch.append(victim.pop())
            self.stats.steals += 1
        self.stats.dispatched += len(batch)
        return batch

    def requeue(self, items: Iterable[WorkItem]) -> None:
        """Return failed/orphaned items to the head of their home shard."""
        for item in items:
            self.shards[assign_shard(item.ordinal, self.n_shards)].appendleft(item)
            self.stats.requeues += 1


def build_items(spec) -> List[WorkItem]:
    """The full, canonically ordered work-item list of a campaign spec."""
    from repro.workloads.ace import count

    items: List[WorkItem] = []
    if spec.generator == "ace":
        # The serial path (``cmd_ace``) runs seq 1..N applying
        # ``max_workloads`` per sequence length; mirror that exactly so the
        # parallel campaign covers the same workload set.
        ordinal = 0
        for seq in range(1, spec.seq + 1):
            total = count(seq)
            if spec.max_workloads:
                total = min(total, spec.max_workloads)
            for index in range(total):
                items.append(WorkItem.ace(seq, index, ordinal))
                ordinal += 1
    else:
        for segment in range(spec.segments):
            items.append(
                WorkItem.fuzz(spec.seed + segment, spec.executions, segment)
            )
    return items
