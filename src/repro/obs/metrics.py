"""Metrics primitives for campaign telemetry.

A :class:`MetricsRegistry` hands out named counters, gauges, and
fixed-bucket histograms.  The primitives are deliberately dependency-free
and allocation-light: incrementing a counter is one integer add on a slotted
object, so instrumented hot paths (``pm.device`` reads/writes, replayer
fence handling) stay cheap.  No primitive ever reads the wall clock —
timing belongs to the span layer (:mod:`repro.obs.tracing`), which calls
``perf_counter`` only at span boundaries.

Histogram buckets follow the Prometheus convention: ``edges`` is an
ascending tuple of *inclusive* upper bounds, and one implicit overflow
bucket catches everything above the last edge.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default buckets for in-flight write-unit counts (Obs. 7: averages around
#: 3, maxima around 10 on the tested systems).
INFLIGHT_EDGES: Tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24)

#: Default buckets for span durations, in seconds.
LATENCY_EDGES: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> Dict[str, object]:
        return {"type": "metric", "kind": "counter", "name": self.name,
                "value": self.value}


class Gauge:
    """A point-in-time value metric (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "metric", "kind": "gauge", "name": self.name,
                "value": self.value}


class Histogram:
    """A fixed-bucket histogram with inclusive upper-bound edges.

    ``counts[i]`` counts observations ``v`` with
    ``edges[i-1] < v <= edges[i]`` (the first bucket has no lower bound);
    ``counts[-1]`` is the overflow bucket for ``v > edges[-1]``.
    """

    __slots__ = ("name", "edges", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram edges must be ascending, got {edges!r}")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "metric", "kind": "histogram", "name": self.name,
            "edges": list(self.edges), "counts": list(self.counts),
            "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max,
        }


class CacheCounters:
    """A hit/miss counter pair for one named cache.

    Thin convenience over two :class:`Counter` objects named
    ``<name>.hits`` / ``<name>.misses`` so every cache in the system
    surfaces the same metric shape.  When built from a
    :class:`MetricsRegistry` the counters land in its snapshot; standalone
    construction (no registry) keeps cache code usable without telemetry.
    """

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str, registry: Optional["MetricsRegistry"] = None) -> None:
        self.name = name
        if registry is not None:
            self.hits = registry.counter(f"{name}.hits")
            self.misses = registry.counter(f"{name}.misses")
        else:
            self.hits = Counter(f"{name}.hits")
            self.misses = Counter(f"{name}.misses")

    def hit(self, n: int = 1) -> None:
        self.hits.inc(n)

    def miss(self, n: int = 1) -> None:
        self.misses.inc(n)

    @property
    def total(self) -> int:
        return self.hits.value + self.misses.value

    @property
    def hit_rate(self) -> float:
        return self.hits.value / self.total if self.total else 0.0

    def describe(self) -> str:
        return (
            f"{self.name}: {self.hits.value} hit(s), "
            f"{self.misses.value} miss(es) ({self.hit_rate * 100:.0f}%)"
        )


class MetricsRegistry:
    """Named metric store; lookups are memoized so hot paths can cache the
    returned object and skip the dictionary entirely."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, edges: Optional[Sequence[float]] = None) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, edges or LATENCY_EDGES)
        return h

    def snapshot(self) -> List[Dict[str, object]]:
        """All metrics as JSONL-ready dicts, in name order."""
        out: List[Dict[str, object]] = []
        for group in (self._counters, self._gauges, self._histograms):
            for name in sorted(group):
                out.append(group[name].to_dict())
        return out
