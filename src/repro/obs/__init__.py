"""Campaign telemetry: structured tracing, metrics, and profiling.

The subsystem is dependency-free and split by concern:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms;
* :mod:`repro.obs.tracing` — nestable spans, ring-buffer recorder, JSONL
  and Chrome trace-event exporters;
* :mod:`repro.obs.campaign` — :class:`~repro.obs.campaign.CampaignStats`,
  the aggregator behind ``python -m repro stats``.

:class:`Telemetry` is the facade the pipeline is instrumented against;
:data:`NULL` is the no-op implementation installed by default.  The null
object still *times* spans (two ``perf_counter`` reads at the boundaries —
the harness sources ``TestResult.stage_times`` from them) but records and
exports nothing, and its ``enabled`` flag is ``False`` so hot loops
(per-crash-state spans, per-device-access counters) skip instrumentation
entirely.  Overhead policy: with telemetry disabled the pipeline must stay
within 10% of the uninstrumented baseline
(``benchmarks/bench_telemetry_overhead.py`` enforces this).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Sequence

from repro.obs.metrics import (
    CacheCounters,
    Counter,
    Gauge,
    Histogram,
    INFLIGHT_EDGES,
    LATENCY_EDGES,
    MetricsRegistry,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    jsonl_to_chrome,
    read_jsonl,
    spans_to_chrome,
    write_jsonl,
)

__all__ = [
    "Telemetry", "NullTelemetry", "NULL",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "CacheCounters",
    "Tracer", "Span",
    "write_jsonl", "read_jsonl", "spans_to_chrome", "jsonl_to_chrome",
    "INFLIGHT_EDGES", "LATENCY_EDGES",
]


class Telemetry:
    """Live telemetry: a tracer plus a metrics registry behind one facade."""

    enabled = True

    def __init__(self, span_capacity: int = 65536) -> None:
        self.tracer = Tracer(capacity=span_capacity)
        self.metrics = MetricsRegistry()
        #: Campaign-level metadata (fs, generator, seed, …) written as the
        #: trace's leading ``meta`` record.
        self.meta: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **fields) -> None:
        self.tracer.event(name, **fields)

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def observe(self, name: str, value: float,
                edges: Optional[Sequence[float]] = None) -> None:
        self.metrics.histogram(name, edges).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    # ------------------------------------------------------------------
    def export_records(self):
        """Meta + time-ordered trace records + metric snapshot."""
        records = [dict(self.meta, type="meta")] if self.meta else []
        records.extend(self.tracer.export())
        records.extend(self.metrics.snapshot())
        return records

    def export_jsonl(self, path: str) -> int:
        """Write the full trace (meta, spans, events, metrics) as JSONL."""
        return write_jsonl(path, self.export_records())


class _NullSpan:
    """Timing-only span: measures its duration but records nothing.

    The harness reads ``duration`` off its stage spans whether or not
    telemetry is on, so per-stage timings cost exactly two ``perf_counter``
    reads per stage in the disabled path.
    """

    __slots__ = ("start", "duration")

    def __enter__(self) -> "_NullSpan":
        self.start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.duration = perf_counter() - self.start


class NullTelemetry:
    """No-op telemetry; the default for every pipeline entry point."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NullSpan()

    def event(self, name: str, **fields) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float,
                edges: Optional[Sequence[float]] = None) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def export_records(self):
        return []

    def export_jsonl(self, path: str) -> int:
        return 0


#: Shared null instance; ``telemetry or NULL`` is the standard install idiom.
NULL = NullTelemetry()
