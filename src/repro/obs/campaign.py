"""Campaign-level aggregation of per-workload telemetry.

:class:`CampaignStats` consumes per-workload
:class:`~repro.core.harness.TestResult` objects (in-process) or a JSONL
trace written via ``--trace`` (offline, :meth:`CampaignStats.from_trace`)
and derives the quantities the paper's evaluation reports:

* cumulative time-to-bug series (Figure 3 shape) — the campaign second and
  workload index at which each new triaged cluster appeared;
* crash-states/sec throughput and dedup hit-rate (§4.3's per-FS crash-state
  counts and runtime);
* checker-outcome breakdown by consequence class;
* per-FS in-flight write-unit histograms (Obs. 7 shape).

The class is symmetric with the trace format: ``add_result`` both folds a
result in and (when a telemetry object is attached) emits the
``cluster_found`` events that :meth:`from_trace` later folds back, so the
in-process and offline views of a campaign agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.tracing import read_jsonl

#: Pipeline stages in display order.
STAGES = ("record", "oracle", "enumerate", "check", "triage", "analyze")


@dataclass(frozen=True)
class TimeToBug:
    """One point of the cumulative time-to-bug series."""

    cluster: int
    workload: int
    t: float
    consequence: str


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


@dataclass
class CampaignStats:
    """Aggregated telemetry of one testing campaign."""

    fs_name: str = "?"
    generator: str = "?"
    #: When set, new-cluster discoveries are emitted as ``cluster_found``
    #: trace events so offline ``stats`` sees the same series.
    telemetry: Optional[object] = None
    meta: Dict[str, object] = field(default_factory=dict)

    n_workloads: int = 0
    n_truncated: int = 0
    n_crash_states: int = 0
    n_unique_states: int = 0
    n_fences: int = 0
    n_reports: int = 0
    #: Check-memoization counters (``checker.memo.*``): states skipped
    #: because a byte-identical image was already checked / states checked.
    n_memo_hits: int = 0
    n_memo_misses: int = 0
    #: Memo-miss attribution (``checker.memo.miss.*``): reason -> count,
    #: summing exactly to :attr:`n_memo_misses` when every result carries
    #: attribution data.
    memo_miss_reasons: Dict[str, int] = field(default_factory=dict)
    #: Overlay writes dropped as no-ops before digesting
    #: (``checker.memo.noop_writes_dropped``).
    n_memo_noop_dropped: int = 0
    #: Hits served by the campaign-wide shared memo service
    #: (``checker.memo.shared.hits``); subset of :attr:`n_memo_hits`.
    n_memo_shared_hits: int = 0
    #: Shared-service calls that failed and degraded to local misses
    #: (``checker.memo.shared.errors``).
    n_memo_shared_errors: int = 0
    #: Clean entries LRU-evicted from local memos
    #: (``checker.memo.evictions``).
    n_memo_evictions: int = 0
    #: Distinct recovered outcomes among checked states (summed per
    #: workload — outcomes are not deduplicated across workloads).
    n_unique_outcomes: int = 0
    #: Crash-plan mode the campaign ran under ("subset" | "mech"; "?" until
    #: the first result arrives, "mixed" if results disagree).
    crash_plans: str = "?"
    #: Mechanism recognition (``mech.recognized.{kind}``): fence epochs per
    #: recognized mechanism kind, across all workloads.
    mech_recognized: Dict[str, int] = field(default_factory=dict)
    #: Targeted crash states emitted from mechanism plans
    #: (``mech.plans.emitted``).
    n_mech_plans_emitted: int = 0
    #: Epochs the recognizers could not explain, enumerated as full
    #: subsets (``mech.fallback_epochs``).
    n_mech_fallback_epochs: int = 0
    wall_time: float = 0.0
    stage_totals: Dict[str, float] = field(default_factory=dict)
    outcome_counts: Dict[str, int] = field(default_factory=dict)
    #: fs name -> syscall name -> in-flight unit counts at each fence.
    inflight: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)
    time_to_bug: List[TimeToBug] = field(default_factory=list)

    def __post_init__(self) -> None:
        from repro.core.triage import Triage  # deferred: obs stays core-free

        self._triage = Triage()

    # ------------------------------------------------------------------
    # In-process ingestion
    # ------------------------------------------------------------------
    def add_result(self, result) -> None:
        """Fold one :class:`TestResult` into the campaign aggregates."""
        self.n_workloads += 1
        self.n_crash_states += result.n_crash_states
        self.n_unique_states += result.n_unique_states
        self.n_fences += result.n_fences
        self.n_reports += len(result.reports)
        self.n_memo_hits += getattr(result, "memo_hits", 0)
        self.n_memo_misses += getattr(result, "memo_misses", 0)
        self.n_memo_noop_dropped += getattr(result, "memo_noop_dropped", 0)
        self.n_memo_shared_hits += getattr(result, "memo_shared_hits", 0)
        self.n_memo_shared_errors += getattr(result, "memo_shared_errors", 0)
        self.n_memo_evictions += getattr(result, "memo_evictions", 0)
        self.n_unique_outcomes += getattr(result, "n_unique_outcomes", 0)
        for reason, n in getattr(result, "memo_miss_reasons", {}).items():
            self.memo_miss_reasons[reason] = (
                self.memo_miss_reasons.get(reason, 0) + n
            )
        self._fold_mech(
            getattr(result, "crash_plans", "subset"),
            getattr(result, "mech_recognized", {}),
            getattr(result, "mech_plans_emitted", 0),
            getattr(result, "mech_fallback_epochs", 0),
        )
        self.wall_time += result.elapsed
        if getattr(result, "truncated", False):
            self.n_truncated += 1
        for stage, dt in getattr(result, "stage_times", {}).items():
            self.stage_totals[stage] = self.stage_totals.get(stage, 0.0) + dt
        for report in result.reports:
            name = report.consequence.name
            self.outcome_counts[name] = self.outcome_counts.get(name, 0) + 1
        self._merge_inflight(self.fs_name, result.inflight)
        new = self._triage.add_new(result.reports)
        base = len(self._triage.clusters) - len(new)
        for offset, cluster in enumerate(new):
            self._record_cluster(base + offset, self.n_workloads, self.wall_time,
                                 cluster.exemplar.consequence.name)

    def _record_cluster(self, cluster: int, workload: int, t: float,
                        consequence: str) -> None:
        self.time_to_bug.append(TimeToBug(cluster, workload, t, consequence))
        if self.telemetry is not None:
            self.telemetry.event(
                "cluster_found", cluster=cluster, workload=workload,
                t=t, consequence=consequence,
            )

    def _fold_mech(
        self,
        crash_plans: str,
        recognized: Dict[str, int],
        plans_emitted: int,
        fallback_epochs: int,
    ) -> None:
        if self.crash_plans == "?":
            self.crash_plans = crash_plans
        elif self.crash_plans != crash_plans:
            self.crash_plans = "mixed"
        for kind, n in dict(recognized).items():
            self.mech_recognized[str(kind)] = (
                self.mech_recognized.get(str(kind), 0) + int(n)
            )
        self.n_mech_plans_emitted += int(plans_emitted)
        self.n_mech_fallback_epochs += int(fallback_epochs)

    def _merge_inflight(self, fs: str, per_syscall: Dict[str, List[int]]) -> None:
        if not per_syscall:
            return
        bucket = self.inflight.setdefault(fs, {})
        for syscall, counts in per_syscall.items():
            bucket.setdefault(syscall, []).extend(counts)

    @property
    def clusters(self):
        return self._triage.clusters

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of generated crash states skipped as duplicates."""
        if not self.n_crash_states:
            return 0.0
        return 1.0 - self.n_unique_states / self.n_crash_states

    @property
    def states_per_second(self) -> float:
        return self.n_crash_states / self.wall_time if self.wall_time else 0.0

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of crash states the check memo skipped."""
        total = self.n_memo_hits + self.n_memo_misses
        return self.n_memo_hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Offline ingestion
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, path: str) -> "CampaignStats":
        """Rebuild campaign aggregates from a ``--trace`` JSONL file."""
        return cls.from_traces([path])

    @classmethod
    def from_traces(cls, paths: Sequence[str]) -> "CampaignStats":
        """Rebuild aggregates from one or more JSONL traces, merged.

        Multiple traces arise from parallel campaigns — one file per
        worker (``python -m repro stats DIR/worker-*.trace.jsonl``).
        Counters and histograms add; ``cluster_found`` events carry
        per-trace cluster numbering (each worker triages its own universe),
        so the merged time-to-bug series is re-numbered in discovery-time
        order.  Note this series counts *per-worker* discoveries: the
        cross-worker dedup of the final bug set happens in the campaign
        merge stage, not here.
        """
        stats = cls()
        for path in paths:
            for rec in read_jsonl(path):
                kind = rec.get("type")
                if kind == "meta":
                    stats.meta.update(
                        {k: v for k, v in rec.items() if k != "type"}
                    )
                    stats.fs_name = str(stats.meta.get("fs", stats.fs_name))
                    stats.generator = str(
                        stats.meta.get("generator", stats.generator)
                    )
                elif kind == "event" and rec.get("name") == "workload_result":
                    stats._fold_workload_event(rec.get("fields", {}))
                elif kind == "event" and rec.get("name") == "cluster_found":
                    f = rec.get("fields", {})
                    stats.time_to_bug.append(TimeToBug(
                        cluster=int(f.get("cluster", len(stats.time_to_bug))),
                        workload=int(f.get("workload", 0)),
                        t=float(f.get("t", 0.0)),
                        consequence=str(f.get("consequence", "?")),
                    ))
        stats.time_to_bug.sort(key=lambda e: (e.t, e.workload, e.cluster))
        if len(paths) > 1:
            stats.time_to_bug = [
                TimeToBug(i, e.workload, e.t, e.consequence)
                for i, e in enumerate(stats.time_to_bug)
            ]
        return stats

    def _fold_workload_event(self, fields: Dict[str, object]) -> None:
        self.n_workloads += 1
        self.n_crash_states += int(fields.get("n_crash_states", 0))
        self.n_unique_states += int(fields.get("n_unique_states", 0))
        self.n_fences += int(fields.get("n_fences", 0))
        self.n_reports += int(fields.get("n_reports", 0))
        self.n_memo_hits += int(fields.get("memo_hits", 0))
        self.n_memo_misses += int(fields.get("memo_misses", 0))
        self.n_memo_noop_dropped += int(fields.get("memo_noop_dropped", 0))
        self.n_memo_shared_hits += int(fields.get("memo_shared_hits", 0))
        self.n_memo_shared_errors += int(fields.get("memo_shared_errors", 0))
        self.n_memo_evictions += int(fields.get("memo_evictions", 0))
        self.n_unique_outcomes += int(fields.get("n_unique_outcomes", 0))
        for reason, n in dict(fields.get("memo_miss_reasons", {})).items():
            self.memo_miss_reasons[str(reason)] = (
                self.memo_miss_reasons.get(str(reason), 0) + int(n)
            )
        self._fold_mech(
            str(fields.get("crash_plans", "subset")),
            dict(fields.get("mech_recognized", {})),
            int(fields.get("mech_plans_emitted", 0)),
            int(fields.get("mech_fallback_epochs", 0)),
        )
        self.wall_time += float(fields.get("elapsed", 0.0))
        if fields.get("truncated"):
            self.n_truncated += 1
        for stage, dt in dict(fields.get("stages", {})).items():
            self.stage_totals[stage] = self.stage_totals.get(stage, 0.0) + float(dt)
        for outcome, n in dict(fields.get("outcomes", {})).items():
            self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + int(n)
        fs = str(fields.get("fs", self.fs_name))
        if self.fs_name == "?":
            self.fs_name = fs
        self._merge_inflight(fs, {
            str(k): [int(c) for c in v]
            for k, v in dict(fields.get("inflight", {})).items()
        })

    # ------------------------------------------------------------------
    # Machine-readable export (``python -m repro stats --json``)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """The aggregates as one JSON-serializable document.

        Keys mirror the :meth:`render` tables so dashboards and scripts
        consume the same quantities the text summary shows.
        """
        return {
            "fs": self.fs_name,
            "generator": self.generator,
            "meta": {k: v for k, v in self.meta.items()
                     if k not in ("fs", "generator")},
            "workloads": self.n_workloads,
            "truncated_workloads": self.n_truncated,
            "crash_states": self.n_crash_states,
            "unique_states": self.n_unique_states,
            "dedup_hit_rate": self.dedup_hit_rate,
            "memo_hits": self.n_memo_hits,
            "memo_misses": self.n_memo_misses,
            "memo_hit_rate": self.memo_hit_rate,
            "memo_miss_reasons": dict(self.memo_miss_reasons),
            "memo_noop_writes_dropped": self.n_memo_noop_dropped,
            "memo_shared_hits": self.n_memo_shared_hits,
            "memo_shared_errors": self.n_memo_shared_errors,
            "memo_evictions": self.n_memo_evictions,
            "crash_plans": self.crash_plans,
            "mech_recognized": dict(self.mech_recognized),
            "mech_plans_emitted": self.n_mech_plans_emitted,
            "mech_fallback_epochs": self.n_mech_fallback_epochs,
            "unique_outcomes": self.n_unique_outcomes,
            "fences": self.n_fences,
            "reports": self.n_reports,
            "wall_time": self.wall_time,
            "states_per_second": self.states_per_second,
            "stage_totals": dict(self.stage_totals),
            "outcome_counts": dict(self.outcome_counts),
            "time_to_bug": [
                {
                    "cluster": e.cluster,
                    "workload": e.workload,
                    "t": e.t,
                    "consequence": e.consequence,
                }
                for e in self.time_to_bug
            ],
            "inflight": {
                fs: {syscall: list(counts) for syscall, counts in per.items()}
                for fs, per in self.inflight.items()
            },
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Multi-table text summary (the ``python -m repro stats`` output)."""
        lines: List[str] = []
        head = f"Campaign: {self.fs_name} ({self.generator})"
        extras = {k: v for k, v in self.meta.items()
                  if k not in ("fs", "generator")}
        if extras:
            head += "  [" + ", ".join(f"{k}={v}" for k, v in sorted(extras.items())) + "]"
        lines.append(head)
        trunc = f" ({self.n_truncated} truncated)" if self.n_truncated else ""
        lines.append(
            f"workloads: {self.n_workloads}{trunc}   crash states: "
            f"{self.n_crash_states} generated, {self.n_unique_states} unique "
            f"(dedup hit-rate {self.dedup_hit_rate * 100:.1f}%)"
        )
        lines.append(
            f"wall time: {self.wall_time:.2f}s   throughput: "
            f"{self.states_per_second:.1f} crash states/sec   "
            f"fences: {self.n_fences}   reports: {self.n_reports}"
        )
        if self.n_memo_hits or self.n_memo_misses:
            line = (
                f"check memo (checker.memo.*): {self.n_memo_hits} hit(s), "
                f"{self.n_memo_misses} miss(es) "
                f"(hit-rate {self.memo_hit_rate * 100:.1f}%)"
            )
            if self.n_memo_shared_hits:
                line += f"; {self.n_memo_shared_hits} served by the shared service"
            if self.n_memo_noop_dropped:
                line += f"; {self.n_memo_noop_dropped} no-op write(s) dropped"
            lines.append(line)
            if self.n_memo_evictions or self.n_memo_shared_errors:
                lines.append(
                    f"memo pressure: {self.n_memo_evictions} clean "
                    f"eviction(s), {self.n_memo_shared_errors} shared-service "
                    f"error(s) degraded to local misses"
                )
        if self.memo_miss_reasons:
            ordered = sorted(
                self.memo_miss_reasons.items(), key=lambda kv: (-kv[1], kv[0])
            )
            lines.append(
                "memo misses by reason: "
                + ", ".join(f"{reason} {n}" for reason, n in ordered)
            )
        if self.n_unique_outcomes and self.n_memo_misses:
            lines.append(
                f"recovered outcomes: {self.n_unique_outcomes} distinct of "
                f"{self.n_memo_misses} checked (equivalence-pruning headroom "
                f"{(1 - self.n_unique_outcomes / self.n_memo_misses) * 100:.1f}%)"
            )
        if self.mech_recognized:
            ordered = sorted(
                self.mech_recognized.items(), key=lambda kv: (-kv[1], kv[0])
            )
            lines.append(
                f"mechanism recognition (--crash-plans {self.crash_plans}): "
                + ", ".join(f"{kind} {n}" for kind, n in ordered)
            )
            lines.append(
                f"mech plans: {self.n_mech_plans_emitted} targeted state(s) "
                f"emitted, {self.n_mech_fallback_epochs} epoch(s) fell back "
                f"to subset enumeration"
            )
        lines.append("")
        lines.append("Per-stage timings")
        total = sum(self.stage_totals.values()) or 1.0
        stage_rows = []
        for stage in STAGES:
            if stage in self.stage_totals:
                dt = self.stage_totals[stage]
                stage_rows.append((stage, f"{dt * 1000:.1f}", f"{dt / total * 100:.1f}%"))
        for stage in sorted(set(self.stage_totals) - set(STAGES)):
            dt = self.stage_totals[stage]
            stage_rows.append((stage, f"{dt * 1000:.1f}", f"{dt / total * 100:.1f}%"))
        lines.extend(_table(("stage", "total (ms)", "share"), stage_rows))
        lines.append("")
        lines.append("Checker outcomes")
        outcome_rows = [(k, v) for k, v in
                        sorted(self.outcome_counts.items(), key=lambda kv: -kv[1])]
        if not outcome_rows:
            outcome_rows = [("clean", "-")]
        lines.extend(_table(("consequence", "reports"), outcome_rows))
        lines.append("")
        lines.append("Cumulative time-to-bug")
        if self.time_to_bug:
            ttb_rows = [
                (e.cluster + 1, e.workload, f"{e.t:.2f}", e.consequence)
                for e in self.time_to_bug
            ]
            lines.extend(_table(("cluster", "workload #", "t (s)", "consequence"),
                                ttb_rows))
        else:
            lines.append("(no clusters found)")
        for fs, per_syscall in sorted(self.inflight.items()):
            lines.append("")
            lines.append(f"In-flight write units per syscall [{fs}]")
            rows = []
            for syscall in sorted(per_syscall):
                counts = per_syscall[syscall]
                rows.append((
                    syscall, len(counts),
                    f"{sum(counts) / len(counts):.1f}", max(counts),
                ))
            lines.extend(_table(("syscall", "fences", "avg units", "max"), rows))
        return "\n".join(lines)
