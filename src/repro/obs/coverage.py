"""Crash-state space coverage analytics (``python -m repro coverage``).

Every remaining exploration lever — mechanism-aware pruning, WITCHER-style
output-equivalence pruning, digest canonicalization — starts from a
distribution question: how big are in-flight windows per fence epoch, which
persistence mechanisms carry the stores, how many checked states recover to
distinct outcomes, how much of the stored data does recovery even read?
:class:`CoverageReport` aggregates those distributions from data the
pipeline already produces (serialized :class:`~repro.core.harness.TestResult`
dicts in a campaign's checkpoint journal, or ``workload_result`` events in
``--trace`` JSONL files) and renders them as a markdown report with ASCII
CDFs that campaigns drop next to ``report.md`` and ``forensics.md``.

The module stays dependency-light like the rest of :mod:`repro.obs`:
campaign-journal access is deferred into the builder function, so importing
the analytics never pulls the engine in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracing import read_jsonl

#: Bar width of the ASCII CDF / histogram renderings.
BAR_WIDTH = 40


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + " " * (width - filled)


def ascii_cdf(values: Sequence[int], label: str = "value") -> List[str]:
    """Cumulative distribution of integer observations, one row per value.

    ``P(X <= v)`` per distinct observed ``v`` — the Silhouette-style
    window-size CDF shape, in monospace.
    """
    if not values:
        return ["(no observations)"]
    total = len(values)
    counts: Dict[int, int] = {}
    for v in values:
        counts[v] = counts.get(v, 0) + 1
    lines = [f"{label + ' <=':>12}  count    cum%"]
    cum = 0
    for v in sorted(counts):
        cum += counts[v]
        frac = cum / total
        lines.append(
            f"{v:>12}  {counts[v]:>5}  {frac * 100:>5.1f}%  |{_bar(frac)}|"
        )
    return lines


def ascii_histogram(values: Sequence[int], label: str = "value") -> List[str]:
    """Frequency histogram; collapses to ranges past 12 distinct values."""
    if not values:
        return ["(no observations)"]
    total = len(values)
    distinct = sorted(set(values))
    if len(distinct) <= 12:
        buckets: List[Tuple[str, int]] = []
        counts: Dict[int, int] = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        for v in distinct:
            buckets.append((str(v), counts[v]))
    else:
        lo, hi = distinct[0], distinct[-1]
        n_buckets = 8
        span = max(1, (hi - lo + n_buckets) // n_buckets)
        counted: Dict[int, int] = {}
        for v in values:
            counted[(v - lo) // span] = counted.get((v - lo) // span, 0) + 1
        buckets = [
            (f"{lo + i * span}-{lo + (i + 1) * span - 1}", counted[i])
            for i in sorted(counted)
        ]
    lines = [f"{label:>12}  count   share"]
    for name, count in buckets:
        frac = count / total
        lines.append(
            f"{name:>12}  {count:>5}  {frac * 100:>5.1f}%  |{_bar(frac)}|"
        )
    return lines


def _percentile(sorted_values: Sequence[int], q: float) -> int:
    if not sorted_values:
        return 0
    idx = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[idx]


@dataclass
class CoverageReport:
    """Aggregated exploration-coverage distributions of one campaign."""

    fs_name: str = "?"
    generator: str = "?"
    meta: Dict[str, object] = field(default_factory=dict)

    workloads: int = 0
    buggy_workloads: int = 0
    n_reports: int = 0
    truncated: int = 0

    #: fs -> syscall -> in-flight unit count at each fence epoch.
    inflight: Dict[str, Dict[str, List[int]]] = field(default_factory=dict)
    fences_per_workload: List[int] = field(default_factory=list)
    stores_per_workload: List[int] = field(default_factory=list)

    #: persistence function -> {stores, flushes, fences, bytes}.
    persistence: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: layout region -> {writes, bytes}.
    store_regions: Dict[str, Dict[str, int]] = field(default_factory=dict)

    states_enumerated: int = 0
    states_checked: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    memo_noop_dropped: int = 0
    #: Hits served by the campaign-wide shared memo service (a subset of
    #: :attr:`memo_hits`: cross-workload/cross-worker clean-verdict dedup).
    memo_shared_hits: int = 0
    #: Clean entries LRU-evicted from bounded local memos.
    memo_evictions: int = 0
    miss_reasons: Dict[str, int] = field(default_factory=dict)
    #: content-key hex -> max distinct overlay shapes seen (per workload).
    collisions: Dict[str, int] = field(default_factory=dict)
    unique_outcomes: int = 0

    #: Crash-plan mode ("subset" | "mech" | "mixed"; "?" until data arrives).
    crash_plans: str = "?"
    #: mechanism kind -> fence epochs recognized as that kind.
    mech_recognized: Dict[str, int] = field(default_factory=dict)
    mech_plans_emitted: int = 0
    mech_fallback_epochs: int = 0

    recovery: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Ingestion: one entry point for both journal result dicts and
    # ``workload_result`` trace-event fields (the keys coincide by design).
    # ------------------------------------------------------------------
    def add_fields(self, fields: Dict[str, object]) -> None:
        self.workloads += 1
        n_reports = int(
            fields.get("n_reports", len(list(fields.get("reports", []))))
        )
        self.n_reports += n_reports
        if n_reports:
            self.buggy_workloads += 1
        if fields.get("truncated"):
            self.truncated += 1
        self.states_enumerated += int(fields.get("n_crash_states", 0))
        self.states_checked += int(fields.get("n_unique_states", 0))
        self.memo_hits += int(fields.get("memo_hits", 0))
        self.memo_misses += int(fields.get("memo_misses", 0))
        self.memo_noop_dropped += int(fields.get("memo_noop_dropped", 0))
        self.memo_shared_hits += int(fields.get("memo_shared_hits", 0))
        self.memo_evictions += int(fields.get("memo_evictions", 0))
        self.unique_outcomes += int(fields.get("n_unique_outcomes", 0))
        self.fences_per_workload.append(int(fields.get("n_fences", 0)))
        for reason, n in dict(fields.get("memo_miss_reasons", {})).items():
            self.miss_reasons[str(reason)] = (
                self.miss_reasons.get(str(reason), 0) + int(n)
            )
        for pair in list(fields.get("memo_collisions", [])):
            key, count = str(pair[0]), int(pair[1])
            self.collisions[key] = max(self.collisions.get(key, 0), count)
        mode = str(fields.get("crash_plans", "subset"))
        if self.crash_plans == "?":
            self.crash_plans = mode
        elif self.crash_plans != mode:
            self.crash_plans = "mixed"
        for kind, n in dict(fields.get("mech_recognized", {})).items():
            self.mech_recognized[str(kind)] = (
                self.mech_recognized.get(str(kind), 0) + int(n)
            )
        self.mech_plans_emitted += int(fields.get("mech_plans_emitted", 0))
        self.mech_fallback_epochs += int(fields.get("mech_fallback_epochs", 0))
        stores = 0
        for func, mix in dict(fields.get("persistence", {})).items():
            mix = dict(mix)
            bucket = self.persistence.setdefault(
                str(func), {"stores": 0, "flushes": 0, "fences": 0, "bytes": 0}
            )
            for k in bucket:
                bucket[k] += int(mix.get(k, 0))
            stores += int(mix.get("stores", 0)) + int(mix.get("flushes", 0))
        self.stores_per_workload.append(stores)
        for region, traffic in dict(fields.get("store_regions", {})).items():
            traffic = dict(traffic)
            bucket = self.store_regions.setdefault(
                str(region), {"writes": 0, "bytes": 0}
            )
            for k in bucket:
                bucket[k] += int(traffic.get(k, 0))
        for k, v in dict(fields.get("recovery_overlap", {})).items():
            self.recovery[str(k)] = self.recovery.get(str(k), 0) + int(v)
        fs = str(fields.get("fs", self.fs_name))
        if self.fs_name == "?" and fs != "?":
            self.fs_name = fs
        bucket_fs = fs if fs != "?" else self.fs_name
        per_syscall = self.inflight.setdefault(bucket_fs, {})
        for syscall, counts in dict(fields.get("inflight", {})).items():
            per_syscall.setdefault(str(syscall), []).extend(
                int(c) for c in counts
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.memo_misses
        return self.memo_hits / total if total else 0.0

    @property
    def attribution_consistent(self) -> bool:
        """Reason counts sum exactly to the memo miss count."""
        return sum(self.miss_reasons.values()) == self.memo_misses

    @property
    def avoidable_misses(self) -> int:
        return self.miss_reasons.get("overlay_shape", 0) + self.miss_reasons.get(
            "noop_write_perturbation", 0
        )

    @property
    def outcome_headroom(self) -> float:
        """Fraction of checked states recovering to an already-seen outcome."""
        if not self.states_checked:
            return 0.0
        return 1.0 - self.unique_outcomes / self.states_checked

    @property
    def mech_recognized_fraction(self) -> float:
        """Fraction of classified epochs explained by a real mechanism
        (anything but the ``unstructured`` fallback kind)."""
        total = sum(self.mech_recognized.values())
        if not total:
            return 0.0
        return 1.0 - self.mech_recognized.get("unstructured", 0) / total

    @property
    def recovery_unread_fraction(self) -> float:
        """Fraction of stored cache lines recovery never reads."""
        stored = self.recovery.get("store_lines", 0)
        if not stored:
            return 0.0
        return 1.0 - self.recovery.get("overlap_lines", 0) / stored

    def all_window_sizes(self, fs: Optional[str] = None) -> List[int]:
        merged: List[int] = []
        for name, per_syscall in self.inflight.items():
            if fs is not None and name != fs:
                continue
            for counts in per_syscall.values():
                merged.extend(counts)
        return merged

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        return {
            "fs": self.fs_name,
            "generator": self.generator,
            "workloads": self.workloads,
            "buggy_workloads": self.buggy_workloads,
            "reports": self.n_reports,
            "truncated_workloads": self.truncated,
            "states_enumerated": self.states_enumerated,
            "states_checked": self.states_checked,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_hit_rate": self.memo_hit_rate,
            "memo_noop_writes_dropped": self.memo_noop_dropped,
            "memo_shared_hits": self.memo_shared_hits,
            "memo_evictions": self.memo_evictions,
            "memo_miss_reasons": dict(self.miss_reasons),
            "memo_miss_reasons_consistent": self.attribution_consistent,
            "memo_collisions": sorted(
                self.collisions.items(), key=lambda kv: (-kv[1], kv[0])
            ),
            "unique_outcomes": self.unique_outcomes,
            "outcome_headroom": self.outcome_headroom,
            "crash_plans": self.crash_plans,
            "mech_recognized": dict(self.mech_recognized),
            "mech_plans_emitted": self.mech_plans_emitted,
            "mech_fallback_epochs": self.mech_fallback_epochs,
            "mech_recognized_fraction": self.mech_recognized_fraction,
            "fences_per_workload": list(self.fences_per_workload),
            "stores_per_workload": list(self.stores_per_workload),
            "persistence": {k: dict(v) for k, v in self.persistence.items()},
            "store_regions": {k: dict(v) for k, v in self.store_regions.items()},
            "recovery": dict(self.recovery),
            "recovery_unread_fraction": self.recovery_unread_fraction,
            "inflight": {
                fs: {s: list(c) for s, c in per.items()}
                for fs, per in self.inflight.items()
            },
        }

    # ------------------------------------------------------------------
    # Markdown rendering
    # ------------------------------------------------------------------
    def render_markdown(self) -> str:
        lines: List[str] = []
        lines.append(
            f"# Exploration coverage: {self.fs_name} ({self.generator})"
        )
        lines.append("")
        extras = {
            k: v for k, v in sorted(self.meta.items())
            if k not in ("fs", "generator")
        }
        if extras:
            lines.append(
                "- " + ", ".join(f"**{k}:** {v}" for k, v in extras.items())
            )
        lines.append(f"- **workloads:** {self.workloads}"
                     + (f" ({self.truncated} truncated)" if self.truncated else ""))
        lines.append(
            f"- **findings:** {self.n_reports} report(s) across "
            f"{self.buggy_workloads} buggy workload(s)"
        )
        lines.append("")

        lines.append("## Crash-state space")
        lines.append("")
        lines.append(
            f"| enumerated | checked | memo hits | shared hits | "
            f"memo hit-rate | unique outcomes |"
        )
        lines.append("| ---: | ---: | ---: | ---: | ---: | ---: |")
        lines.append(
            f"| {self.states_enumerated} | {self.states_checked} | "
            f"{self.memo_hits} | {self.memo_shared_hits} | "
            f"{self.memo_hit_rate * 100:.1f}% | "
            f"{self.unique_outcomes} |"
        )
        lines.append("")
        if self.memo_shared_hits or self.memo_evictions:
            lines.append(
                f"The campaign-wide shared memo served "
                f"{self.memo_shared_hits} clean-verdict hit(s) across "
                f"workloads/workers; {self.memo_evictions} clean local "
                f"entrie(s) were LRU-evicted under the memo bound."
            )
            lines.append("")
        if self.states_checked:
            lines.append(
                f"Of {self.states_checked} checked states, only "
                f"{self.unique_outcomes} recovered to distinct observable "
                f"outcomes — **{self.outcome_headroom * 100:.1f}% headroom** "
                f"for WITCHER-style output-equivalence pruning."
            )
            lines.append("")

        lines.append("## In-flight window size CDF (per fence epoch)")
        lines.append("")
        for fs in sorted(self.inflight):
            windows = self.all_window_sizes(fs)
            if not windows:
                continue
            ordered = sorted(windows)
            lines.append(
                f"**{fs}** — {len(windows)} fence epoch(s) with in-flight "
                f"writes; avg {sum(windows) / len(windows):.1f}, "
                f"p95 {_percentile(ordered, 0.95)}, max {ordered[-1]} units"
            )
            lines.append("")
            lines.append("```")
            lines.extend(ascii_cdf(windows, label="units"))
            lines.append("```")
            lines.append("")
            per_syscall = self.inflight[fs]
            if per_syscall:
                lines.append("| syscall | epochs | avg units | p95 | max |")
                lines.append("| --- | ---: | ---: | ---: | ---: |")
                for syscall in sorted(per_syscall):
                    counts = sorted(per_syscall[syscall])
                    lines.append(
                        f"| {syscall} | {len(counts)} | "
                        f"{sum(counts) / len(counts):.1f} | "
                        f"{_percentile(counts, 0.95)} | {counts[-1]} |"
                    )
                lines.append("")

        lines.append("## Fence epochs per workload")
        lines.append("")
        lines.append("```")
        lines.extend(ascii_histogram(self.fences_per_workload, label="fences"))
        lines.append("```")
        lines.append("")
        lines.append("## Stores per workload")
        lines.append("")
        lines.append("```")
        lines.extend(ascii_histogram(self.stores_per_workload, label="stores"))
        lines.append("```")
        lines.append("")

        lines.append("## Persistence-mechanism store breakdown")
        lines.append("")
        if self.persistence:
            lines.append("| function | stores | flushes | fences | bytes |")
            lines.append("| --- | ---: | ---: | ---: | ---: |")
            ordered_funcs = sorted(
                self.persistence.items(),
                key=lambda kv: -(kv[1]["stores"] + kv[1]["flushes"] + kv[1]["fences"]),
            )
            for func, mix in ordered_funcs:
                lines.append(
                    f"| `{func}` | {mix['stores']} | {mix['flushes']} | "
                    f"{mix['fences']} | {mix['bytes']} |"
                )
        else:
            lines.append("(no persistence data)")
        lines.append("")

        lines.append("## Mechanism recognition")
        lines.append("")
        if self.mech_recognized:
            total = sum(self.mech_recognized.values()) or 1
            lines.append(
                f"Crash-plan mode: `{self.crash_plans}` — "
                f"{self.mech_recognized_fraction * 100:.1f}% of {total} "
                f"classified epoch(s) explained by a recognized mechanism; "
                f"{self.mech_plans_emitted} targeted state(s) emitted, "
                f"{self.mech_fallback_epochs} epoch(s) fell back to subset "
                f"enumeration."
            )
            lines.append("")
            lines.append("| mechanism kind | epochs | share |")
            lines.append("| --- | ---: | ---: |")
            for kind, n in sorted(
                self.mech_recognized.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"| `{kind}` | {n} | {n / total * 100:.1f}% |")
        else:
            lines.append(
                "(no mechanism data — run with `--crash-plans mech`)"
            )
        lines.append("")

        lines.append("## Store placement by layout region")
        lines.append("")
        if self.store_regions:
            lines.append("| region | writes | bytes |")
            lines.append("| --- | ---: | ---: |")
            for region, traffic in sorted(
                self.store_regions.items(), key=lambda kv: -kv[1]["writes"]
            ):
                lines.append(
                    f"| `{region}` | {traffic['writes']} | {traffic['bytes']} |"
                )
        else:
            lines.append("(no layout data)")
        lines.append("")

        lines.append("## Memo-miss attribution")
        lines.append("")
        if self.miss_reasons:
            lines.append("| reason | misses | share |")
            lines.append("| --- | ---: | ---: |")
            total = sum(self.miss_reasons.values()) or 1
            for reason, n in sorted(
                self.miss_reasons.items(), key=lambda kv: (-kv[1], kv[0])
            ):
                lines.append(f"| `{reason}` | {n} | {n / total * 100:.1f}% |")
            lines.append("")
            check = "==" if self.attribution_consistent else "!="
            mark = "✓" if self.attribution_consistent else "✗ MISMATCH"
            lines.append(
                f"Reason counts sum to {sum(self.miss_reasons.values())} "
                f"{check} `checker.memo.misses` ({self.memo_misses}) {mark}."
            )
            lines.append(
                f"Canonical-key sentinel misses: "
                f"{self.avoidable_misses} "
                f"(`overlay_shape` + `noop_write_perturbation` — the memo "
                f"keys on the byte-granular content address, so any "
                f"nonzero count is a key-purity regression); "
                f"{self.memo_noop_dropped} no-op overlay write(s) dropped "
                f"before digesting."
            )
            lines.append("")
            if self.collisions:
                lines.append(
                    "Top colliding content keys (byte-identical content "
                    "checked under multiple overlay shapes):"
                )
                lines.append("")
                lines.append("| content key | distinct shapes |")
                lines.append("| --- | ---: |")
                for key, count in sorted(
                    self.collisions.items(), key=lambda kv: (-kv[1], kv[0])
                )[:5]:
                    lines.append(f"| `{key}` | {count} |")
                lines.append("")
        else:
            lines.append("(no attribution data)")
            lines.append("")

        lines.append("## Recovery-read redundancy")
        lines.append("")
        if self.recovery.get("store_lines"):
            lines.append(
                f"Summed over workloads: recovery read "
                f"{self.recovery.get('read_lines', 0)} cache line(s) at "
                f"mount, workloads stored {self.recovery['store_lines']}, "
                f"overlap {self.recovery.get('overlap_lines', 0)} — "
                f"**{self.recovery_unread_fraction * 100:.1f}%** of stored "
                f"lines are never read by recovery (Vinter-heuristic "
                f"redundancy)."
            )
        else:
            lines.append("(no recovery-read data)")
        lines.append("")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def coverage_from_results(
    result_dicts: Iterable[Dict[str, object]],
    fs: str = "?",
    generator: str = "?",
    meta: Optional[Dict[str, object]] = None,
) -> CoverageReport:
    """Build a report from serialized ``TestResult`` dicts."""
    report = CoverageReport(fs_name=fs, generator=generator)
    if meta:
        report.meta.update(meta)
    for fields in result_dicts:
        report.add_fields(fields)
    return report


def coverage_from_campaign_dir(campaign_dir: str) -> CoverageReport:
    """Build a report from a campaign directory's checkpoint journal.

    Works on any campaign — traced or not — because the journal's
    ``item_done`` records carry full serialized results.
    """
    from repro.campaign.journal import CheckpointJournal  # deferred: no cycle
    from repro.campaign.spec import CampaignSpec

    state = CheckpointJournal.replay(campaign_dir)
    fs, generator = "?", "?"
    meta: Dict[str, object] = {}
    if state.spec_dict is not None:
        spec = CampaignSpec.from_dict(state.spec_dict)
        fs, generator = spec.fs, spec.generator
        meta["seq"] = spec.seq
    report = CoverageReport(fs_name=fs, generator=generator)
    report.meta.update(meta)
    for item_id in sorted(state.results, key=lambda i: state.ordinals.get(i, 0)):
        for fields in state.results[item_id]:
            report.add_fields(fields)
    return report


def coverage_from_traces(paths: Sequence[str]) -> CoverageReport:
    """Build a report from ``--trace`` JSONL files (``workload_result``)."""
    report = CoverageReport()
    for path in paths:
        for rec in read_jsonl(path):
            kind = rec.get("type")
            if kind == "meta":
                report.meta.update(
                    {k: v for k, v in rec.items() if k != "type"}
                )
                report.fs_name = str(report.meta.get("fs", report.fs_name))
                report.generator = str(
                    report.meta.get("generator", report.generator)
                )
            elif kind == "event" and rec.get("name") == "workload_result":
                report.add_fields(rec.get("fields", {}))
    return report
