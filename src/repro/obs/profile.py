"""Deterministic hot-path profiler: stage clocks, callsite attribution,
byte accounting.

The telemetry facade (:mod:`repro.obs`) answers *what happened* — spans,
counters, events.  This module answers *where the time and bytes go* inside
the replay/check hot path: per-pipeline-stage wall time, per-callsite
wall time and byte throughput, and four byte-accounting categories that
mirror the delta-replay data plane:

* ``materialized`` — flat bytes produced (``CrashImage.materialize`` plus
  per-region ``FenceBase`` snapshots, both O(device) copies);
* ``overlay_applied`` — sparse overlay bytes written into the shared mount
  device by ``PMDevice.cow_view``;
* ``digest_hashed`` — bytes fed to sha1 by the content-address layer
  (``CrashImage.digest`` and ``ChunkedDigest`` chunk rehashes);
* ``cow_rollback`` — before-image bytes restored when a COW mount view
  exits (overlay undo plus checker-mutation undo).

Instrumentation is pull-based and nullable, exactly like the telemetry
counters: hot functions read the module-global :data:`ACTIVE` profiler and
skip all bookkeeping when it is ``None`` (one attribute load and an ``is``
check — ``benchmarks/bench_telemetry_overhead.py`` pins the disabled path
inside the existing overhead gate).  The harness installs a profiler per
workload when ``ChipmunkConfig.profile`` is set and serializes the result
into ``TestResult.profile``, so profiles survive the campaign journal and
aggregate across workloads with :func:`merge_profiles`.

The stage clock telescopes: :meth:`Profiler.set_stage` charges the time
since the previous transition to the outgoing stage, so the per-stage
seconds sum exactly to the profiled window — the invariant
``tests/obs/test_profile.py`` pins against ``TestResult.elapsed``.
Callsite seconds are attribution *within* a stage and can never exceed it.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ACTIVE",
    "BYTE_CATEGORIES",
    "Profiler",
    "install",
    "human_bytes",
    "merge_profiles",
    "render_profile",
]

#: The installed profiler, or ``None`` (the default — instrumentation off).
#: Hot paths read this through the module (``profile.ACTIVE``) so
#: installation is visible everywhere without threading a handle through
#: every constructor.
ACTIVE: Optional["Profiler"] = None

#: Byte-accounting categories, in render order.
BYTE_CATEGORIES = (
    "materialized",
    "overlay_applied",
    "digest_hashed",
    "cow_rollback",
)

#: Stage used for work outside any explicit :meth:`Profiler.set_stage`
#: window (pipeline setup, teardown).
OTHER_STAGE = "other"


class Profiler:
    """Accumulates stage wall time, callsite attribution, and byte counts."""

    __slots__ = ("stages", "sites", "bytes", "_stage", "_t0", "_inner")

    def __init__(self) -> None:
        #: stage -> wall seconds (telescoping; sums to the profiled window).
        self.stages: Dict[str, float] = {}
        #: (stage, site) -> [calls, seconds, bytes].
        self.sites: Dict[Tuple[str, str], List[float]] = {}
        #: byte-accounting category -> total bytes.
        self.bytes: Dict[str, int] = {cat: 0 for cat in BYTE_CATEGORIES}
        self._stage = OTHER_STAGE
        self._t0: Optional[float] = None
        # Running total of attributed seconds, consumed by mark() /
        # add_exclusive() so nesting callsites subtract their children.
        self._inner = 0.0

    # ------------------------------------------------------------------
    # Stage clock
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open the profiled window (idempotent)."""
        if self._t0 is None:
            self._t0 = perf_counter()

    def set_stage(self, name: str) -> None:
        """Charge time since the last transition to the outgoing stage."""
        now = perf_counter()
        if self._t0 is not None:
            prev = self._stage
            self.stages[prev] = self.stages.get(prev, 0.0) + (now - self._t0)
        self._stage = name
        self._t0 = now

    def stop(self) -> None:
        """Close the profiled window, charging the tail to the live stage."""
        if self._t0 is not None:
            self.set_stage(OTHER_STAGE)
            self._t0 = None
            self._stage = OTHER_STAGE

    # ------------------------------------------------------------------
    # Callsite attribution (the hot-path entry point)
    # ------------------------------------------------------------------
    def add(self, site: str, seconds: float, nbytes: int = 0,
            category: Optional[str] = None) -> None:
        """Attribute one call at ``site`` to the current stage."""
        key = (self._stage, site)
        cell = self.sites.get(key)
        if cell is None:
            cell = [0, 0.0, 0]
            self.sites[key] = cell
        cell[0] += 1
        cell[1] += seconds
        cell[2] += nbytes
        self._inner += seconds
        if category is not None:
            self.bytes[category] = self.bytes.get(category, 0) + nbytes

    def mark(self) -> float:
        """Snapshot of total attributed seconds, for :meth:`add_exclusive`."""
        return self._inner

    def add_exclusive(self, site: str, seconds: float, mark: float,
                      nbytes: int = 0, category: Optional[str] = None) -> None:
        """Attribute a call minus the profiled work nested inside it.

        ``mark`` is the :meth:`mark` value taken when the call started;
        anything attributed since then ran *inside* this call (the memo
        key wrapping a flatten, a fence base wrapping chunk rehashes) and
        is subtracted, so per-stage callsite seconds stay a partition of
        the stage clock rather than double-counting.  Chains compose: an
        exclusive parent adds only its own time to the running total, so
        a grandparent subtracts each level exactly once.
        """
        self.add(site, seconds - (self._inner - mark), nbytes, category)

    # ------------------------------------------------------------------
    # Serialization (JSON-safe; rides TestResult through the journal)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        sites = [
            [stage, site, int(calls), seconds, int(nbytes)]
            for (stage, site), (calls, seconds, nbytes) in self.sites.items()
        ]
        sites.sort(key=lambda row: -row[3])
        return {
            "stages": dict(self.stages),
            "sites": sites,
            "bytes": {k: int(v) for k, v in self.bytes.items()},
        }


@contextmanager
def install(profiler: Profiler):
    """Install ``profiler`` as :data:`ACTIVE` for the enclosed block.

    Re-entrant: the previous profiler (usually ``None``) is restored on
    exit, so nested pipelines — the oracle re-running the workload, a
    forensics re-check — keep attributing to the outermost profile.
    """
    global ACTIVE
    prev = ACTIVE
    ACTIVE = profiler
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
        ACTIVE = prev


# ----------------------------------------------------------------------
# Aggregation + rendering (the ``repro profile`` CLI surface)
# ----------------------------------------------------------------------
def merge_profiles(profiles: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Sum per-workload profile dicts into one campaign-level profile."""
    stages: Dict[str, float] = {}
    sites: Dict[Tuple[str, str], List[float]] = {}
    nbytes: Dict[str, int] = {cat: 0 for cat in BYTE_CATEGORIES}
    for prof in profiles:
        if not prof:
            continue
        for stage, seconds in dict(prof.get("stages", {})).items():
            stages[stage] = stages.get(stage, 0.0) + float(seconds)
        for stage, site, calls, seconds, sbytes in prof.get("sites", []):
            cell = sites.setdefault((stage, site), [0, 0.0, 0])
            cell[0] += int(calls)
            cell[1] += float(seconds)
            cell[2] += int(sbytes)
        for cat, n in dict(prof.get("bytes", {})).items():
            nbytes[cat] = nbytes.get(cat, 0) + int(n)
    rows = [
        [stage, site, calls, seconds, b]
        for (stage, site), (calls, seconds, b) in sites.items()
    ]
    rows.sort(key=lambda row: -row[3])
    return {"stages": stages, "sites": rows, "bytes": nbytes}


def human_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.0f} {unit}" if unit == "B" else f"{n:.1f} {unit}"
        n /= 1024
    return f"{n:.1f} GiB"


def render_profile(profile: Dict[str, object], top: int = 15) -> str:
    """Markdown tables: stage breakdown, hot callsites, byte accounting."""
    out: List[str] = []
    stages = dict(profile.get("stages", {}))
    total = sum(stages.values())
    out.append("## Stage breakdown")
    out.append("")
    out.append("| stage | seconds | share |")
    out.append("| --- | ---: | ---: |")
    for stage, seconds in sorted(stages.items(), key=lambda kv: -kv[1]):
        share = seconds / total * 100 if total else 0.0
        out.append(f"| {stage} | {seconds:.4f} | {share:.1f}% |")
    out.append(f"| **total** | **{total:.4f}** | 100.0% |")
    out.append("")
    out.append(f"## Hot callsites (top {top} by wall time)")
    out.append("")
    out.append("| stage | site | calls | seconds | bytes |")
    out.append("| --- | --- | ---: | ---: | ---: |")
    sites = list(profile.get("sites", []))
    for stage, site, calls, seconds, nbytes in sites[:top]:
        out.append(
            f"| {stage} | {site} | {calls} | {seconds:.4f} | "
            f"{human_bytes(nbytes)} |"
        )
    if not sites:
        out.append("| - | (no attributed callsites) | 0 | 0.0000 | 0 B |")
    out.append("")
    out.append("## Byte accounting")
    out.append("")
    out.append("| category | bytes |")
    out.append("| --- | ---: |")
    for cat in BYTE_CATEGORIES:
        out.append(f"| {cat} | {human_bytes(int(dict(profile.get('bytes', {})).get(cat, 0)))} |")
    out.append("")
    return "\n".join(out)
