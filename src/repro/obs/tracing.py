"""Nestable spans with a ring-buffer recorder and trace exporters.

The tracer records two record kinds:

* **spans** — named, nestable intervals (``record``, ``oracle``,
  ``enumerate``, ``check``, ``triage``, plus per-syscall and
  per-crash-state children).  A span reads ``perf_counter`` exactly twice,
  at enter and exit — never inside the work it wraps.
* **events** — instant markers carrying arbitrary JSON-serialisable fields
  (``workload_result``, ``cluster_found``, ``campaign_start``); the
  campaign aggregator (:mod:`repro.obs.campaign`) is rebuilt from these.

Completed records land in a bounded ring buffer (oldest dropped first) so a
million-workload campaign cannot exhaust memory, and export to two formats:

* JSONL — one record per line, the campaign's durable artifact
  (``--trace FILE``; consumed by ``python -m repro stats``);
* Chrome trace-event JSON — ``chrome://tracing`` / Perfetto compatible,
  produced by :func:`spans_to_chrome` / :func:`jsonl_to_chrome`.

Timestamps are ``perf_counter`` seconds relative to the tracer's creation,
so traces are meaningful as durations and orderings, not wall-clock dates.
"""

from __future__ import annotations

import json
from collections import deque
from time import perf_counter
from typing import Deque, Dict, Iterator, List, Optional

#: Default ring-buffer capacity (completed records kept).
DEFAULT_CAPACITY = 65536


class Span:
    """One open (then finished) trace interval; used as a context manager."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "depth",
                 "start", "duration")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start = 0.0
        self.duration = 0.0

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.start = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.duration = perf_counter() - self.start
        self.tracer._pop(self)

    def to_dict(self) -> Dict[str, object]:
        rec: Dict[str, object] = {
            "type": "span", "name": self.name, "id": self.span_id,
            "ts": self.start - self.tracer.epoch, "dur": self.duration,
            "depth": self.depth,
        }
        if self.parent_id is not None:
            rec["parent"] = self.parent_id
        if self.attrs:
            rec["attrs"] = self.attrs
        return rec


class Tracer:
    """Span/event recorder with bounded memory.

    Nesting is tracked with an explicit stack: a span entered while another
    is open becomes its child (``parent``/``depth`` in the record).  Only
    *finished* spans occupy ring-buffer slots.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.epoch = perf_counter()
        self.records: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self.dropped = 0
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **fields) -> None:
        """Record an instant event."""
        self._append({
            "type": "event", "name": name,
            "ts": perf_counter() - self.epoch, "fields": fields,
        })

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        if self._stack:
            span.parent_id = self._stack[-1].span_id
            span.depth = len(self._stack)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exceptions unwinding through several open spans.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._append(span.to_dict())

    def _append(self, record: Dict[str, object]) -> None:
        if len(self.records) == self.records.maxlen:
            self.dropped += 1
        self.records.append(record)

    # ------------------------------------------------------------------
    def export(self) -> List[Dict[str, object]]:
        """Finished records in timestamp order."""
        return sorted(self.records, key=lambda r: r["ts"])


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(path: str, records) -> int:
    """Write records (dicts) as JSON Lines; returns the line count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
    return n


def read_jsonl(path: str) -> Iterator[Dict[str, object]]:
    """Yield one dict per non-empty line of a JSONL trace."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def spans_to_chrome(records) -> Dict[str, object]:
    """Convert JSONL-shape records to a Chrome trace-event document.

    Spans become complete (``ph: "X"``) events, instant events become
    ``ph: "i"``; timestamps and durations are microseconds as the format
    requires.  The result loads in ``chrome://tracing`` and Perfetto.
    """
    events: List[Dict[str, object]] = []
    for rec in records:
        kind = rec.get("type")
        if kind == "span":
            events.append({
                "name": rec["name"], "ph": "X", "pid": 1, "tid": 1,
                "ts": round(float(rec["ts"]) * 1e6, 3),
                "dur": round(float(rec["dur"]) * 1e6, 3),
                "args": rec.get("attrs", {}),
            })
        elif kind == "event":
            events.append({
                "name": rec["name"], "ph": "i", "s": "g", "pid": 1, "tid": 1,
                "ts": round(float(rec["ts"]) * 1e6, 3),
                "args": rec.get("fields", {}),
            })
        # meta/metric records carry no timeline position.
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def jsonl_to_chrome(jsonl_path: str, chrome_path: str) -> int:
    """Convert a JSONL trace file to a Chrome trace-event file.

    Returns the number of timeline events written.
    """
    doc = spans_to_chrome(read_jsonl(jsonl_path))
    with open(chrome_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
