"""Campaign differencing: the semantic gate behind ``repro diff A B``.

Every roadmap perf item — per-family mech rules, output-equivalence
pruning, the vectorized hot path — is a change that must prove "same bugs,
fewer states, more states/sec".  ``cmp bugs.json`` proves byte equality and
nothing else: it cannot say *which* bug appeared, tolerates no benign
re-ordering, and ignores the state/throughput half of the claim entirely.
This module compares two campaigns at the level the triage layer already
defines:

* **Bug clusters** are matched by feeding both sides' reports through one
  provenance-aware :class:`~repro.core.triage.Triage` — the culprit-site
  key ``(fs, consequence, intersecting (persistence func, layout region)
  sites)``, with lexical Jaccard as the fallback for reports without
  provenance.  A cluster fed only by side B **appeared**, only by side A
  **disappeared**, by both **persisting**.  Appeared/disappeared clusters
  are bug-set divergence; the CLI exits non-zero on them.
* **Metrics** (states enumerated/checked, memo hit-rate, mech plan and
  fallback counts, states/sec, coverage headroom) are folded from each
  side's checkpoint journal or telemetry trace and reported as deltas with
  a tolerance threshold — informational, never part of the exit code,
  because wall-clock numbers differ across hosts while bug sets must not.

``--strict`` additionally demands the two serialized exemplar report lists
be equal object-for-object — the old ``cmp bugs.json`` contract — for
callers (CI's subset-vs-mech gate) that pin byte-level equivalence on top
of cluster-level equivalence.

A side is a campaign directory (``bugs.json`` + ``journal.jsonl``), a bare
``*.json`` report file (``{"reports": [...]}`` or a list), or a ``*.jsonl``
telemetry trace (metrics only — cluster comparison needs reports).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.report import BugReport

__all__ = ["DiffSide", "CampaignDiff", "load_side", "diff_sides", "render_diff"]

#: Metrics compared between sides, in render order.  ``direction`` marks
#: which way is better for the delta annotation ("higher"/"lower"/None).
METRICS = (
    ("workloads", None),
    ("states_enumerated", "lower"),
    ("states_checked", "lower"),
    ("memo_hit_rate", "higher"),
    ("mech_plans_emitted", None),
    ("mech_fallback_epochs", "lower"),
    ("reports", None),
    ("wall_time_seconds", "lower"),
    ("states_per_sec", "higher"),
    ("coverage_headroom", None),
)


@dataclass
class DiffSide:
    """One comparand: its reports (if available) and folded metrics."""

    path: str
    #: Parsed bug reports; ``None`` when the source has none (trace files).
    reports: Optional[List[BugReport]] = None
    #: The raw serialized report list, for ``--strict`` object equality.
    report_dicts: Optional[List[dict]] = None
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class CampaignDiff:
    """The diff of two sides; ``divergent`` drives the CLI exit code."""

    a: DiffSide
    b: DiffSide
    #: Clusters fed only by side B — new bugs.
    appeared: List[object] = field(default_factory=list)
    #: Clusters fed only by side A — bugs the change lost.
    disappeared: List[object] = field(default_factory=list)
    #: Clusters fed by both sides.
    persisting: List[object] = field(default_factory=list)
    #: True when both sides carried reports and clusters could be matched.
    clusters_compared: bool = False
    #: ``--strict`` verdict: None = not requested/unavailable.
    strict_equal: Optional[bool] = None

    @property
    def divergent(self) -> bool:
        if self.appeared or self.disappeared:
            return True
        return self.strict_equal is False


def _metrics_of_stats(stats) -> Dict[str, float]:
    """Headline metrics from a :class:`~repro.obs.campaign.CampaignStats`."""
    metrics = {
        "workloads": float(stats.n_workloads),
        "states_enumerated": float(stats.n_crash_states),
        "states_checked": float(stats.n_unique_states),
        "memo_hit_rate": stats.memo_hit_rate,
        "mech_plans_emitted": float(stats.n_mech_plans_emitted),
        "mech_fallback_epochs": float(stats.n_mech_fallback_epochs),
        "reports": float(stats.n_reports),
        "wall_time_seconds": stats.wall_time,
        "states_per_sec": stats.states_per_second,
    }
    if stats.n_memo_misses:
        metrics["coverage_headroom"] = (
            1.0 - stats.n_unique_outcomes / stats.n_memo_misses
        )
    return metrics


def _parse_report_dicts(doc) -> List[dict]:
    if isinstance(doc, dict):
        doc = doc.get("reports", [])
    if not isinstance(doc, list):
        raise ValueError("report file is neither a list nor {'reports': [...]}")
    return [dict(d) for d in doc]


def _parse_reports(report_dicts: List[dict]) -> List[BugReport]:
    try:
        return [BugReport.from_dict(d) for d in report_dicts]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed bug report: {exc}") from exc


def load_side(path: str) -> DiffSide:
    """Load one comparand; raises ``FileNotFoundError``/``ValueError``."""
    from repro.obs.campaign import CampaignStats

    if os.path.isdir(path):
        from repro.campaign.journal import CheckpointJournal
        from repro.core.harness import TestResult

        side = DiffSide(path=path)
        bugs_path = os.path.join(path, "bugs.json")
        if os.path.exists(bugs_path):
            with open(bugs_path, "r", encoding="utf-8") as fh:
                side.report_dicts = _parse_report_dicts(json.load(fh))
            side.reports = _parse_reports(side.report_dicts)
        state = CheckpointJournal.replay(path)
        if state.results:
            stats = CampaignStats()
            for item_id in sorted(
                state.results, key=lambda i: state.ordinals.get(i, 0)
            ):
                for result_dict in state.results[item_id]:
                    stats.add_result(TestResult.from_dict(result_dict))
            side.metrics = _metrics_of_stats(stats)
            if side.reports is None:
                # No merged bugs.json (campaign interrupted before merge):
                # fall back to the journal's full report stream — the diff's
                # own triage pass dedups it.
                side.reports = [
                    report
                    for item_id in sorted(
                        state.results, key=lambda i: state.ordinals.get(i, 0)
                    )
                    for result_dict in state.results[item_id]
                    for report in TestResult.from_dict(result_dict).reports
                ]
        if side.reports is None and not side.metrics:
            raise FileNotFoundError(
                f"{path}: neither bugs.json nor journal.jsonl found"
            )
        return side
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    if path.endswith(".jsonl"):
        stats = CampaignStats.from_traces([path])
        return DiffSide(path=path, metrics=_metrics_of_stats(stats))
    with open(path, "r", encoding="utf-8") as fh:
        report_dicts = _parse_report_dicts(json.load(fh))
    return DiffSide(
        path=path,
        reports=_parse_reports(report_dicts),
        report_dicts=report_dicts,
    )


def diff_sides(a: DiffSide, b: DiffSide, strict: bool = False) -> CampaignDiff:
    """Match both sides' bug clusters and compute the divergence verdict."""
    from repro.core.triage import Triage

    diff = CampaignDiff(a=a, b=b)
    if a.reports is not None and b.reports is not None:
        triage = Triage(provenance=True)
        sides_of: Dict[int, set] = {}
        for label, reports in (("A", a.reports), ("B", b.reports)):
            for report in reports:
                cluster = triage.add(report)
                sides_of.setdefault(id(cluster), set()).add(label)
        for cluster in triage.clusters:
            sides = sides_of[id(cluster)]
            if sides == {"A"}:
                diff.disappeared.append(cluster)
            elif sides == {"B"}:
                diff.appeared.append(cluster)
            else:
                diff.persisting.append(cluster)
        diff.clusters_compared = True
    if strict:
        if a.report_dicts is None or b.report_dicts is None:
            raise ValueError(
                "--strict needs serialized report lists (bugs.json) on both sides"
            )
        diff.strict_equal = a.report_dicts == b.report_dicts
    return diff


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    return f"{value:.3g}"


def _cluster_lines(clusters) -> List[str]:
    lines = []
    for cluster in clusters:
        ex = cluster.exemplar
        line = f"- **{ex.consequence.value}** [{ex.fs_name}]: {ex.detail[:160]}"
        sites = cluster.describe_sites()
        if sites:
            line += f"\n  - culprit sites: {sites}"
        lines.append(line)
    return lines


def render_diff(diff: CampaignDiff, tol: float = 0.1) -> str:
    """The ``diff.md`` document."""
    out: List[str] = []
    out.append("# Campaign diff")
    out.append("")
    out.append(f"- A: `{diff.a.path}`")
    out.append(f"- B: `{diff.b.path}`")
    out.append("")
    out.append("## Bug clusters")
    out.append("")
    if not diff.clusters_compared:
        out.append(
            "*(cluster comparison unavailable — a side carries no reports)*"
        )
    else:
        out.append(
            f"{len(diff.appeared)} appeared, {len(diff.disappeared)} "
            f"disappeared, {len(diff.persisting)} persisting — "
            + ("**DIVERGENT**" if diff.appeared or diff.disappeared
               else "bug sets match")
        )
        for title, clusters in (
            ("Appeared (B only)", diff.appeared),
            ("Disappeared (A only)", diff.disappeared),
            ("Persisting (both)", diff.persisting),
        ):
            out.append("")
            out.append(f"### {title}")
            out.append("")
            out.extend(_cluster_lines(clusters) or ["*(none)*"])
    if diff.strict_equal is not None:
        out.append("")
        out.append(
            "Strict serialized-report equality: "
            + ("**equal**" if diff.strict_equal else "**NOT equal**")
        )
    out.append("")
    out.append("## Metrics")
    out.append("")
    if not diff.a.metrics and not diff.b.metrics:
        out.append("*(no metrics on either side)*")
    else:
        out.append(f"| metric | A | B | delta | >±{tol * 100:.0f}%? |")
        out.append("| --- | ---: | ---: | ---: | :---: |")
        for name, direction in METRICS:
            va = diff.a.metrics.get(name)
            vb = diff.b.metrics.get(name)
            if va is None and vb is None:
                continue
            if va is None or vb is None:
                out.append(
                    f"| {name} | {_fmt(va) if va is not None else '-'} | "
                    f"{_fmt(vb) if vb is not None else '-'} | - | - |"
                )
                continue
            delta = vb - va
            rel = delta / abs(va) if va else (0.0 if not delta else float("inf"))
            flagged = abs(rel) > tol
            note = ""
            if flagged and direction is not None:
                better = (rel > 0) == (direction == "higher")
                note = " (better)" if better else " (worse)"
            rel_text = f"{rel * 100:+.1f}%" if rel != float("inf") else "new"
            out.append(
                f"| {name} | {_fmt(va)} | {_fmt(vb)} | "
                f"{rel_text} | {'yes' + note if flagged else ''} |"
            )
    out.append("")
    return "\n".join(out)
