"""Benchmark history ledger: append-only run records with trend analysis.

``BENCH_replay.json`` is overwritten on every bench run, so the repo never
accumulates a performance *trajectory* — exactly what the roadmap's perf
items (vectorized hot path, equivalence pruning) need to prove "same bugs,
faster".  This module is the accumulating half: benchmarks call
:func:`append_record` to add one structured line to ``BENCH_history.jsonl``
(wall-clock stamp, host fingerprint, bench config, metrics), and
``python -m repro perf`` renders trend tables and flags regressions against
the last-N runs.

Ledger format (one JSON object per line, append-only)::

    {"t": 1754700000.0, "bench": "replay_delta",
     "host": {"python": "3.12.3", "machine": "x86_64", "cpus": 8, ...},
     "config": {"device_size": 262144, ...},
     "metrics": {"delta": {"states_per_sec": 812.0, ...}, ...}}

Appends are flushed and fsync'd, and the reader tolerates a torn final
line, mirroring the campaign checkpoint journal
(:meth:`repro.campaign.journal.CheckpointJournal.replay`): a bench killed
mid-append loses only its own record.

Regression flagging is deliberately conservative: only metrics whose name
declares a direction (``*_seconds``/``*_peak*`` lower-better,
``*per_sec``/``*speedup*``/``*hit_rate*`` higher-better) are compared, the
baseline is the median of prior same-host-fingerprint runs (cross-host
numbers are not comparable), and fewer than :data:`MIN_BASELINE` priors
means no verdict — so a fresh CI host passes its first runs by
construction, which is what makes the CI gate tolerant.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LEDGER",
    "append_record",
    "check_regressions",
    "flatten_metrics",
    "host_fingerprint",
    "metric_direction",
    "read_ledger",
    "render_history",
]

DEFAULT_LEDGER = "BENCH_history.jsonl"

#: Minimum same-host prior runs before a regression verdict is possible.
MIN_BASELINE = 1

#: Substring hints declaring a metric's good direction.  Order matters:
#: the first matching hint wins, so ``states_per_sec`` is higher-better
#: even though bare ``states``/``bytes`` counts carry no direction.
_HIGHER = ("per_sec", "speedup", "ratio", "hit_rate")
_LOWER = ("seconds", "peak_alloc", "peak_bytes", "overhead")


def host_fingerprint() -> Dict[str, object]:
    """Identity of the machine a bench ran on, for cross-run comparability."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def append_record(
    path: str,
    bench: str,
    metrics: Dict[str, object],
    config: Optional[Dict[str, object]] = None,
    t: Optional[float] = None,
) -> Dict[str, object]:
    """Append one run record to the ledger; returns the record written."""
    record = {
        "t": round(time.time(), 3) if t is None else t,
        "bench": bench,
        "host": host_fingerprint(),
        "config": dict(config or {}),
        "metrics": metrics,
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return record


def read_ledger(path: str) -> Tuple[List[Dict[str, object]], int]:
    """Parse the ledger, tolerating a torn final line.

    Returns ``(records, torn_lines)``.  Records keep file order, which is
    append order — time order for a single-writer ledger.
    """
    records: List[Dict[str, object]] = []
    torn = 0
    if not os.path.exists(path):
        return records, torn
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                continue
            if isinstance(record, dict) and record.get("bench"):
                records.append(record)
    return records, torn


def flatten_metrics(
    metrics: Dict[str, object], prefix: str = ""
) -> Dict[str, float]:
    """Numeric leaves of a nested metrics dict as dotted keys."""
    flat: Dict[str, float] = {}
    for key, value in metrics.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, name + "."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
    return flat


def metric_direction(name: str) -> Optional[str]:
    """``"higher"``/``"lower"`` if the name declares a direction, else None."""
    leaf = name.rsplit(".", 1)[-1]
    for hint in _HIGHER:
        if hint in leaf:
            return "higher"
    for hint in _LOWER:
        if hint in leaf:
            return "lower"
    return None


def _same_host(a: Dict[str, object], b: Dict[str, object]) -> bool:
    return dict(a.get("host", {})) == dict(b.get("host", {}))


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def check_regressions(
    records: Sequence[Dict[str, object]],
    tol: float = 0.2,
    last: int = 10,
) -> List[Dict[str, object]]:
    """Compare each bench's newest run against its same-host history.

    For every bench present, the latest record is compared metric-by-metric
    (directional metrics only) against the median of up to ``last`` prior
    same-host records.  A metric worse than baseline by more than ``tol``
    (fractional) is flagged.  Returns a list of flag dicts; empty means no
    regression verdict (including "not enough history").
    """
    flags: List[Dict[str, object]] = []
    benches = {str(r["bench"]) for r in records}
    for bench in sorted(benches):
        runs = [r for r in records if str(r["bench"]) == bench]
        latest = runs[-1]
        priors = [r for r in runs[:-1] if _same_host(r, latest)][-last:]
        if len(priors) < MIN_BASELINE:
            continue
        latest_flat = flatten_metrics(dict(latest.get("metrics", {})))
        for name, value in sorted(latest_flat.items()):
            direction = metric_direction(name)
            if direction is None:
                continue
            history = [
                flat[name]
                for r in priors
                for flat in (flatten_metrics(dict(r.get("metrics", {}))),)
                if name in flat
            ]
            if not history:
                continue
            baseline = _median(history)
            if baseline == 0:
                continue
            change = (value - baseline) / abs(baseline)
            regressed = (
                change < -tol if direction == "higher" else change > tol
            )
            if regressed:
                flags.append({
                    "bench": bench,
                    "metric": name,
                    "direction": direction,
                    "baseline": baseline,
                    "latest": value,
                    "change": change,
                    "n_baseline": len(history),
                })
    return flags


# ----------------------------------------------------------------------
# Rendering (the ``repro perf`` CLI surface)
# ----------------------------------------------------------------------
def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.1f}"
    return f"{value:.3g}"


def _trend_columns(runs: Sequence[Dict[str, object]], limit: int = 6) -> List[str]:
    """Headline metric columns: directional metrics first, stable order."""
    seen: Dict[str, Optional[str]] = {}
    for r in runs:
        for name in flatten_metrics(dict(r.get("metrics", {}))):
            if name not in seen:
                seen[name] = metric_direction(name)
    directional = [n for n, d in seen.items() if d is not None]
    neutral = [n for n, d in seen.items() if d is None]
    return (sorted(directional) + sorted(neutral))[:limit]


def render_history(
    records: Sequence[Dict[str, object]],
    last: int = 10,
    bench: Optional[str] = None,
    tol: float = 0.2,
) -> str:
    """Per-bench trend tables plus the regression verdict."""
    lines: List[str] = []
    benches = sorted({str(r["bench"]) for r in records})
    if bench is not None:
        benches = [b for b in benches if b == bench]
    if not benches:
        return "(ledger has no matching records)"
    for name in benches:
        runs = [r for r in records if str(r["bench"]) == name][-last:]
        columns = _trend_columns(runs)
        lines.append(f"Bench: {name} (last {len(runs)} run(s))")
        rows = []
        for r in runs:
            flat = flatten_metrics(dict(r.get("metrics", {})))
            host = dict(r.get("host", {}))
            stamp = time.strftime(
                "%Y-%m-%d %H:%M", time.localtime(float(r.get("t", 0)))
            )
            rows.append(
                [stamp, f"py{host.get('python', '?')}/{host.get('cpus', '?')}c"]
                + [_fmt(flat[c]) if c in flat else "-" for c in columns]
            )
        lines.extend(_table(["when", "host"] + columns, rows))
        lines.append("")
    flags = check_regressions(records, tol=tol)
    if bench is not None:
        flags = [f for f in flags if f["bench"] == bench]
    if flags:
        lines.append(f"REGRESSIONS (>{tol * 100:.0f}% vs same-host median):")
        for f in flags:
            lines.append(
                f"  {f['bench']}: {f['metric']} {_fmt(f['baseline'])} -> "
                f"{_fmt(f['latest'])} ({f['change'] * +100:+.1f}%, "
                f"{f['direction']}-is-better, n={f['n_baseline']})"
            )
    else:
        lines.append("No regressions flagged against same-host history.")
    return "\n".join(lines)
