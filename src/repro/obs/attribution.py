"""Memo-miss attribution: *why* did a check-memo lookup miss?

The delta-replay memo (:class:`repro.core.checker.CheckMemo`) keys crash
states by the canonical byte-granular content address
(:meth:`MemoAttribution.content_key`): equality implies byte-identical
images, and — because the key flattens the overlay down to the exact byte
diff from base — every overlay shape that materializes the same bytes
produces the same key.  This module classifies every remaining miss into
exactly one of:

``cold_base``
    The fence base's content digest had never been seen — the first state
    of a new persistent epoch.  Unavoidable: nothing to memoize against.
``overlay_shape``
    The *materialized* content (base + exact byte diff, via
    :func:`repro.pm.image.flatten_overlay`) was already checked under the
    same syscall context, but the memo's key still differed.  With the
    canonical content key this is structurally unreachable; it was the
    dominant avoidable class under the earlier range-wise digest keying
    and is kept as a regression sentinel — a nonzero count means the key
    stopped being a pure function of the bytes.
``noop_write_perturbation``
    Same as ``overlay_shape``, except the incoming overlay carries
    *residual* no-op bytes — bytes it writes that equal the base — which
    whole-write dropping (:meth:`repro.pm.image.CrashImage.effective_writes`)
    could not remove because they ride inside partially-effective or
    overlapping writes.  Also a sentinel now: byte-granular flattening
    drops residual no-op bytes before hashing.
``syscall_context``
    The content was seen before, but only under a different
    ``(syscall, mid_syscall, after_syscall)`` context.  A *necessary*
    miss: the same image is judged against different oracle expectations.
``new_content``
    Genuinely new image content.  Necessary by definition.

Classification is exact, not sampled — the memo hands over the content
key it already computed, so the per-miss cost is set lookups, and a miss
is immediately followed by a full mount-and-walk check that dwarfs them.
The reason counts always sum to the memo's miss count: every miss
receives exactly one label.

The attribution also keeps a colliding-digest table: content keys that
were checked under more than one distinct memo digest.  Under canonical
keying the two coincide, so any entry here is the same purity-regression
signal as a nonzero avoidable reason count.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional, Set, Tuple

from repro.pm.image import CrashImage, flatten_overlay

#: Classification labels, in reporting order.
MISS_REASONS = (
    "cold_base",
    "overlay_shape",
    "noop_write_perturbation",
    "syscall_context",
    "new_content",
)

#: Reasons the canonical (byte-granular, shape-independent) content key
#: turns into hits.  The memo keys on that address, so these counts are
#: expected to be zero; nonzero is a key-purity regression.
AVOIDABLE_REASONS = ("overlay_shape", "noop_write_perturbation")


class MemoAttribution:
    """Classifies every memo miss of one workload's :class:`CheckMemo`.

    One instance per memo (per workload): the universe a miss is judged
    against is exactly the set of states the memo itself has seen, so
    "seen before" means "a hit was possible in principle".
    """

    def __init__(self) -> None:
        #: reason -> count; values always sum to the number of
        #: :meth:`classify_miss` calls (== the memo's miss count).
        self.reasons: Dict[str, int] = {}
        self._bases: Set[bytes] = set()
        #: content key -> syscall contexts it was checked under.
        self._contexts: Dict[bytes, Set[Tuple]] = {}
        #: content key -> distinct range-wise (memo) digests seen.
        self._shapes: Dict[bytes, Set[bytes]] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def content_key(image) -> bytes:
        """A canonical content address: a pure function of the bytes.

        For a :class:`CrashImage` this is sha1 over the base digest and
        the exact byte diff from base — O(overlay), no materialization,
        and identical for every overlay shape that materializes the same
        image.  Flat ``bytes`` images hash directly.
        """
        if isinstance(image, CrashImage):
            h = hashlib.sha1(image.base.digest)
            for addr, data in flatten_overlay(image.base, image.writes):
                h.update(struct.pack("<QQ", addr, len(data)))
                h.update(data)
            return h.digest()
        return hashlib.sha1(
            image if isinstance(image, (bytes, bytearray)) else bytes(image)
        ).digest()

    @staticmethod
    def _residual_noop_bytes(image: CrashImage) -> int:
        """Base-equal bytes the effective overlay still writes.

        The union coverage of the effective writes minus the flattened
        diff size: every covered byte either differs from base (counted in
        the diff) or equals it (a residual no-op byte whole-write dropping
        could not remove).
        """
        spans: List[Tuple[int, int]] = []
        for addr, data in image.effective_writes():
            spans.append((addr, addr + len(data)))
        spans.sort()
        covered = 0
        cur_start: Optional[int] = None
        cur_end = 0
        for start, end in spans:
            if cur_start is None or start > cur_end:
                if cur_start is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_start is not None:
            covered += cur_end - cur_start
        diff_bytes = sum(
            len(data)
            for _, data in flatten_overlay(image.base, image.writes)
        )
        return covered - diff_bytes

    # ------------------------------------------------------------------
    def classify_miss(
        self, state, memo_digest: bytes, ckey: Optional[bytes] = None
    ) -> str:
        """Label one miss; record the state for future classifications.

        ``memo_digest`` is the content-address component of the memo key
        that just missed — it feeds the colliding-digest table.  When the
        memo already keys on the canonical content address it passes it as
        ``ckey`` so the overlay is never flattened twice; legacy callers
        (range-wise or eager keying) omit it and the key is derived here.
        """
        image = state.image
        context = (state.syscall, state.mid_syscall, state.after_syscall)
        is_delta = isinstance(image, CrashImage)
        if ckey is None:
            ckey = self.content_key(image)
        if is_delta and image.base.digest not in self._bases:
            reason = "cold_base"
        elif ckey in self._contexts:
            if context in self._contexts[ckey]:
                reason = (
                    "noop_write_perturbation"
                    if is_delta and self._residual_noop_bytes(image) > 0
                    else "overlay_shape"
                )
            else:
                reason = "syscall_context"
        else:
            reason = "new_content"
        if is_delta:
            self._bases.add(image.base.digest)
        self._contexts.setdefault(ckey, set()).add(context)
        self._shapes.setdefault(ckey, set()).add(memo_digest)
        self.reasons[reason] = self.reasons.get(reason, 0) + 1
        return reason

    def note_shared_hit(self, state, ckey: Optional[bytes] = None) -> None:
        """Record a state resolved by the *shared* memo tier.

        A shared hit is a hit, not a miss, so no reason is counted —
        ``sum(reasons) == misses`` stays structural.  But the state's base
        and context are now "seen": without seeding them, a later local
        miss of the same fence base would be misclassified as
        ``cold_base`` (the base is anything but cold — the fleet has
        checked states on it), inflating the unavoidable class and
        understating memo headroom.  No ``_shapes`` entry is recorded: the
        colliding-digest table tracks *checked* digests only.
        """
        image = state.image
        context = (state.syscall, state.mid_syscall, state.after_syscall)
        if ckey is None:
            ckey = self.content_key(image)
        if isinstance(image, CrashImage):
            self._bases.add(image.base.digest)
        self._contexts.setdefault(ckey, set()).add(context)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Total classified misses (== the memo's miss count)."""
        return sum(self.reasons.values())

    @property
    def avoidable(self) -> int:
        """Misses a canonical content key would have turned into hits."""
        return sum(self.reasons.get(r, 0) for r in AVOIDABLE_REASONS)

    def top_collisions(self, k: int = 5) -> List[Tuple[str, int]]:
        """Content keys checked under more than one memo digest.

        Returns up to ``k`` ``(content_key_hex, n_shapes)`` pairs, most
        collided first — the concrete states a canonical digest would have
        merged.
        """
        colliding = [
            (key.hex()[:16], len(shapes))
            for key, shapes in self._shapes.items()
            if len(shapes) > 1
        ]
        colliding.sort(key=lambda kv: (-kv[1], kv[0]))
        return colliding[:k]
