"""Consistency checking of crash states (paper section 3.3).

For every crash state the checker:

1. mounts the target file system on the image — failure to mount is itself
   a finding (three Table-1 bugs make the file system unmountable);
2. walks the tree — unreadable files/directories are findings;
3. compares the tree against the oracle: a crash *during* syscall *i* must
   match the syscall's pre- or post-state (atomicity, with a torn-write
   envelope for file systems whose ``write`` is not atomic); a crash *after*
   syscall *i* must match its post-state exactly (synchrony);
4. runs a usability pass: create a probe file in every directory, then
   delete every regular file.

Each crash state is checked on its own copy of the image, so checker
mutations never leak between states (the paper rolls back with an undo log;
copies are the in-process equivalent).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.core.oracle import OracleResult, TreeState
from repro.obs import profile as _profile
from repro.core.replayer import CrashState
from repro.core.report import BugReport, Consequence, diff_trees
from repro.fs.common.alloc import AllocatorError
from repro.memo.store import BUGGY, CLEAN, DEFAULT_MAX_ENTRIES, MemoTable
from repro.obs.attribution import MemoAttribution
from repro.obs.metrics import CacheCounters
from repro.pm.device import PMDevice, PMDeviceError
from repro.pm.image import CrashImage, FenceBase
from repro.vfs.errors import FsError
from repro.vfs.interface import FileSystem, MountError
from repro.vfs.types import FileType

#: Operations checked with the torn-data envelope on file systems whose
#: write path is not atomic ("the main exception is write", section 3.3).
DATA_OPS = ("write", "pwrite", "append", "fallocate")

PROBE_NAME = ".chk_probe"


@dataclass
class CheckerConfig:
    usability_check: bool = True
    max_diff_entries: int = 4


class ConsistencyChecker:
    """Checks crash states of one recorded workload against its oracle."""

    def __init__(
        self,
        fs_class,
        oracle: OracleResult,
        workload_desc: str,
        bugs=None,
        config: Optional[CheckerConfig] = None,
        telemetry=None,
        provenance=None,
    ) -> None:
        self.fs_class = fs_class
        self.oracle = oracle
        self.workload_desc = workload_desc
        self.bugs = bugs
        self.config = config or CheckerConfig()
        self.telemetry = telemetry if telemetry is not None and telemetry.enabled else None
        #: Optional :class:`~repro.forensics.provenance.ProvenanceRecorder`;
        #: when attached, every report carries its crash state's lineage.
        self.provenance = provenance
        # One shared mount device per fence base (states of one region
        # arrive consecutively, so a single-entry cache hits every time).
        # The numpy backend goes further: one adopted device per *tracker*,
        # wrapping the replayer's live buffer for every region.
        self._mount_base: Optional[FenceBase] = None
        self._mount_device: Optional[PMDevice] = None
        self._mount_store = None
        #: Digests of every distinct *recovered observable outcome* seen —
        #: the post-recovery tree (or an unmountable/unreadable marker) per
        #: checked state.  ``len(outcome_digests) / states checked`` is the
        #: measured headroom for WITCHER-style output-equivalence pruning:
        #: two crash states recovering to the same tree under the same
        #: oracle can only ever yield the same verdict.
        self.outcome_digests: set = set()
        # Oracle-context digests cached per (syscall, mid, after) — the
        # per-workload half of the shared memo key (see context_digest).
        self._ctx_digests: Dict[Tuple, bytes] = {}

    # ------------------------------------------------------------------
    # Oracle-context digest (shared check-memo key component)
    # ------------------------------------------------------------------
    def context_digest(self, state: CrashState) -> bytes:
        """Digest of everything besides the image that decides a verdict.

        Two checkers judging byte-identical images reach the same verdict
        iff their expectations agree, so the cross-workload memo key folds
        in a digest of exactly the inputs :meth:`_check_device` consults:
        the file system, the enabled bug set, the checker knobs, and the
        oracle trees the state's ``(syscall, mid_syscall, after_syscall)``
        context is compared against.  Equal digest ⟹ equal expectations ⟹
        (with equal image bytes) equal verdict — the soundness argument for
        sharing verdicts across workloads, workers, and hosts.  Tree
        digests go through :meth:`_tree_digest`, a pure function of the
        observable tree, so the digest is host-portable.

        Cached per context: a workload has a handful of contexts but
        thousands of states.
        """
        context = (state.syscall, state.mid_syscall, state.after_syscall)
        cached = self._ctx_digests.get(context)
        if cached is not None:
            return cached
        h = hashlib.sha1()
        h.update(self.fs_class.name.encode())
        h.update(b"\x00")
        enabled = sorted(self.bugs.enabled) if self.bugs is not None else []
        h.update(repr(enabled).encode())
        h.update(b"\x01" if self.config.usability_check else b"\x02")
        h.update(b"\x01" if self.fs_class.atomic_data_writes else b"\x02")
        oracle = self.oracle
        if state.mid_syscall and state.syscall is not None:
            i = state.syscall
            op = oracle.workload[i]
            h.update(b"mid")
            h.update(op.name.encode())
            h.update(b"\x00")
            h.update((oracle.errnos[i] or "").encode())
            h.update(b"\x00")
            h.update(self._tree_digest(oracle.pre_state(i)))
            if oracle.errnos[i] is None:
                h.update(self._tree_digest(oracle.post_state(i)))
        else:
            expected = (
                oracle.states[0]
                if state.after_syscall < 0
                else oracle.post_state(state.after_syscall)
            )
            h.update(b"post")
            h.update(self._tree_digest(expected))
        digest = h.digest()
        self._ctx_digests[context] = digest
        return digest

    # ------------------------------------------------------------------
    def check(self, state: CrashState) -> List[BugReport]:
        """Return every violation found in one crash state.

        When telemetry is attached, the per-state outcome breakdown is
        counted under ``checker.outcome.*`` (``clean`` for a state with no
        findings).
        """
        reports = self._check(state)
        tel = self.telemetry
        if tel is not None:
            tel.count("checker.states_checked")
            if not reports:
                tel.count("checker.outcome.clean")
            else:
                for report in reports:
                    tel.count("checker.outcome." + report.consequence.name.lower())
        return reports

    def _check(self, state: CrashState) -> List[BugReport]:
        image = state.image
        if isinstance(image, CrashImage):
            # Delta path: mount the fence region's shared device through a
            # copy-on-write view of the state's overlay.  The view's undo
            # log rolls back both the overlay and any checker mutation
            # (mount-time recovery writes, the usability pass), so states
            # never leak into each other — the paper's own undo-log
            # strategy, instead of a full image copy per state.
            base = image.base
            restore = getattr(base, "restore_writes", None)
            if restore is not None and not base.adoptable:
                # A later write grew the live buffer past this base's
                # historical end; content restores cannot truncate, so the
                # zero-copy adopt path would mount a longer device.  Take
                # the snapshotting path below instead (rare: only logs
                # that write past the device end).
                restore = None
            if restore is not None:
                # Numpy backend: the base shares the replayer's live buffer
                # — adopt that buffer as the mount device (no copy, ever)
                # and prefix the COW view with the base's restore patch,
                # which rolls the live content back to this region.  While
                # states stream (region checked as it is enumerated) the
                # patch is empty; it only grows for stale bases re-checked
                # after enumeration moved on.
                tracker = base.tracker
                if self._mount_store is not tracker:
                    self._mount_store = tracker
                    self._mount_base = None
                    self._mount_device = PMDevice.adopt(
                        tracker.buf, telemetry=self.telemetry
                    )
                writes = tuple(restore()) + image.writes
            else:
                if self._mount_base is not base:
                    self._mount_base = base
                    self._mount_store = None
                    self._mount_device = PMDevice.from_snapshot(
                        base.data, telemetry=self.telemetry
                    )
                writes = image.writes
            with self._mount_device.cow_view(writes) as device:
                return self._check_device(state, device)
        # Legacy eager path for flat images (hand-built states, the
        # delta-vs-eager benchmark baseline): fresh device copy per state.
        device = PMDevice.from_snapshot(image, telemetry=self.telemetry)
        return self._check_device(state, device)

    def _check_device(self, state: CrashState, device: PMDevice) -> List[BugReport]:
        prof = _profile.ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        try:
            fs = self.fs_class.mount(device, bugs=self.bugs)
        except MountError as exc:
            self._note_outcome(b"<unmountable>" + str(exc).encode())
            return [self._report(state, Consequence.UNMOUNTABLE, str(exc))]
        except (PMDeviceError, AllocatorError) as exc:
            self._note_outcome(
                b"<mount-crash>" + type(exc).__name__.encode()
            )
            return [
                self._report(
                    state,
                    Consequence.UNMOUNTABLE,
                    f"mount crashed: {type(exc).__name__}: {exc}",
                )
            ]
        finally:
            if prof is not None:
                prof.add("checker.mount", perf_counter() - t0)
        reports: List[BugReport] = []
        t0 = perf_counter() if prof is not None else 0.0
        try:
            crash_tree = fs.walk()
        except FsError as exc:
            reports.append(self._report(state, Consequence.UNREADABLE, str(exc)))
            crash_tree = None
        if prof is not None:
            prof.add("checker.walk", perf_counter() - t0)
        if crash_tree is None:
            self._note_outcome(b"<unreadable>")
        else:
            self._note_outcome(self._tree_digest(crash_tree))
            t0 = perf_counter() if prof is not None else 0.0
            reports.extend(self._check_semantics(state, crash_tree))
            if prof is not None:
                prof.add("checker.semantics", perf_counter() - t0)
            if self.config.usability_check:
                t0 = perf_counter() if prof is not None else 0.0
                reports.extend(self._check_usability(state, fs, crash_tree))
                if prof is not None:
                    prof.add("checker.usability", perf_counter() - t0)
        return reports

    # ------------------------------------------------------------------
    # Recovered-outcome tracking (equivalence-pruning headroom)
    # ------------------------------------------------------------------
    def _note_outcome(self, material: bytes) -> None:
        self.outcome_digests.add(hashlib.sha1(material).digest())

    @staticmethod
    def _tree_digest(crash_tree: TreeState) -> bytes:
        """Stable digest of the recovered observable tree."""
        h = hashlib.sha1()
        for path in sorted(crash_tree):
            h.update(path.encode())
            h.update(b"\x00")
            h.update(repr(crash_tree[path]).encode())
            h.update(b"\x01")
        return b"<tree>" + h.digest()

    # ------------------------------------------------------------------
    # Semantic comparison
    # ------------------------------------------------------------------
    def _check_semantics(self, state: CrashState, crash_tree: TreeState) -> List[BugReport]:
        oracle = self.oracle
        if state.mid_syscall and state.syscall is not None:
            i = state.syscall
            pre = oracle.pre_state(i)
            if oracle.errnos[i] is not None:
                # The syscall failed on the oracle; it must not have left
                # any persistent effect.
                if crash_tree == pre:
                    return []
                return [self._mismatch(state, crash_tree, pre, Consequence.ATOMICITY)]
            post = oracle.post_state(i)
            if crash_tree == pre or crash_tree == post:
                return []
            op_name = oracle.workload[i].name
            if op_name in DATA_OPS and not self.fs_class.atomic_data_writes:
                if self._within_data_envelope(crash_tree, pre, post):
                    return []
            return [self._atomicity_report(state, crash_tree, pre, post)]
        # Post-syscall or final state: synchrony — exact match required.
        if state.after_syscall < 0:
            expected = oracle.states[0]
        else:
            expected = oracle.post_state(state.after_syscall)
        if crash_tree == expected:
            return []
        consequence = (
            Consequence.SYNCHRONY if state.after_syscall >= 0 else Consequence.STATE_MISMATCH
        )
        return [self._mismatch(state, crash_tree, expected, consequence)]

    def _within_data_envelope(
        self, crash: TreeState, pre: TreeState, post: TreeState
    ) -> bool:
        """Torn-write envelope for non-atomic data operations.

        Paths untouched by the syscall must match the pre-state; the target
        file's metadata must be the old or new version, and every content
        byte must come from the old content, the new content, or be zero in
        a region the operation extended.
        """
        changed = {p for p in set(pre) | set(post) if pre.get(p) != post.get(p)}
        for path in set(crash) | set(pre):
            if path in changed:
                continue
            if crash.get(path) != pre.get(path):
                return False
        for path in changed:
            c = crash.get(path)
            p0, p1 = pre.get(path), post.get(path)
            if c is None or p1 is None:
                return False
            if c.ftype is not FileType.REGULAR:
                return False
            if c.nlink != p1.nlink or c.mode != p1.mode:
                return False
            sizes = {p1.size} | ({p0.size} if p0 is not None else set())
            if c.size not in sizes:
                return False
            old = p0.content if p0 is not None and p0.content else b""
            new = p1.content if p1.content else b""
            content = c.content or b""
            for i, byte in enumerate(content):
                old_b = old[i] if i < len(old) else 0
                new_b = new[i] if i < len(new) else 0
                if byte not in (old_b, new_b, 0):
                    return False
        return True

    # ------------------------------------------------------------------
    # Report construction
    # ------------------------------------------------------------------
    def _atomicity_report(
        self, state: CrashState, crash: TreeState, pre: TreeState, post: TreeState
    ) -> BugReport:
        """Classify an atomicity violation for a readable crash state."""
        diffs_pre = diff_trees(crash, pre)
        diffs_post = diff_trees(crash, post)
        diffs = diffs_pre if len(diffs_pre) <= len(diffs_post) else diffs_post
        consequence = Consequence.ATOMICITY
        op = self.oracle.workload[state.syscall] if state.syscall is not None else None
        detail_bits: List[str] = []
        if op is not None and op.name == "rename":
            old_path, new_path = op.args[0], op.args[1]
            if old_path not in crash and new_path not in crash and old_path in pre:
                detail_bits.append(
                    f"rename atomicity broken: neither {old_path!r} nor "
                    f"{new_path!r} exists (file disappears)"
                )
            elif old_path in crash and new_path in crash:
                detail_bits.append(
                    f"rename atomicity broken: old file {old_path!r} still "
                    f"present alongside {new_path!r}"
                )
        if any(
            d.kind == "differs" and "zeros" not in d.detail and "content" in d.detail
            for d in diffs
        ):
            consequence = Consequence.DATA_LOSS
        missing_data = [
            d for d in diffs if d.kind == "differs" and "size" in d.detail
        ]
        if op is not None and op.name in DATA_OPS and (missing_data or not detail_bits):
            consequence = Consequence.DATA_LOSS
        detail_bits.extend(
            d.describe() for d in diffs[: self.config.max_diff_entries]
        )
        return self._report(
            state,
            consequence,
            f"matches neither pre nor post state of "
            f"{op.describe() if op else '?'}: " + " | ".join(detail_bits),
            paths=tuple(d.path for d in diffs[: self.config.max_diff_entries]),
        )

    def _mismatch(
        self,
        state: CrashState,
        crash: TreeState,
        expected: TreeState,
        consequence: Consequence,
    ) -> BugReport:
        diffs = diff_trees(crash, expected)
        detail = " | ".join(d.describe() for d in diffs[: self.config.max_diff_entries])
        return self._report(
            state,
            consequence,
            f"state after syscall #{state.after_syscall} diverges: {detail}",
            paths=tuple(d.path for d in diffs[: self.config.max_diff_entries]),
        )

    def _report(
        self,
        state: CrashState,
        consequence: Consequence,
        detail: str,
        paths: Tuple[str, ...] = (),
    ) -> BugReport:
        return BugReport(
            fs_name=self.fs_class.name,
            consequence=consequence,
            workload_desc=self.workload_desc,
            crash_desc=state.describe(),
            detail=detail,
            syscall=state.syscall,
            syscall_name=state.syscall_name,
            mid_syscall=state.mid_syscall,
            n_replayed=state.n_replayed,
            paths=paths,
            provenance=(
                self.provenance.for_state(state)
                if self.provenance is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Usability pass
    # ------------------------------------------------------------------
    def _check_usability(
        self, state: CrashState, fs: FileSystem, crash_tree: TreeState
    ) -> List[BugReport]:
        """Create a file in every directory, then delete every file."""
        reports: List[BugReport] = []
        dirs = [p for p, obs in crash_tree.items() if obs.ftype is FileType.DIRECTORY]
        files = [p for p, obs in crash_tree.items() if obs.ftype is FileType.REGULAR]
        for d in sorted(dirs):
            probe = (d.rstrip("/") or "") + "/" + PROBE_NAME
            try:
                fs.creat(probe)
                files.append(probe)
            except FsError as exc:
                reports.append(
                    self._report(
                        state,
                        Consequence.USABILITY,
                        f"cannot create a file in {d!r}: {exc}",
                        paths=(d,),
                    )
                )
        for f in sorted(files):
            try:
                fs.unlink(f)
            except FsError as exc:
                reports.append(
                    self._report(
                        state,
                        Consequence.USABILITY,
                        f"cannot delete {f!r}: {exc}",
                        paths=(f,),
                    )
                )
        return reports


class CheckMemo:
    """Content-addressed check memoization: one checker run per distinct image.

    The single entry point for checking crash states (the harness calls
    nothing else), so memoization and the per-state ``check_state``
    telemetry span wrap the same code path.  States are keyed by
    ``(image content address, syscall, mid_syscall, after_syscall)`` — the
    content address alone is not enough, because a byte-identical image
    crash-checked mid-syscall and post-syscall is judged against different
    oracle expectations.

    With ``delta=True`` the content address is the *canonical* byte-
    granular key (:meth:`~repro.obs.attribution.MemoAttribution.content_key`:
    sha1 over the fence-base digest and the exact byte diff from base via
    :func:`~repro.pm.image.flatten_overlay`) — O(overlay), no
    materialization, and identical for every overlay shape that
    materializes the same bytes.  Two states whose overlays partition the
    same content into different write ranges, or that differ only in
    residual no-op bytes, now *hit*; under the earlier range-wise
    :meth:`~repro.pm.image.CrashImage.digest` keying they were the
    ``overlay_shape`` / ``noop_write_perturbation`` miss classes.  Key
    equality still implies byte-identical images, so a hit can never skip
    a state that would have checked differently — memoization cannot mask
    a bug, only cost a redundant check.

    With ``delta=False`` every state is materialized and keyed by
    ``sha1(image)`` — the eager whole-image dedup this PR replaces, kept as
    the benchmark baseline and for flat-``bytes`` states.

    :meth:`check` returns ``None`` on a memo hit (the state was already
    checked; any findings are already in the caller's hands) and the
    checker's report list on a miss.

    Every miss is classified by a :class:`~repro.obs.attribution.MemoAttribution`
    (cold base / overlay shape / no-op perturbation / syscall context /
    new content — the reason counts sum exactly to :attr:`misses`).  With
    the canonical key the two avoidable classes are structurally
    unreachable; a nonzero ``overlay_shape`` or
    ``noop_write_perturbation`` count is a regression signal that the key
    stopped being a pure function of the bytes.  Overlay writes dropped as
    whole-write no-ops are still tallied in :attr:`noop_writes_dropped`.
    With telemetry attached both surface as registry counters:
    ``checker.memo.miss.{reason}`` and ``checker.memo.noop_writes_dropped``.

    **Local tier.** Verdicts live in a :class:`~repro.memo.store.MemoTable`
    bounded at ``max_entries`` clean entries (LRU).  Buggy keys are pinned:
    evicting one would re-check the state and append its reports *again*,
    breaking memo-on/off ``bugs.json`` byte-equality; evicting a clean key
    only costs a redundant check.  Evictions surface as
    ``checker.memo.evictions``.

    **Shared tier.** With ``shared`` attached (a
    :class:`~repro.memo.client.MemoClient` or anything with the same
    ``ok``/``lookup``/``publish`` surface), locally-missed states consult
    the campaign-wide service under a key that folds the checker's
    :meth:`~ConsistencyChecker.context_digest` into the content address —
    equal shared key ⟹ equal image bytes *and* equal oracle expectations
    ⟹ equal verdict, across workloads, workers, and hosts.  Only ``CLEAN``
    verdicts are shared and only ``CLEAN`` shared hits skip the check: a
    buggy state's reports carry workload-specific identity (workload and
    crash descriptions, provenance), so it is always re-checked locally and
    its reports land in ``bugs.json`` exactly as without the service.  A
    shared hit can therefore never mask a bug — it elides re-checks whose
    outcome is provably empty.  Shared failures degrade silently: every
    shared call is exception-guarded, errors count into
    ``checker.memo.shared.errors``, and the memo runs on indistinguishably
    with the local tier alone.
    """

    def __init__(self, checker: ConsistencyChecker, telemetry=None,
                 delta: bool = True, shared=None,
                 max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.checker = checker
        self.delta = delta
        self.shared = shared
        self._tel = telemetry if telemetry is not None and telemetry.enabled else None
        #: Per-memo hit/miss counts (one memo per workload).
        self.hits = 0
        self.misses = 0
        #: Hits served by the shared service (also counted in :attr:`hits`).
        self.shared_hits = 0
        #: Shared-service calls that failed (degraded to a local miss).
        self.shared_errors = 0
        #: Overlay writes dropped before digesting because they were
        #: byte-equal to the base (summed over every state keyed).
        self.noop_writes_dropped = 0
        #: Miss classifier; its reason counts always sum to :attr:`misses`.
        self.attribution = MemoAttribution()
        # Registry-backed counters accumulate campaign-wide under
        # ``checker.memo.*`` when telemetry is attached.
        self._counters = (
            CacheCounters("checker.memo", self._tel.metrics)
            if self._tel is not None
            else None
        )
        self._local = MemoTable(max_entries)

    def key_of(self, state: CrashState):
        prof = _profile.ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        m0 = prof.mark() if prof is not None else 0.0
        image = state.image
        if self.delta and isinstance(image, CrashImage):
            digest = MemoAttribution.content_key(image)
        else:
            digest = hashlib.sha1(
                image if isinstance(image, (bytes, bytearray)) else bytes(image)
            ).digest()
        if prof is not None:
            # Exclusive of the flatten the content key runs internally
            # (profiled at its own site in the same stage).
            prof.add_exclusive("memo.key", perf_counter() - t0, m0)
        return (digest, state.syscall, state.mid_syscall, state.after_syscall)

    @property
    def checked(self) -> int:
        """States actually checked — the campaign's "unique states"."""
        return self.misses

    @property
    def evictions(self) -> int:
        """Clean entries LRU-evicted from the local table."""
        return self._local.evictions

    def shared_key(self, state: CrashState, key) -> bytes:
        """Campaign-wide key: oracle context folded into the content address.

        The local key's ``(syscall, mid, after)`` tuple is only meaningful
        inside one workload; across workloads the same tuple names
        different expectations.  The shared key replaces it with the
        checker's :meth:`~ConsistencyChecker.context_digest` (the packed
        tuple rides along so distinct contexts that happen to hash-collide
        on expectations still separate), making key equality imply verdict
        equality fleet-wide.
        """
        h = hashlib.sha1()
        h.update(self.checker.context_digest(state))
        h.update(key[0])
        h.update(struct.pack(
            ">iBi",
            state.syscall if state.syscall is not None else -1,
            1 if state.mid_syscall else 0,
            state.after_syscall,
        ))
        return h.digest()

    # -- shared-tier wrappers: any failure is a degraded miss, never a raise
    def _shared_lookup(self, skey: bytes) -> Optional[str]:
        try:
            t0 = perf_counter()
            verdict = self.shared.lookup(skey)
            if self._tel is not None:
                self._tel.observe(
                    "checker.memo.shared.rtt_ms", (perf_counter() - t0) * 1e3
                )
            return verdict
        except Exception:
            self.shared_errors += 1
            if self._tel is not None:
                self._tel.count("checker.memo.shared.errors")
            return None

    def _shared_publish(self, skey: bytes, verdict: str) -> None:
        try:
            t0 = perf_counter()
            self.shared.publish(skey, verdict)
            if self._tel is not None:
                self._tel.observe(
                    "checker.memo.shared.rtt_ms", (perf_counter() - t0) * 1e3
                )
        except Exception:
            self.shared_errors += 1
            if self._tel is not None:
                self._tel.count("checker.memo.shared.errors")

    def check(self, state: CrashState) -> Optional[List[BugReport]]:
        key = self.key_of(state)
        if self.delta and isinstance(state.image, CrashImage):
            dropped = state.image.noop_dropped
            if dropped:
                self.noop_writes_dropped += dropped
                if self._tel is not None:
                    self._tel.count("checker.memo.noop_writes_dropped", dropped)
        if self._local.lookup(key) is not None:
            self.hits += 1
            if self._counters is not None:
                self._counters.hit()
            return None
        # On the delta path (and for flat images) the memo digest *is* the
        # canonical content key — hand it over so attribution never
        # re-flattens the overlay.
        precomputed = (
            key[0]
            if self.delta or not isinstance(state.image, CrashImage)
            else None
        )
        skey = None
        if self.shared is not None and getattr(self.shared, "ok", True):
            skey = self.shared_key(state, key)
            if self._shared_lookup(skey) == CLEAN:
                # Another workload/worker/host already checked these exact
                # bytes under these exact expectations and found nothing.
                # Clean-only: there are no reports to suppress, so skipping
                # cannot change bugs.json.
                self.hits += 1
                self.shared_hits += 1
                if self._counters is not None:
                    self._counters.hit()
                if self._tel is not None:
                    self._tel.count("checker.memo.shared.hits")
                self._local.publish(key, CLEAN)
                # A shared hit is a hit, not a miss: seed the attribution
                # universe (base + context now "seen") without a reason
                # count, keeping sum(reasons) == misses structural.
                self.attribution.note_shared_hit(state, ckey=precomputed)
                return None
            if self._tel is not None:
                self._tel.count("checker.memo.shared.misses")
        self.misses += 1
        reason = self.attribution.classify_miss(state, key[0], ckey=precomputed)
        if self._counters is not None:
            self._counters.miss()
        if self._tel is not None:
            self._tel.count("checker.memo.miss." + reason)
        if self._tel is not None:
            with self._tel.span(
                "check_state",
                fence=state.fence_index,
                syscall=state.syscall_name or "",
                n_replayed=state.n_replayed,
            ):
                reports = self.checker.check(state)
        else:
            reports = self.checker.check(state)
        verdict = BUGGY if reports else CLEAN
        before = self._local.evictions
        self._local.publish(key, verdict)
        if self._tel is not None and self._local.evictions > before:
            self._tel.count(
                "checker.memo.evictions", self._local.evictions - before
            )
        if skey is not None and verdict == CLEAN:
            # Only clean verdicts travel: a shared BUGGY entry could never
            # be used to skip (buggy states always re-check locally), so
            # publishing it would be pure table growth.
            self._shared_publish(skey, CLEAN)
        return reports
