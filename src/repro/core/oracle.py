"""Oracle state tracking (paper section 3.3, "Testing crash states").

The oracle runs the original workload on a fresh, unprobed file-system
instance and records the whole-tree observation before every syscall and
after the last one.  A crash during syscall *i* must leave the tree at the
syscall's *pre* or *post* state (atomicity); a crash after it must match the
*post* state exactly (synchrony).  Observations are cached per version, as
in the paper ("Chipmunk caches the metadata and contents for each oracle
file version in memory").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pm.device import PMDevice
from repro.vfs.interface import FileObservation, FileSystem
from repro.workloads.ops import Op, Workload, execute_op

TreeState = Dict[str, FileObservation]


@dataclass
class OracleResult:
    """Per-syscall legal states of a workload."""

    workload: List[Op]
    #: ``states[i]`` is the tree before syscall ``i``; ``states[len]`` is the
    #: final tree.
    states: List[TreeState] = field(default_factory=list)
    #: errno name per syscall (None = success).
    errnos: List[Optional[str]] = field(default_factory=list)

    def pre_state(self, syscall: int) -> TreeState:
        return self.states[syscall]

    def post_state(self, syscall: int) -> TreeState:
        return self.states[syscall + 1]

    @property
    def final_state(self) -> TreeState:
        return self.states[-1]

    def syscall_changed(self, syscall: int) -> bool:
        return self.pre_state(syscall) != self.post_state(syscall)


def run_oracle(
    fs_class,
    workload: Workload,
    device_size: int,
    bugs=None,
    setup: Workload = (),
) -> OracleResult:
    """Execute ``workload`` on a fresh instance, snapshotting around each op.

    The oracle uses the same file-system configuration as the system under
    test (the oracle defines *expected* behaviour, including any behaviour
    the enabled bugs exhibit in the absence of a crash — the injected bugs
    are crash-only by construction).
    """
    device = PMDevice(device_size)
    fs: FileSystem = fs_class.mkfs(device, bugs=bugs)
    for op in setup:
        execute_op(fs, op)
    result = OracleResult(workload=list(workload))
    for op in workload:
        result.states.append(fs.walk())
        result.errnos.append(execute_op(fs, op))
    result.states.append(fs.walk())
    return result
