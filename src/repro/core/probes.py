"""Function-level interception of persistence functions.

The real Chipmunk attaches Kprobes (kernel) and Uprobes (user space) to the
names of each file system's centralized persistence functions, supplied by
the developer (paper section 3.3).  Here the same contract holds: a
:class:`ProbeSet` is given objects exposing ``persistence_function_names``
and wraps exactly those methods at runtime, recording every call into a
:class:`~repro.pm.log.PMLog`.  Nothing else about the file system is
inspected — this is the gray-box boundary.

Cache-line semantics are implemented at the probe: a flush call is logged as
the full cache-line-aligned span it actually writes back, with the volatile
image content captured at flush time, so replay sees exactly what the
hardware would have persisted.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple

from repro.pm.device import CACHE_LINE, PMDevice
from repro.pm.log import PMLog
from repro.pm.persistence import PersistenceOps, PersistenceSpec, get_spec


class ProbeSet:
    """Probes attached to one or more persistence-function providers.

    SplitFS needs two providers probed at once (its user-space library via
    Uprobes and its kernel component via Kprobes); the paper notes both are
    used together in the same logging module.
    """

    def __init__(self, log: PMLog) -> None:
        self.log = log
        self._attached: List[Tuple[PersistenceOps, str]] = []

    # ------------------------------------------------------------------
    def attach(self, targets: Iterable[PersistenceOps]) -> None:
        """Instrument every declared persistence function on ``targets``."""
        if self._attached:
            raise RuntimeError("probes already attached")
        for ops in targets:
            for name in ops.persistence_function_names:
                spec = get_spec(ops, name)
                wrapper = _make_handler(ops, name, spec, self.log)
                # Shadow the class method with an instance attribute — the
                # breakpoint-insertion analogue.
                setattr(ops, name, wrapper)
                self._attached.append((ops, name))

    def detach(self) -> None:
        """Remove every probe, restoring the original functions."""
        for ops, name in self._attached:
            try:
                delattr(ops, name)
            except AttributeError:
                pass
        self._attached.clear()

    @property
    def attached(self) -> bool:
        return bool(self._attached)

    def __enter__(self) -> "ProbeSet":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()


def _make_handler(
    ops: PersistenceOps, name: str, spec: PersistenceSpec, log: PMLog
) -> Callable:
    """Build the probe handler for one persistence function.

    The handler runs the original function, then records what it persisted —
    decoding the arguments with the function's :class:`PersistenceSpec`, the
    way a Kprobes handler decodes registers.
    """
    original = getattr(type(ops), name).__get__(ops)
    device: PMDevice = ops.device

    def handler(*args, **kwargs):
        result = original(*args, **kwargs)
        if spec.kind == "fence":
            log.fence(name)
            return result
        addr, length = spec.decode(args)
        if length <= 0:
            return result
        if spec.kind == "flush":
            start = (addr // CACHE_LINE) * CACHE_LINE
            end = ((addr + length + CACHE_LINE - 1) // CACHE_LINE) * CACHE_LINE
            end = min(end, device.size)
            log.flush(start, device.read(start, end - start), name)
        else:  # nt_store
            log.nt_store(addr, device.read(addr, length), name)
        return result

    handler.__name__ = f"probed_{name}"
    return handler


def probe_targets_of(fs) -> List[PersistenceOps]:
    """The persistence-function providers of a file system instance."""
    targets = getattr(fs, "probe_targets", None)
    if targets is None:
        return [fs.ops]
    return list(targets)
