"""Crash-state construction from the recorded write log.

The replayer walks the log of flushes, non-temporal stores, and fences
(paper section 3.3): writes accumulate in an *in-flight vector*; at each
store fence it emits crash states by replaying subsets of the vector, in
program order, on top of everything already persistent.  Subsets are
enumerated in increasing size (Observation 7: most bugs need only one or two
replayed writes) and can be capped.  Logically related data writes — large
non-temporal stores to adjacent addresses within one syscall — are coalesced
into single replay units, the heuristic that collapses the 2^128 states of a
1 KiB file write into a handful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs import profile as _profile
from repro.obs.metrics import INFLIGHT_EDGES
from repro.pm.backend import resolve_backend
from repro.pm.image import ChunkedDigest, CrashImage, FenceBase
from repro.pm.log import Fence, Flush, NTStore, PMLog, SyscallBegin, SyscallEnd, WriteEntry

#: NT stores at least this large are treated as file-data writes for
#: coalescing (the paper's "non-temporal memcpy on a large buffer usually
#: indicates a file data write" heuristic).
DATA_WRITE_THRESHOLD = 256

SYNC_SYSCALLS = ("fsync", "fdatasync", "sync")


@dataclass(frozen=True)
class CrashState:
    """One possible post-crash device image plus its provenance.

    ``image`` is normally a lazy :class:`~repro.pm.image.CrashImage`
    (fence base + sparse overlay, O(delta) to build); flat ``bytes`` are
    still accepted for hand-built states, and ``CrashImage`` compares,
    hashes, and subscripts like ``bytes``, so consumers see no difference.
    """

    image: Union[CrashImage, bytes]
    #: Index of the fence region the state was built in.
    fence_index: int
    #: Syscall during which the crash happened (None between syscalls).
    syscall: Optional[int]
    syscall_name: Optional[str]
    #: True when the state replays a strict subset of the in-flight writes
    #: (an interrupted operation); False for post-syscall synchrony states.
    mid_syscall: bool
    #: Index of the last fully completed syscall before the crash.
    after_syscall: int
    #: Human-readable description of the replayed subset.
    subset_desc: Tuple[str, ...]
    #: Number of in-flight write units replayed onto the persistent base.
    n_replayed: int
    #: Index into ``PMLog.entries`` of the crash point: the fence or
    #: syscall-end marker the state was emitted at (``len(log)`` for
    #: end-of-log states).  Together with ``replayed_entries`` this pins the
    #: state precisely enough to rematerialize it offline (forensics).
    log_pos: int = 0
    #: Positions, within the crash region's in-flight vector (program
    #: order), of the write entries this state persisted.  Independent of
    #: any unit ranker's ordering.
    replayed_entries: Tuple[int, ...] = ()
    #: Crash-point kind: ``"subset"`` (mid-region subset replay), ``"post"``
    #: (post-syscall synchrony point, in-flight lost), ``"final"`` (end of
    #: workload, everything persisted).
    kind: str = "subset"

    def describe(self) -> str:
        where = (
            f"during syscall #{self.syscall} {self.syscall_name}"
            if self.mid_syscall
            else f"after syscall #{self.after_syscall}"
        )
        return (
            f"crash {where} at fence {self.fence_index}, "
            f"replaying {self.n_replayed} in-flight write(s): "
            + "; ".join(self.subset_desc)
        )


def coalesce_units(inflight: Sequence[WriteEntry], threshold: int = DATA_WRITE_THRESHOLD) -> List[List[WriteEntry]]:
    """Group the in-flight vector into replay units.

    Large NT stores that are address-contiguous with the previous large NT
    store from the same syscall form one unit (a logically related file-data
    write); everything else is its own unit.
    """
    units: List[List[WriteEntry]] = []
    for entry in inflight:
        is_data = isinstance(entry, NTStore) and entry.length >= threshold
        if units and is_data:
            last = units[-1][-1]
            if (
                isinstance(last, NTStore)
                and last.length >= threshold
                and last.syscall == entry.syscall
                and last.addr + last.length == entry.addr
            ):
                units[-1].append(entry)
                continue
        units.append([entry])
    return units


def apply_entries(image: bytearray, entries: Sequence[WriteEntry]) -> None:
    """Replay write entries onto an image, in program order."""
    for entry in entries:
        image[entry.addr : entry.addr + len(entry.data)] = entry.data


def unit_positions(units: Sequence[Sequence[WriteEntry]]) -> List[Tuple[int, ...]]:
    """In-flight vector positions covered by each coalesced unit.

    Valid only for units in program order (straight out of
    :func:`coalesce_units`): unit ``i`` covers the positions following
    unit ``i-1``'s, so a running cursor recovers them without touching the
    entries.
    """
    positions: List[Tuple[int, ...]] = []
    cursor = 0
    for unit in units:
        positions.append(tuple(range(cursor, cursor + len(unit))))
        cursor += len(unit)
    return positions


class _PersistTracker:
    """The replayer's mutable persistent image plus its shared fence base.

    Keeps the persistent ``bytearray`` in sync with an incremental content
    digest (:class:`~repro.pm.image.ChunkedDigest`) and hands out one
    immutable :class:`~repro.pm.image.FenceBase` per fence region, built
    lazily at the region's first crash state and shared by every state of
    the region.  Applying a fence's writes invalidates only the touched
    digest chunks and drops the cached base, so advancing a region costs
    O(bytes written), not O(device).
    """

    __slots__ = ("buf", "_digest", "_base")

    def __init__(self, base_image: bytes) -> None:
        self.buf = bytearray(base_image)
        self._digest = ChunkedDigest(self.buf)
        self._base: Optional[FenceBase] = None

    def apply(self, entries: Sequence[WriteEntry]) -> None:
        """Persist ``entries`` (a fence retiring the in-flight vector)."""
        if not entries:
            return
        prof = _profile.ACTIVE
        t0 = perf_counter() if prof is not None else 0.0
        buf = self.buf
        applied = 0
        for entry in entries:
            buf[entry.addr : entry.addr + len(entry.data)] = entry.data
            self._digest.invalidate(entry.addr, len(entry.data))
            applied += len(entry.data)
        self._base = None
        if prof is not None:
            prof.add("replay.persist_apply", perf_counter() - t0, applied)

    def base(self) -> FenceBase:
        """The current region's immutable snapshot (cached per region)."""
        if self._base is None:
            prof = _profile.ACTIVE
            t0 = perf_counter() if prof is not None else 0.0
            m0 = prof.mark() if prof is not None else 0.0
            self._base = FenceBase(bytes(self.buf), self._digest.digest())
            if prof is not None:
                # Exclusive of the chunk rehashes the digest runs inside.
                prof.add_exclusive("replay.fence_base", perf_counter() - t0,
                                   m0, len(self.buf), "materialized")
        return self._base


@dataclass
class ReplayStats:
    """Aggregate statistics gathered while enumerating crash states."""

    n_states: int = 0
    n_fences: int = 0
    max_inflight: int = 0
    total_inflight: int = 0
    #: in-flight unit count per fence region that had any writes
    inflight_per_fence: List[int] = field(default_factory=list)
    capped_regions: int = 0

    @property
    def avg_inflight(self) -> float:
        if not self.inflight_per_fence:
            return 0.0
        return sum(self.inflight_per_fence) / len(self.inflight_per_fence)


def enumerate_crash_states(
    base_image: bytes,
    log: PMLog,
    cap: Optional[int] = 2,
    coalesce_threshold: int = DATA_WRITE_THRESHOLD,
    crash_points: str = "fence",
    stats: Optional[ReplayStats] = None,
    unit_ranker=None,
    telemetry=None,
    planner=None,
    image_backend: str = "python",
) -> Iterator[CrashState]:
    """Enumerate crash states for a recorded workload.

    ``crash_points`` selects the strategy:

    * ``"fence"`` — strong-guarantee systems: crash states during and after
      every operation (Chipmunk's strategy);
    * ``"post"`` — crash states only *between* syscalls (the
      CrashMonkey-style baseline used to demonstrate Observation 5);
    * ``"fsync"`` — weak-guarantee systems: states only after fsync-family
      calls (CrashMonkey's actual strategy for traditional file systems).

    ``cap`` limits how many in-flight write units are replayed per state
    (the paper finds a cap of two exposes every bug; section 5.1.2).

    ``unit_ranker`` optionally reorders the replay units before subset
    enumeration (e.g. the Vinter-style recovery-read heuristic of
    :mod:`repro.core.recovery_reads`) so that, under a budget, the most
    interesting states are generated first.

    ``telemetry`` optionally receives replay counters and the in-flight
    unit-count histogram; instrumentation happens only at fence boundaries,
    never per write entry, so the enabled overhead stays negligible.

    ``planner`` optionally substitutes mechanism-targeted crash plans for
    the combinatorial subset space (:class:`repro.mech.plans.MechPlanner`):
    at each epoch with in-flight units, ``planner.plan_for(fence_index,
    n_units)`` returns either ``None`` (enumerate the full capped subset
    space, the fallback) or a canonically ordered list of unit-index
    combos to emit instead.  Planned combos are always a subset of the
    subset-mode combos in the same order, so the planned state stream is a
    subsequence of the unplanned one.  The planner takes precedence over
    ``unit_ranker`` for planned epochs (plans are already targeted);
    fallback epochs still rank.

    ``image_backend`` selects the crash-image data plane: ``"python"``
    (the default — immutable per-region ``bytes`` snapshots) or
    ``"numpy"`` (:class:`repro.pm.image_np.NPPersistTracker` — zero-copy
    lazy fence bases over the live buffer plus vectorized digesting).
    Both produce value-identical states; callers resolve ``"auto"`` via
    :func:`repro.pm.backend.resolve_backend` before passing it here.
    """
    if crash_points not in ("fence", "post", "fsync"):
        raise ValueError(f"unknown crash_points mode {crash_points!r}")
    backend = resolve_backend(image_backend)
    if backend == "numpy":
        from repro.pm.image_np import NPPersistTracker

        persistent = NPPersistTracker(base_image)
    else:
        persistent = _PersistTracker(base_image)
    inflight: List[WriteEntry] = []
    in_syscall: Optional[int] = None
    in_name: Optional[str] = None
    completed = -1
    fence_index = 0
    if stats is None:
        stats = ReplayStats()
    tel = telemetry if telemetry is not None and telemetry.enabled else None

    def subset_states(log_pos: int) -> Iterator[CrashState]:
        units = coalesce_units(inflight, coalesce_threshold)
        n = len(units)
        if not n:
            # Nothing in flight: the boundary state is already covered by
            # the adjacent regions' subsets and the post-syscall states.
            return
        plan = planner.plan_for(fence_index, n) if planner is not None else None
        positions = unit_positions(units)
        if plan is None and unit_ranker is not None and n > 1:
            # The ranked path pays for an id()-keyed order map so replay
            # (which must stay in program order) can undo whatever order
            # the ranker chose for *generation*.
            rank_of = {id(u): i for i, u in enumerate(units)}
            units = unit_ranker(units)
            program_index = [rank_of[id(u)] for u in units]
            positions = [positions[i] for i in program_index]
        else:
            # Unranked fast path: coalesce_units emits units in program
            # order and combinations() enumerates indices ascending, so
            # every combo is already program-ordered — no sort, no map.
            program_index = None
        stats.max_inflight = max(stats.max_inflight, n)
        stats.inflight_per_fence.append(n)
        if tel is not None:
            tel.observe("replay.inflight_units", n, edges=INFLIGHT_EDGES)
        max_size = n - 1
        if cap is not None and cap < max_size:
            stats.capped_regions += 1
            if tel is not None:
                tel.count("replay.capped_regions")
            max_size = cap
        base = persistent.base()
        if plan is not None:
            # Mechanism-targeted plan: a canonically ordered sub-list of
            # the combos the loop below would generate (already size-
            # ascending and program-ordered, so no ranker interaction).
            combos = iter(plan)
        else:
            combos = (
                combo
                for size in range(0, max_size + 1)
                for combo in itertools.combinations(range(n), size)
            )
        for combo in combos:
            if program_index is not None:
                combo = sorted(combo, key=lambda i: program_index[i])
            chosen: List[WriteEntry] = []
            replayed: List[int] = []
            for unit_index in combo:
                chosen.extend(units[unit_index])
                replayed.extend(positions[unit_index])
            desc = tuple(e.describe() for e in chosen) or ("<none persisted>",)
            stats.n_states += 1
            yield CrashState(
                image=CrashImage(
                    base, tuple((e.addr, e.data) for e in chosen)
                ),
                fence_index=fence_index,
                syscall=in_syscall,
                syscall_name=in_name,
                mid_syscall=in_syscall is not None,
                after_syscall=completed,
                subset_desc=desc,
                n_replayed=len(combo),
                log_pos=log_pos,
                replayed_entries=tuple(replayed),
                kind="subset",
            )

    for log_pos, entry in enumerate(log):
        if isinstance(entry, SyscallBegin):
            in_syscall, in_name = entry.index, entry.name
        elif isinstance(entry, SyscallEnd):
            completed = entry.index
            emit = crash_points in ("fence", "post") or entry.name in SYNC_SYSCALLS
            if emit:
                # Synchrony crash point: the syscall has returned; anything
                # still in flight is lost in the worst case.
                stats.n_states += 1
                yield CrashState(
                    image=CrashImage(persistent.base()),
                    fence_index=fence_index,
                    syscall=None,
                    syscall_name=entry.name,
                    mid_syscall=False,
                    after_syscall=completed,
                    subset_desc=("<post-syscall; in-flight writes lost>",)
                    if inflight
                    else ("<post-syscall>",),
                    n_replayed=0,
                    log_pos=log_pos,
                    replayed_entries=(),
                    kind="post",
                )
            in_syscall, in_name = None, None
        elif isinstance(entry, Fence):
            if crash_points == "fence":
                yield from subset_states(log_pos)
            persistent.apply(inflight)
            inflight.clear()
            fence_index += 1
            stats.n_fences += 1
            if tel is not None:
                tel.count("replay.fences")
        elif isinstance(entry, (NTStore, Flush)):
            inflight.append(entry)

    if crash_points == "fence":
        yield from subset_states(len(log))
    persistent.apply(inflight)
    if crash_points in ("fence", "post"):
        # The final, fully persistent state: a crash after the workload
        # ends.  The fsync-only policy has no crash point here — its last
        # checkpoint is the workload's final sync call (CrashMonkey
        # semantics).
        stats.n_states += 1
        yield CrashState(
            image=CrashImage(persistent.base()),
            fence_index=fence_index,
            syscall=None,
            syscall_name=None,
            mid_syscall=False,
            after_syscall=completed,
            subset_desc=("<final state>",),
            n_replayed=0,
            log_pos=len(log),
            replayed_entries=tuple(range(len(inflight))),
            kind="final",
        )


def persistence_breakdown(log: PMLog) -> Dict[str, Dict[str, int]]:
    """Per persistence-function mix of stores, flushes, fences, and bytes.

    One O(log) walk, same shape as :func:`inflight_histogram`: keyed by the
    probed persistence function name (``memcpy_to_pmem_nocache``,
    ``nova_flush_buffer``, …), so the coverage report can show *which
    persistence mechanisms* a file system leans on — the per-mechanism
    store breakdown the mechanism-aware pruning follow-up starts from.
    """
    out: Dict[str, Dict[str, int]] = {}
    for entry in log:
        if isinstance(entry, NTStore):
            kind = "stores"
        elif isinstance(entry, Flush):
            kind = "flushes"
        elif isinstance(entry, Fence):
            kind = "fences"
        else:
            continue
        bucket = out.setdefault(
            entry.func, {"stores": 0, "flushes": 0, "fences": 0, "bytes": 0}
        )
        bucket[kind] += 1
        if kind != "fences":
            bucket["bytes"] += len(entry.data)
    return out


def store_region_counts(log: PMLog, layout) -> Dict[str, Dict[str, int]]:
    """Write traffic per on-device layout region.

    ``layout`` is a :class:`repro.fs.common.layout.LayoutMap` (duck-typed:
    only ``region_of`` is used) — normally the memoized mkfs-fresh map from
    :func:`repro.core.triage.layout_map_for`.  Each store/flush is charged
    to the region containing its start address, which is exact for this
    codebase's probes (persistence functions never straddle regions).
    """
    out: Dict[str, Dict[str, int]] = {}
    for entry in log:
        if not isinstance(entry, (NTStore, Flush)):
            continue
        region = layout.region_of(entry.addr)
        bucket = out.setdefault(region, {"writes": 0, "bytes": 0})
        bucket["writes"] += 1
        bucket["bytes"] += len(entry.data)
    return out


def inflight_histogram(log: PMLog, threshold: int = DATA_WRITE_THRESHOLD) -> Dict[str, List[int]]:
    """Per-syscall in-flight write-unit counts at each fence.

    Used to reproduce the paper's observation that metadata operations keep
    the in-flight set small (average 3, maximum 10 in the tested systems).
    """
    counts: Dict[str, List[int]] = {}
    inflight: List[WriteEntry] = []
    current: Optional[str] = None
    for entry in log:
        if isinstance(entry, SyscallBegin):
            current = entry.name
        elif isinstance(entry, SyscallEnd):
            current = None
        elif isinstance(entry, Fence):
            if inflight and current is not None:
                units = coalesce_units(inflight, threshold)
                counts.setdefault(current, []).append(len(units))
            inflight.clear()
        elif isinstance(entry, (NTStore, Flush)):
            inflight.append(entry)
    return counts
