"""Bug-report triage: lexical similarity plus provenance-guided clustering.

Fuzzing produces floods of duplicate reports — multiple crash states trigger
the same underlying bug.  The paper extends Syzkaller with "a simple
triaging procedure that clusters bug reports by lexical similarity"
(section 3.4.2); this module implements that procedure: reports whose
token-set Jaccard similarity exceeds a threshold join the same cluster.

Lexical triage cannot merge one bug seen through different syscalls: the
report text names the syscall, so a missing journal-commit flush reported
under ``creat`` and again under ``unlink`` stays two clusters.  The
*provenance-guided* mode fixes this by keying on where the failure actually
lives — the set of ``(persistence function, layout region)`` sites of the
dropped in-flight stores.  Two reports with the same file system and
consequence whose site sets intersect are the same bug regardless of the
syscall that exposed it; reports without provenance (or with no dropped
stores) fall back to the lexical procedure, so mixed streams triage
cleanly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.report import BugReport

_TOKEN = re.compile(r"[a-zA-Z_/.#]+")


def tokenize(text: str) -> FrozenSet[str]:
    """Lexical tokens of a report signature (numbers stripped — crash-state
    indices and offsets should not separate duplicates)."""
    return frozenset(t.lower() for t in _TOKEN.findall(text) if len(t) > 1)


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


# ----------------------------------------------------------------------
# Provenance sites
# ----------------------------------------------------------------------
#: One culprit site: (persistence function, layout region name).
Site = Tuple[str, str]

_LAYOUT_MAPS: Dict[Tuple[str, int], object] = {}


def layout_map_for(fs_name: str, device_size: int):
    """The layout map of a freshly formatted ``fs_name`` device, memoized.

    Triage only needs region *names* for addresses, and those depend on the
    geometry (derived from the device size), not on any workload — so one
    mkfs per (fs, size) pair serves every report in a campaign.
    """
    key = (fs_name, device_size)
    layout = _LAYOUT_MAPS.get(key)
    if layout is None:
        # Deferred: keep triage importable without the fs registry chain.
        from repro.fs.registry import fs_class
        from repro.pm.device import PMDevice

        cls = fs_class(fs_name)
        device = PMDevice(device_size)
        cls.mkfs(device)
        layout = cls.layout_map(device.snapshot())
        _LAYOUT_MAPS[key] = layout
    return layout


def provenance_sites(
    report: BugReport, culprit_seqs: Tuple[int, ...] = ()
) -> Optional[FrozenSet[Site]]:
    """The culprit site set of a provenance-carrying report.

    Sites are the ``(func, region)`` pairs of the dropped in-flight stores —
    the stores whose loss produced the failure.  When minimization has
    narrowed the dropped set, pass its ``culprit_seqs`` to restrict the
    sites to the minimal culprits.  Returns ``None`` when the report has no
    provenance or no dropped stores (nothing to key on — caller falls back
    to lexical triage).
    """
    prov = report.provenance
    if prov is None:
        return None
    dropped = prov.dropped()
    if culprit_seqs:
        wanted = set(culprit_seqs)
        narrowed = [e for e in dropped if e.seq in wanted]
        if narrowed:
            dropped = narrowed
    if not dropped:
        return None
    layout = layout_map_for(prov.fs_name, prov.device_size)
    return frozenset(
        (e.func, layout.region_of(e.addr)) for e in dropped if e.addr >= 0
    ) or None


@dataclass
class Cluster:
    """A group of similar reports; the first is the exemplar.

    Lexical clusters match on ``tokens``; provenance clusters carry a
    ``prov_key`` ((fs, consequence) pair) and a growing union of culprit
    ``sites``.
    """

    exemplar: BugReport
    tokens: FrozenSet[str]
    members: List[BugReport] = field(default_factory=list)
    #: (fs_name, consequence name) for provenance clusters; None = lexical.
    prov_key: Optional[Tuple[str, str]] = None
    #: Union of the members' culprit site sets (provenance clusters only).
    sites: FrozenSet[Site] = frozenset()

    def __post_init__(self) -> None:
        if not self.members:
            self.members.append(self.exemplar)

    @property
    def count(self) -> int:
        return len(self.members)

    def describe(self) -> str:
        return f"x{self.count} {self.exemplar.render()}"

    def describe_sites(self) -> str:
        """The culprit sites, rendered for reports (provenance clusters)."""
        if not self.sites:
            return ""
        return ", ".join(
            f"{func}@{region}" for func, region in sorted(self.sites)
        )


class Triage:
    """Online clustering of bug reports.

    With ``provenance=True``, reports carrying a usable culprit site set
    cluster by (fs, consequence, intersecting sites); everything else runs
    through the lexical procedure against lexical clusters only, so the two
    populations never cross-contaminate.
    """

    def __init__(self, threshold: float = 0.72, provenance: bool = False) -> None:
        self.threshold = threshold
        self.provenance = provenance
        self.clusters: List[Cluster] = []

    def _add_by_sites(
        self, report: BugReport, sites: FrozenSet[Site]
    ) -> Cluster:
        prov_key = (report.provenance.fs_name, report.consequence.name)
        for cluster in self.clusters:
            if cluster.prov_key == prov_key and cluster.sites & sites:
                cluster.members.append(report)
                cluster.sites = cluster.sites | sites
                return cluster
        cluster = Cluster(
            exemplar=report,
            tokens=tokenize(report.signature()),
            prov_key=prov_key,
            sites=sites,
        )
        self.clusters.append(cluster)
        return cluster

    def add(self, report: BugReport) -> Cluster:
        """Insert a report, returning the cluster it joined (or founded)."""
        if self.provenance:
            sites = provenance_sites(report)
            if sites:
                return self._add_by_sites(report, sites)
        tokens = tokenize(report.signature())
        best: Cluster | None = None
        best_score = 0.0
        for cluster in self.clusters:
            if cluster.prov_key is not None:
                continue
            score = jaccard(tokens, cluster.tokens)
            if score > best_score:
                best, best_score = cluster, score
        if best is not None and best_score >= self.threshold:
            best.members.append(report)
            return best
        cluster = Cluster(exemplar=report, tokens=tokens)
        self.clusters.append(cluster)
        return cluster

    def add_all(self, reports: List[BugReport]) -> None:
        for report in reports:
            self.add(report)

    def add_new(self, reports: List[BugReport]) -> List[Cluster]:
        """Insert a batch, returning only the clusters it *founded*.

        The campaign layers (``CampaignStats``, ``CampaignSummary``, the
        parallel merge stage) all need "which clusters are new?" to emit
        time-to-bug points; this replaces their before/after length dance.
        """
        before = len(self.clusters)
        self.add_all(reports)
        return self.clusters[before:]

    @property
    def unique(self) -> List[BugReport]:
        return [c.exemplar for c in self.clusters]

    def summary(self) -> str:
        return "\n\n".join(c.describe() for c in self.clusters)


def triage_reports(
    reports: List[BugReport],
    threshold: float = 0.72,
    provenance: bool = False,
) -> List[Cluster]:
    """Cluster a batch of reports (convenience wrapper)."""
    triage = Triage(threshold, provenance=provenance)
    triage.add_all(reports)
    return triage.clusters
