"""Bug-report triage by lexical similarity.

Fuzzing produces floods of duplicate reports — multiple crash states trigger
the same underlying bug.  The paper extends Syzkaller with "a simple
triaging procedure that clusters bug reports by lexical similarity"
(section 3.4.2); this module implements that procedure: reports whose
token-set Jaccard similarity exceeds a threshold join the same cluster.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, List

from repro.core.report import BugReport

_TOKEN = re.compile(r"[a-zA-Z_/.#]+")


def tokenize(text: str) -> FrozenSet[str]:
    """Lexical tokens of a report signature (numbers stripped — crash-state
    indices and offsets should not separate duplicates)."""
    return frozenset(t.lower() for t in _TOKEN.findall(text) if len(t) > 1)


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


@dataclass
class Cluster:
    """A group of lexically similar reports; the first is the exemplar."""

    exemplar: BugReport
    tokens: FrozenSet[str]
    members: List[BugReport] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.members:
            self.members.append(self.exemplar)

    @property
    def count(self) -> int:
        return len(self.members)

    def describe(self) -> str:
        return f"x{self.count} {self.exemplar.render()}"


class Triage:
    """Online clustering of bug reports."""

    def __init__(self, threshold: float = 0.72) -> None:
        self.threshold = threshold
        self.clusters: List[Cluster] = []

    def add(self, report: BugReport) -> Cluster:
        """Insert a report, returning the cluster it joined (or founded)."""
        tokens = tokenize(report.signature())
        best: Cluster | None = None
        best_score = 0.0
        for cluster in self.clusters:
            score = jaccard(tokens, cluster.tokens)
            if score > best_score:
                best, best_score = cluster, score
        if best is not None and best_score >= self.threshold:
            best.members.append(report)
            return best
        cluster = Cluster(exemplar=report, tokens=tokens)
        self.clusters.append(cluster)
        return cluster

    def add_all(self, reports: List[BugReport]) -> None:
        for report in reports:
            self.add(report)

    def add_new(self, reports: List[BugReport]) -> List[Cluster]:
        """Insert a batch, returning only the clusters it *founded*.

        The campaign layers (``CampaignStats``, ``CampaignSummary``, the
        parallel merge stage) all need "which clusters are new?" to emit
        time-to-bug points; this replaces their before/after length dance.
        """
        before = len(self.clusters)
        self.add_all(reports)
        return self.clusters[before:]

    @property
    def unique(self) -> List[BugReport]:
        return [c.exemplar for c in self.clusters]

    def summary(self) -> str:
        return "\n\n".join(c.describe() for c in self.clusters)


def triage_reports(reports: List[BugReport], threshold: float = 0.72) -> List[Cluster]:
    """Cluster a batch of reports (convenience wrapper)."""
    triage = Triage(threshold)
    triage.add_all(reports)
    return triage.clusters
