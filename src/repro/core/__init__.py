"""Chipmunk: record-and-replay crash-consistency testing (paper section 3).

The pipeline mirrors Figure 2 of the paper:

1. :mod:`repro.core.probes` — attach function-level probes (the
   Kprobes/Uprobes analogue) to the target file system's centralized
   persistence functions and record a :class:`~repro.pm.log.PMLog` while the
   workload runs;
2. :mod:`repro.core.replayer` — construct crash states from the log by
   replaying subsets of the in-flight writes at each store fence;
3. :mod:`repro.core.oracle` — run the same workload on a fresh instance and
   snapshot the legal state around every syscall;
4. :mod:`repro.core.checker` — mount each crash state and check atomicity,
   synchrony, and usability against the oracle;
5. :mod:`repro.core.report` / :mod:`repro.core.triage` — emit and deduplicate
   bug reports.

:class:`repro.core.harness.Chipmunk` ties the steps together.
"""

from repro.core.harness import Chipmunk, ChipmunkConfig, TestResult
from repro.core.report import BugReport
from repro.core.probes import ProbeSet
from repro.core.replayer import CrashState, enumerate_crash_states

__all__ = [
    "Chipmunk",
    "ChipmunkConfig",
    "TestResult",
    "BugReport",
    "ProbeSet",
    "CrashState",
    "enumerate_crash_states",
]
