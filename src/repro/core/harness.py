"""Chipmunk orchestration: record → replay → check (paper Figure 2).

:class:`Chipmunk` runs one workload against one file system: it formats a
device, attaches probes to the file system's persistence functions, executes
the workload while recording the write log, runs the oracle, enumerates
crash states, checks each, and triages the findings.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type, Union

from repro.core.checker import CheckerConfig, ConsistencyChecker
from repro.core.oracle import run_oracle
from repro.core.probes import ProbeSet, probe_targets_of
from repro.core.replayer import ReplayStats, enumerate_crash_states, inflight_histogram
from repro.core.report import BugReport
from repro.core.triage import Cluster, triage_reports
from repro.fs.bugs import BugConfig
from repro.fs.registry import fs_class as lookup_fs_class
from repro.pm.device import PMDevice
from repro.pm.log import PMLog
from repro.vfs.interface import FileSystem
from repro.workloads.ops import Op, Workload, describe_workload, execute_op


@dataclass
class ChipmunkConfig:
    """Knobs of one testing campaign."""

    device_size: int = 256 * 1024
    #: Maximum in-flight write units replayed per crash state (None = all;
    #: the paper finds 2 sufficient for every bug, section 5.1.2).
    cap: Optional[int] = 2
    #: NT stores at least this large coalesce as file-data writes.
    coalesce_threshold: int = 256
    usability_check: bool = True
    #: Stop checking a workload after this many reports (the triage layer
    #: dedups anyway; this bounds worst-case work on very buggy states).
    max_reports_per_workload: int = 64
    #: Override the crash-point strategy ("fence", "post", "fsync"); None
    #: picks "fence" for strong-guarantee systems and "fsync" otherwise.
    crash_points: Optional[str] = None


@dataclass
class TestResult:
    """Outcome of testing one workload."""

    workload_desc: str
    reports: List[BugReport]
    clusters: List[Cluster]
    n_crash_states: int
    n_unique_states: int
    n_fences: int
    log_length: int
    inflight: Dict[str, List[int]]
    elapsed: float
    errnos: List[Optional[str]] = field(default_factory=list)

    @property
    def buggy(self) -> bool:
        return bool(self.reports)

    def summary(self) -> str:
        head = (
            f"workload [{self.workload_desc}]: {len(self.reports)} report(s) in "
            f"{len(self.clusters)} cluster(s), {self.n_unique_states} unique of "
            f"{self.n_crash_states} crash states, {self.n_fences} fences, "
            f"{self.elapsed * 1000:.1f} ms"
        )
        if not self.clusters:
            return head
        return head + "\n" + "\n".join(
            "  - " + c.exemplar.consequence.value + ": " + c.exemplar.detail[:120]
            for c in self.clusters
        )


class Chipmunk:
    """Crash-consistency tester for one file system configuration."""

    def __init__(
        self,
        fs: Union[str, Type[FileSystem]],
        bugs: Optional[BugConfig] = None,
        config: Optional[ChipmunkConfig] = None,
    ) -> None:
        self.fs_class = lookup_fs_class(fs) if isinstance(fs, str) else fs
        self.bugs = bugs if bugs is not None else BugConfig.buggy(self.fs_class.name)
        self.config = config or ChipmunkConfig()

    # ------------------------------------------------------------------
    def record(self, workload: Workload, setup: Workload = (), coverage=None) -> tuple:
        """Run the workload with probes attached; return (base, log, errnos).

        ``setup`` operations run before recording starts (the ACE dependency
        phase — crash states are only explored for the core workload, as in
        CrashMonkey/ACE).  ``coverage`` optionally attaches a
        :class:`~repro.workloads.coverage.CoverageMap` to the instance.
        """
        device = PMDevice(self.config.device_size)
        fs = self.fs_class.mkfs(device, bugs=self.bugs)
        for op in setup:
            execute_op(fs, op)
        if coverage is not None:
            fs.coverage = coverage
        base = device.snapshot()
        log = PMLog()
        probes = ProbeSet(log)
        probes.attach(probe_targets_of(fs))
        errnos: List[Optional[str]] = []
        try:
            for index, op in enumerate(workload):
                log.syscall_begin(index, op.name, ", ".join(map(repr, op.args)))
                errnos.append(execute_op(fs, op))
                log.syscall_end()
        finally:
            probes.detach()
        return base, log, errnos

    def test_workload(
        self, workload: Workload, setup: Workload = (), coverage=None
    ) -> TestResult:
        """Full pipeline for one workload."""
        start = time.perf_counter()
        workload = list(workload)
        desc = describe_workload(workload)
        base, log, errnos = self.record(workload, setup=setup, coverage=coverage)
        oracle = run_oracle(
            self.fs_class, workload, self.config.device_size, bugs=self.bugs,
            setup=setup,
        )
        if errnos != oracle.errnos:
            raise RuntimeError(
                f"probed run and oracle disagree on syscall results: "
                f"{errnos} vs {oracle.errnos} for [{desc}]"
            )
        checker = ConsistencyChecker(
            self.fs_class,
            oracle,
            desc,
            bugs=self.bugs,
            config=CheckerConfig(usability_check=self.config.usability_check),
        )
        crash_points = self.config.crash_points or (
            "fence" if self.fs_class.strong_guarantees else "fsync"
        )
        stats = ReplayStats()
        seen: set = set()
        reports: List[BugReport] = []
        n_states = 0
        for state in enumerate_crash_states(
            base,
            log,
            cap=self.config.cap,
            coalesce_threshold=self.config.coalesce_threshold,
            crash_points=crash_points,
            stats=stats,
        ):
            n_states += 1
            key = (
                hashlib.sha1(state.image).digest(),
                state.syscall,
                state.mid_syscall,
                state.after_syscall,
            )
            if key in seen:
                continue
            seen.add(key)
            reports.extend(checker.check(state))
            if len(reports) >= self.config.max_reports_per_workload:
                break
        clusters = triage_reports(reports)
        return TestResult(
            workload_desc=desc,
            reports=reports,
            clusters=clusters,
            n_crash_states=n_states,
            n_unique_states=len(seen),
            n_fences=stats.n_fences,
            log_length=len(log),
            inflight=inflight_histogram(log, self.config.coalesce_threshold),
            elapsed=time.perf_counter() - start,
            errnos=errnos,
        )

    # ------------------------------------------------------------------
    def test_many(self, workloads: List[Workload], stop_after: Optional[int] = None):
        """Test a batch of workloads, yielding (workload, TestResult).

        ``stop_after`` stops the campaign once that many buggy workloads
        have been seen (useful for time-to-first-bug measurements).
        """
        buggy = 0
        for workload in workloads:
            result = self.test_workload(workload)
            yield workload, result
            if result.buggy:
                buggy += 1
                if stop_after is not None and buggy >= stop_after:
                    return
