"""Chipmunk orchestration: record → replay → check (paper Figure 2).

:class:`Chipmunk` runs one workload against one file system: it formats a
device, attaches probes to the file system's persistence functions, executes
the workload while recording the write log, runs the oracle, enumerates
crash states, checks each, and triages the findings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type, Union

from repro.core.checker import CheckerConfig, CheckMemo, ConsistencyChecker
from repro.core.oracle import run_oracle
from repro.core.probes import ProbeSet, probe_targets_of
from repro.core.replayer import (
    ReplayStats,
    enumerate_crash_states,
    inflight_histogram,
    persistence_breakdown,
    store_region_counts,
)
from repro.core.report import BugReport
from repro.core.triage import Cluster, layout_map_for, triage_reports
from repro.fs.bugs import BugConfig
from repro.fs.registry import fs_class as lookup_fs_class
from repro.obs import NULL
from repro.obs import profile as _profile
from repro.pm.device import PMDevice
from repro.pm.log import PMLog
from repro.vfs.interface import FileSystem
from repro.workloads.ops import Op, Workload, describe_workload, execute_op


@dataclass
class ChipmunkConfig:
    """Knobs of one testing campaign."""

    device_size: int = 256 * 1024
    #: Maximum in-flight write units replayed per crash state (None = all;
    #: the paper finds 2 sufficient for every bug, section 5.1.2).
    cap: Optional[int] = 2
    #: NT stores at least this large coalesce as file-data writes.
    coalesce_threshold: int = 256
    usability_check: bool = True
    #: Stop checking a workload after this many reports (the triage layer
    #: dedups anyway; this bounds worst-case work on very buggy states).
    max_reports_per_workload: int = 64
    #: Override the crash-point strategy ("fence", "post", "fsync"); None
    #: picks "fence" for strong-guarantee systems and "fsync" otherwise.
    crash_points: Optional[str] = None
    #: Attach store-level lineage (:mod:`repro.forensics`) to every bug
    #: report.  Capture only runs for failing states, so the cost on clean
    #: workloads is a no-op.
    forensics: bool = True
    #: Content-addressed check memoization: key crash states by their
    #: O(overlay) delta digest instead of hashing the materialized image
    #: (:class:`repro.core.checker.CheckMemo`).  ``False`` falls back to
    #: eager whole-image sha1 dedup — same reports, eager cost.
    memoize: bool = True
    #: Local check-memo bound: LRU cap on *clean* verdict entries per
    #: workload memo (buggy entries are pinned — see
    #: :class:`repro.memo.store.MemoTable`); 0 disables the bound.
    memo_entries: int = 262144
    #: Crash-plan selection: ``"subset"`` enumerates capped store subsets
    #: per fence epoch (the paper's strategy); ``"mech"`` recognizes the
    #: persistence mechanism behind each epoch (:mod:`repro.mech`) and
    #: emits a few targeted plans instead, falling back to subset
    #: enumeration for unrecognized epochs.
    crash_plans: str = "subset"
    #: Install the hot-path profiler (:mod:`repro.obs.profile`) for the
    #: duration of each workload: per-stage wall time, per-callsite
    #: attribution, and byte accounting land in :attr:`TestResult.profile`.
    #: Off by default — the disabled path costs one global read per
    #: instrumented site (the telemetry-overhead bench pins it).
    profile: bool = False
    #: Crash-image data plane (:mod:`repro.pm.backend`): ``"python"`` (the
    #: reference implementation), ``"numpy"`` (vectorized, zero-copy fence
    #: bases), or ``"auto"`` (numpy when importable).  Both backends
    #: produce byte-identical crash states, digests, and reports; an
    #: explicit ``"numpy"`` degrades gracefully to ``"python"`` on hosts
    #: without numpy.
    image_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.crash_plans not in ("subset", "mech"):
            raise ValueError(
                f"unknown crash-plan mode {self.crash_plans!r} "
                f"(expected 'subset' or 'mech')"
            )
        from repro.pm.backend import BACKEND_CHOICES

        if self.image_backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown image backend {self.image_backend!r} "
                f"(expected one of {BACKEND_CHOICES})"
            )


#: Pipeline stage keys of :attr:`TestResult.stage_times`, in execution order.
#: ``analyze`` is the post-check analytics pass (persistence breakdowns,
#: recovery-read overlap) feeding ``repro coverage``.
STAGES = ("record", "oracle", "enumerate", "check", "triage", "analyze")

#: Cache-line granularity of the recovery-read overlap estimate, matching
#: :func:`repro.core.recovery_reads.recovery_read_set`.
RECOVERY_LINE = 64


@dataclass
class TestResult:
    """Outcome of testing one workload."""

    workload_desc: str
    reports: List[BugReport]
    clusters: List[Cluster]
    n_crash_states: int
    n_unique_states: int
    n_fences: int
    log_length: int
    inflight: Dict[str, List[int]]
    #: Total pipeline time; always the sum of :attr:`stage_times`.
    elapsed: float
    errnos: List[Optional[str]] = field(default_factory=list)
    #: Per-stage wall time (keys from :data:`STAGES`), sourced from the
    #: telemetry span layer.
    stage_times: Dict[str, float] = field(default_factory=dict)
    #: True when checking stopped early at ``max_reports_per_workload`` —
    #: a capped campaign is not a clean one.
    truncated: bool = False
    #: Check-memoization counters (``checker.memo.*``): states skipped
    #: because a byte-identical image was already checked / states checked.
    memo_hits: int = 0
    memo_misses: int = 0
    #: Memo-miss attribution: reason -> count (``checker.memo.miss.*``).
    #: Values sum exactly to :attr:`memo_misses`.
    memo_miss_reasons: Dict[str, int] = field(default_factory=dict)
    #: Top colliding content keys: ``[content_key_hex, n_shapes]`` pairs —
    #: byte-identical contents checked under multiple overlay shapes.
    memo_collisions: List[List[object]] = field(default_factory=list)
    #: Overlay writes dropped as no-ops before digesting
    #: (``checker.memo.noop_writes_dropped``).
    memo_noop_dropped: int = 0
    #: Hits served by the campaign-wide shared memo service
    #: (``checker.memo.shared.hits``); also counted in :attr:`memo_hits`.
    memo_shared_hits: int = 0
    #: Shared-service calls that failed and degraded to local misses
    #: (``checker.memo.shared.errors``).
    memo_shared_errors: int = 0
    #: Clean entries LRU-evicted from the local memo
    #: (``checker.memo.evictions``).
    memo_evictions: int = 0
    #: Distinct recovered observable outcomes among the checked states —
    #: the numerator of the output-equivalence pruning headroom.
    n_unique_outcomes: int = 0
    #: Persistence-function mix: func -> {stores, flushes, fences, bytes}.
    persistence: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Write traffic per layout region: region -> {writes, bytes}.
    store_regions: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Recovery-read overlap on the final persistent image
    #: ({read_lines, store_lines, overlap_lines}, 64-byte cache lines).
    recovery_overlap: Dict[str, int] = field(default_factory=dict)
    #: Crash-plan mode the workload ran under ("subset" | "mech").
    crash_plans: str = "subset"
    #: Mechanism recognition (``mech.recognized.{kind}``): fence epochs per
    #: recognized mechanism kind.  Empty outside mech mode.
    mech_recognized: Dict[str, int] = field(default_factory=dict)
    #: Targeted crash states emitted from mechanism plans
    #: (``mech.plans.emitted``).
    mech_plans_emitted: int = 0
    #: Epochs that fell back to full subset enumeration
    #: (``mech.fallback_epochs``).
    mech_fallback_epochs: int = 0
    #: Hot-path profile (:meth:`repro.obs.profile.Profiler.to_dict`):
    #: per-stage seconds, per-callsite attribution, byte accounting.
    #: Empty unless the workload ran with ``ChipmunkConfig.profile``.
    profile: Dict[str, object] = field(default_factory=dict)
    #: Crash-image backend the workload actually ran under ("python" |
    #: "numpy") — the resolved value, not the configured one.
    image_backend: str = "python"

    @property
    def buggy(self) -> bool:
        return bool(self.reports)

    def summary(self) -> str:
        head = (
            f"workload [{self.workload_desc}]: {len(self.reports)} report(s) in "
            f"{len(self.clusters)} cluster(s), {self.n_unique_states} unique of "
            f"{self.n_crash_states} crash states, {self.n_fences} fences, "
            f"{self.elapsed * 1000:.1f} ms"
        )
        if self.truncated:
            head += " [TRUNCATED at report cap]"
        if self.stage_times:
            head += "\n  stages: " + "  ".join(
                f"{stage} {self.stage_times[stage] * 1000:.1f}ms"
                for stage in STAGES
                if stage in self.stage_times
            )
        if not self.clusters:
            return head
        return head + "\n" + "\n".join(
            "  - " + c.exemplar.consequence.value + ": " + c.exemplar.detail[:120]
            for c in self.clusters
        )

    # ------------------------------------------------------------------
    # JSON round-trip.  Campaign workers return results to the parent as
    # dicts, and the checkpoint journal persists them across kills; the
    # merge stage rebuilds real ``TestResult`` objects so every existing
    # aggregator (``CampaignSummary``, ``CampaignStats``) works unchanged.
    # Clusters are not serialized — they are a pure function of the reports
    # and are re-derived on load, which keeps the journal compact.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "workload_desc": self.workload_desc,
            "reports": [r.to_dict() for r in self.reports],
            "n_crash_states": self.n_crash_states,
            "n_unique_states": self.n_unique_states,
            "n_fences": self.n_fences,
            "log_length": self.log_length,
            "inflight": {k: list(v) for k, v in self.inflight.items()},
            "elapsed": self.elapsed,
            "errnos": list(self.errnos),
            "stage_times": dict(self.stage_times),
            "truncated": self.truncated,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_miss_reasons": dict(self.memo_miss_reasons),
            "memo_collisions": [list(c) for c in self.memo_collisions],
            "memo_noop_dropped": self.memo_noop_dropped,
            "memo_shared_hits": self.memo_shared_hits,
            "memo_shared_errors": self.memo_shared_errors,
            "memo_evictions": self.memo_evictions,
            "n_unique_outcomes": self.n_unique_outcomes,
            "persistence": {k: dict(v) for k, v in self.persistence.items()},
            "store_regions": {k: dict(v) for k, v in self.store_regions.items()},
            "recovery_overlap": dict(self.recovery_overlap),
            "crash_plans": self.crash_plans,
            "mech_recognized": dict(self.mech_recognized),
            "mech_plans_emitted": self.mech_plans_emitted,
            "mech_fallback_epochs": self.mech_fallback_epochs,
            "profile": dict(self.profile),
            "image_backend": self.image_backend,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TestResult":
        reports = [BugReport.from_dict(r) for r in data.get("reports", [])]
        return cls(
            workload_desc=str(data["workload_desc"]),
            reports=reports,
            clusters=triage_reports(reports),
            n_crash_states=int(data.get("n_crash_states", 0)),
            n_unique_states=int(data.get("n_unique_states", 0)),
            n_fences=int(data.get("n_fences", 0)),
            log_length=int(data.get("log_length", 0)),
            inflight={
                str(k): [int(c) for c in v]
                for k, v in dict(data.get("inflight", {})).items()
            },
            elapsed=float(data.get("elapsed", 0.0)),
            errnos=list(data.get("errnos", [])),
            stage_times={
                str(k): float(v)
                for k, v in dict(data.get("stage_times", {})).items()
            },
            truncated=bool(data.get("truncated", False)),
            memo_hits=int(data.get("memo_hits", 0)),
            memo_misses=int(data.get("memo_misses", 0)),
            memo_miss_reasons={
                str(k): int(v)
                for k, v in dict(data.get("memo_miss_reasons", {})).items()
            },
            memo_collisions=[
                [str(c[0]), int(c[1])]
                for c in list(data.get("memo_collisions", []))
            ],
            memo_noop_dropped=int(data.get("memo_noop_dropped", 0)),
            memo_shared_hits=int(data.get("memo_shared_hits", 0)),
            memo_shared_errors=int(data.get("memo_shared_errors", 0)),
            memo_evictions=int(data.get("memo_evictions", 0)),
            n_unique_outcomes=int(data.get("n_unique_outcomes", 0)),
            persistence={
                str(k): {str(kk): int(vv) for kk, vv in dict(v).items()}
                for k, v in dict(data.get("persistence", {})).items()
            },
            store_regions={
                str(k): {str(kk): int(vv) for kk, vv in dict(v).items()}
                for k, v in dict(data.get("store_regions", {})).items()
            },
            recovery_overlap={
                str(k): int(v)
                for k, v in dict(data.get("recovery_overlap", {})).items()
            },
            crash_plans=str(data.get("crash_plans", "subset")),
            mech_recognized={
                str(k): int(v)
                for k, v in dict(data.get("mech_recognized", {})).items()
            },
            mech_plans_emitted=int(data.get("mech_plans_emitted", 0)),
            mech_fallback_epochs=int(data.get("mech_fallback_epochs", 0)),
            profile=dict(data.get("profile", {})),
            image_backend=str(data.get("image_backend", "python")),
        )


class Chipmunk:
    """Crash-consistency tester for one file system configuration."""

    def __init__(
        self,
        fs: Union[str, Type[FileSystem]],
        bugs: Optional[BugConfig] = None,
        config: Optional[ChipmunkConfig] = None,
        telemetry=None,
        shared_memo=None,
    ) -> None:
        self.fs_class = lookup_fs_class(fs) if isinstance(fs, str) else fs
        self.bugs = bugs if bugs is not None else BugConfig.buggy(self.fs_class.name)
        self.config = config or ChipmunkConfig()
        #: Telemetry sink (:class:`repro.obs.Telemetry`); defaults to the
        #: null object, which keeps the pipeline uninstrumented.
        self.telemetry = telemetry if telemetry is not None else NULL
        #: Campaign-wide shared memo backend (a
        #: :class:`repro.memo.client.MemoClient` or compatible); every
        #: workload's :class:`CheckMemo` consults it for cross-workload
        #: clean-verdict dedup.  None runs local-only.
        self.shared_memo = shared_memo

    # ------------------------------------------------------------------
    def record(self, workload: Workload, setup: Workload = (), coverage=None) -> tuple:
        """Run the workload with probes attached; return (base, log, errnos).

        ``setup`` operations run before recording starts (the ACE dependency
        phase — crash states are only explored for the core workload, as in
        CrashMonkey/ACE).  ``coverage`` optionally attaches a
        :class:`~repro.workloads.coverage.CoverageMap` to the instance.
        """
        tel = self.telemetry
        device = PMDevice(
            self.config.device_size,
            telemetry=tel if tel.enabled else None,
        )
        fs = self.fs_class.mkfs(device, bugs=self.bugs)
        for op in setup:
            execute_op(fs, op)
        if coverage is not None:
            fs.coverage = coverage
        base = device.snapshot()
        log = PMLog()
        probes = ProbeSet(log)
        probes.attach(probe_targets_of(fs))
        errnos: List[Optional[str]] = []
        try:
            if tel.enabled:
                for index, op in enumerate(workload):
                    log.syscall_begin(index, op.name, ", ".join(map(repr, op.args)))
                    with tel.span("syscall", index=index, op=op.name):
                        errnos.append(execute_op(fs, op))
                    log.syscall_end()
            else:
                for index, op in enumerate(workload):
                    log.syscall_begin(index, op.name, ", ".join(map(repr, op.args)))
                    errnos.append(execute_op(fs, op))
                    log.syscall_end()
        finally:
            probes.detach()
        return base, log, errnos

    def test_workload(
        self, workload: Workload, setup: Workload = (), coverage=None
    ) -> TestResult:
        """Full pipeline for one workload.

        Every stage runs under a telemetry span (``record``, ``oracle``,
        ``enumerate``, ``check``, ``triage``); :attr:`TestResult.stage_times`
        is sourced from the span durations, and ``elapsed`` is their sum.
        Enumeration and checking interleave (crash states are generated
        lazily), so their stages are timed at crash-state boundaries — each
        ``next()`` on the generator is enumeration, everything after it is
        checking.

        With ``config.profile`` a hot-path profiler
        (:mod:`repro.obs.profile`) is installed for the pipeline's duration;
        its stage clock transitions at the same boundaries as the spans, so
        the profile's per-stage seconds reconcile with ``stage_times``.
        """
        if not self.config.profile:
            return self._run_pipeline(workload, setup, coverage, None)
        profiler = _profile.Profiler()
        with _profile.install(profiler):
            return self._run_pipeline(workload, setup, coverage, profiler)

    def _run_pipeline(
        self, workload: Workload, setup: Workload, coverage, profiler
    ) -> TestResult:
        tel = self.telemetry
        workload = list(workload)
        desc = describe_workload(workload)
        stage_times: Dict[str, float] = {}
        if profiler is not None:
            profiler.set_stage("record")
        with tel.span("record", workload=desc) as sp:
            base, log, errnos = self.record(workload, setup=setup, coverage=coverage)
        stage_times["record"] = sp.duration
        if profiler is not None:
            profiler.set_stage("oracle")
        with tel.span("oracle") as sp:
            oracle = run_oracle(
                self.fs_class, workload, self.config.device_size, bugs=self.bugs,
                setup=setup,
            )
        stage_times["oracle"] = sp.duration
        if profiler is not None:
            # Pipeline setup (checker, planner, forensics recorder) sits
            # outside every stage span; keep it out of the stage clock too
            # so profile stages reconcile with ``stage_times``.
            profiler.set_stage("other")
        if errnos != oracle.errnos:
            raise RuntimeError(
                f"probed run and oracle disagree on syscall results: "
                f"{errnos} vs {oracle.errnos} for [{desc}]"
            )
        crash_points = self.config.crash_points or (
            "fence" if self.fs_class.strong_guarantees else "fsync"
        )
        recorder = None
        if self.config.forensics:
            from repro.forensics.provenance import ProvenanceRecorder

            recorder = ProvenanceRecorder(
                log,
                fs_name=self.fs_class.name,
                workload=workload,
                setup=list(setup),
                bug_ids=sorted(self.bugs.enabled),
                cap=self.config.cap,
                coalesce_threshold=self.config.coalesce_threshold,
                device_size=self.config.device_size,
                crash_points=crash_points,
                usability_check=self.config.usability_check,
            )
        checker = ConsistencyChecker(
            self.fs_class,
            oracle,
            desc,
            bugs=self.bugs,
            config=CheckerConfig(usability_check=self.config.usability_check),
            telemetry=tel,
            provenance=recorder,
        )
        stats = ReplayStats()
        # The memo is the single entry point for checking: dedup (by delta
        # digest or eager sha1, per ``config.memoize``), the ``check_state``
        # telemetry span, and the checker call all live behind it.
        memo = CheckMemo(
            checker,
            telemetry=tel,
            delta=self.config.memoize,
            shared=self.shared_memo,
            max_entries=self.config.memo_entries,
        )
        planner = None
        if self.config.crash_plans == "mech" and crash_points == "fence":
            # Mechanism recognition only prunes fence-epoch subsets; the
            # post/fsync strategies never enumerate them, so the classifier
            # pass would be pure overhead there.
            from repro.mech.plans import MechPlanner

            planner = MechPlanner(
                self.fs_class,
                log,
                self.config.device_size,
                base_image=base,
                bugs=self.bugs,
                cap=self.config.cap,
                coalesce_threshold=self.config.coalesce_threshold,
                telemetry=tel,
            )
        reports: List[BugReport] = []
        n_states = 0
        truncated = False
        enum_time = 0.0
        check_time = 0.0
        from repro.pm.backend import resolve_backend

        image_backend = resolve_backend(self.config.image_backend)
        states = enumerate_crash_states(
            base,
            log,
            cap=self.config.cap,
            coalesce_threshold=self.config.coalesce_threshold,
            crash_points=crash_points,
            stats=stats,
            telemetry=tel,
            planner=planner,
            image_backend=image_backend,
        )
        if profiler is not None:
            profiler.set_stage("enumerate")
        t_prev = time.perf_counter()
        while True:
            state = next(states, None)
            t_state = time.perf_counter()
            enum_time += t_state - t_prev
            if state is None:
                break
            if profiler is not None:
                profiler.set_stage("check")
            n_states += 1
            found = memo.check(state)
            if found is None:
                # Memo hit: a byte-identical state was already checked.
                if tel.enabled:
                    tel.count("harness.dedup_hits")
                t_prev = time.perf_counter()
                check_time += t_prev - t_state
                if profiler is not None:
                    profiler.set_stage("enumerate")
                continue
            reports.extend(found)
            t_prev = time.perf_counter()
            check_time += t_prev - t_state
            if profiler is not None:
                profiler.set_stage("enumerate")
            if len(reports) >= self.config.max_reports_per_workload:
                truncated = True
                break
        stage_times["enumerate"] = enum_time
        stage_times["check"] = check_time
        if profiler is not None:
            profiler.set_stage("triage")
        with tel.span("triage") as sp:
            clusters = triage_reports(reports)
        stage_times["triage"] = sp.duration
        if profiler is not None:
            profiler.set_stage("analyze")
        with tel.span("analyze") as sp:
            persistence = persistence_breakdown(log)
            try:
                layout = layout_map_for(
                    self.fs_class.name, self.config.device_size
                )
                store_regions = store_region_counts(log, layout)
            except Exception:  # noqa: BLE001 — analytics never sink a run
                store_regions = {}
            recovery_overlap = self._recovery_overlap(base, log)
        stage_times["analyze"] = sp.duration
        if profiler is not None:
            profiler.stop()
            prof_dict = profiler.to_dict()
            if tel.enabled:
                for cat, n in profiler.bytes.items():
                    if n:
                        tel.count("profile.bytes." + cat, n)
        else:
            prof_dict = {}
        result = TestResult(
            workload_desc=desc,
            reports=reports,
            clusters=clusters,
            n_crash_states=n_states,
            n_unique_states=memo.checked,
            n_fences=stats.n_fences,
            log_length=len(log),
            inflight=inflight_histogram(log, self.config.coalesce_threshold),
            elapsed=sum(stage_times.values()),
            errnos=errnos,
            stage_times=stage_times,
            truncated=truncated,
            memo_hits=memo.hits,
            memo_misses=memo.misses,
            memo_miss_reasons=dict(memo.attribution.reasons),
            memo_collisions=[
                [key, count] for key, count in memo.attribution.top_collisions()
            ],
            memo_noop_dropped=memo.noop_writes_dropped,
            memo_shared_hits=memo.shared_hits,
            memo_shared_errors=memo.shared_errors,
            memo_evictions=memo.evictions,
            n_unique_outcomes=len(checker.outcome_digests),
            persistence=persistence,
            store_regions=store_regions,
            recovery_overlap=recovery_overlap,
            crash_plans=self.config.crash_plans,
            mech_recognized=dict(planner.recognized) if planner else {},
            mech_plans_emitted=planner.plans_emitted if planner else 0,
            mech_fallback_epochs=planner.fallback_epochs if planner else 0,
            profile=prof_dict,
            image_backend=image_backend,
        )
        if tel.enabled:
            self._emit_result(tel, result)
        return result

    def _recovery_overlap(self, base: bytes, log: PMLog) -> Dict[str, int]:
        """Recovery-read overlap with the workload's write set.

        Mounts the final persistent image on an overlay-aware read-tracking
        device (:func:`repro.core.recovery_reads.recovery_read_set` with
        ``writes=``) and intersects the cache lines recovery reads with the
        lines the workload stored.  The fence base is shared by reference
        and only the chunks recovery touches are materialized, so this
        analyze stage costs O(log delta + bytes read), never a device copy.
        A large never-read remainder is the Vinter-heuristic redundancy the
        coverage report surfaces: in-flight writes recovery does not even
        look at rarely change a verdict.
        """
        from repro.core.recovery_reads import recovery_read_set

        store_lines: set = set()
        overlay = []
        for entry in log.writes():
            data = entry.data
            overlay.append((entry.addr, data))
            first = entry.addr // RECOVERY_LINE
            last = (entry.addr + max(len(data), 1) - 1) // RECOVERY_LINE
            store_lines.update(range(first, last + 1))
        read_lines = recovery_read_set(
            self.fs_class, base, bugs=self.bugs,
            granularity=RECOVERY_LINE, writes=overlay,
        )
        return {
            "read_lines": len(read_lines),
            "store_lines": len(store_lines),
            "overlap_lines": len(read_lines & store_lines),
        }

    def _emit_result(self, tel, result: TestResult) -> None:
        """Counters plus the ``workload_result`` trace event that
        :meth:`repro.obs.campaign.CampaignStats.from_trace` folds back."""
        tel.count("harness.workloads")
        tel.count("harness.crash_states", result.n_crash_states)
        tel.count("harness.unique_states", result.n_unique_states)
        tel.count("harness.reports", len(result.reports))
        if result.truncated:
            tel.count("harness.truncated_workloads")
        outcomes: Dict[str, int] = {}
        for report in result.reports:
            name = report.consequence.name
            outcomes[name] = outcomes.get(name, 0) + 1
        tel.event(
            "workload_result",
            fs=self.fs_class.name,
            desc=result.workload_desc,
            elapsed=result.elapsed,
            stages=result.stage_times,
            n_crash_states=result.n_crash_states,
            n_unique_states=result.n_unique_states,
            n_fences=result.n_fences,
            n_reports=len(result.reports),
            n_clusters=len(result.clusters),
            truncated=result.truncated,
            memo_hits=result.memo_hits,
            memo_misses=result.memo_misses,
            memo_miss_reasons=result.memo_miss_reasons,
            memo_collisions=result.memo_collisions,
            memo_noop_dropped=result.memo_noop_dropped,
            memo_shared_hits=result.memo_shared_hits,
            memo_shared_errors=result.memo_shared_errors,
            memo_evictions=result.memo_evictions,
            n_unique_outcomes=result.n_unique_outcomes,
            persistence=result.persistence,
            store_regions=result.store_regions,
            recovery_overlap=result.recovery_overlap,
            crash_plans=result.crash_plans,
            mech_recognized=result.mech_recognized,
            mech_plans_emitted=result.mech_plans_emitted,
            mech_fallback_epochs=result.mech_fallback_epochs,
            profile=result.profile,
            image_backend=result.image_backend,
            outcomes=outcomes,
            inflight=result.inflight,
        )

    # ------------------------------------------------------------------
    def test_many(self, workloads: List[Workload], stop_after: Optional[int] = None):
        """Test a batch of workloads, yielding (workload, TestResult).

        ``stop_after`` stops the campaign once that many buggy workloads
        have been seen (useful for time-to-first-bug measurements).
        """
        buggy = 0
        for workload in workloads:
            result = self.test_workload(workload)
            yield workload, result
            if result.buggy:
                buggy += 1
                if stop_after is not None and buggy >= stop_after:
                    return
