"""Bug reports.

A report carries enough detail to reproduce the inconsistency: the workload,
the crash point (fence index and replayed subset), the consequence class,
and a diff against the legal states — the paper's "bug report with enough
detail to reproduce the bug" (Figure 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.forensics.provenance import CrashProvenance


class Consequence(enum.Enum):
    """Classification of what the crash state violated."""

    UNMOUNTABLE = "file system unmountable"
    ATOMICITY = "operation is not atomic"
    SYNCHRONY = "operation is not synchronous"
    UNREADABLE = "file or directory is unreadable"
    DATA_LOSS = "file data lost"
    USABILITY = "file system unusable (create/delete fails)"
    STATE_MISMATCH = "unexpected post-crash state"


@dataclass(frozen=True)
class BugReport:
    """One checker finding on one crash state."""

    fs_name: str
    consequence: Consequence
    workload_desc: str
    crash_desc: str
    detail: str
    syscall: Optional[int] = None
    syscall_name: Optional[str] = None
    mid_syscall: bool = False
    n_replayed: int = 0
    paths: Tuple[str, ...] = ()
    #: Store-level lineage and repro context (:mod:`repro.forensics`);
    #: ``None`` when forensics capture is disabled.  Excluded from
    #: :meth:`signature` so triage clustering is unaffected.
    provenance: Optional[CrashProvenance] = None

    def signature(self) -> str:
        """Lexical signature used by the triage clustering."""
        return " ".join(
            [
                self.fs_name,
                self.consequence.value,
                self.syscall_name or "none",
                "mid" if self.mid_syscall else "post",
                self.detail,
            ]
        )

    def render(self) -> str:
        lines = [
            f"BUG [{self.fs_name}] {self.consequence.value}",
            f"  workload: {self.workload_desc}",
            f"  crash:    {self.crash_desc}",
            f"  detail:   {self.detail}",
        ]
        if self.paths:
            lines.append(f"  paths:    {', '.join(self.paths)}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # JSON round-trip — campaign workers ship reports across process
    # boundaries and the checkpoint journal persists them between runs.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "fs_name": self.fs_name,
            "consequence": self.consequence.name,
            "workload_desc": self.workload_desc,
            "crash_desc": self.crash_desc,
            "detail": self.detail,
            "syscall": self.syscall,
            "syscall_name": self.syscall_name,
            "mid_syscall": self.mid_syscall,
            "n_replayed": self.n_replayed,
            "paths": list(self.paths),
            "provenance": (
                self.provenance.to_dict() if self.provenance is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BugReport":
        return cls(
            fs_name=str(data["fs_name"]),
            consequence=Consequence[str(data["consequence"])],
            workload_desc=str(data["workload_desc"]),
            crash_desc=str(data["crash_desc"]),
            detail=str(data["detail"]),
            syscall=data.get("syscall"),
            syscall_name=data.get("syscall_name"),
            mid_syscall=bool(data.get("mid_syscall", False)),
            n_replayed=int(data.get("n_replayed", 0)),
            paths=tuple(data.get("paths", ())),
            provenance=(
                CrashProvenance.from_dict(data["provenance"])
                if data.get("provenance") is not None
                else None
            ),
        )


@dataclass
class DiffEntry:
    """One path-level difference between a crash state and an oracle state."""

    path: str
    kind: str  # "missing", "extra", "differs"
    detail: str

    def describe(self) -> str:
        return f"{self.path}: {self.kind} ({self.detail})"


def diff_trees(crash, oracle) -> List[DiffEntry]:
    """Path-level differences between two tree observations."""
    out: List[DiffEntry] = []
    for path in sorted(set(crash) | set(oracle)):
        in_crash, in_oracle = path in crash, path in oracle
        if in_crash and not in_oracle:
            out.append(DiffEntry(path, "extra", crash[path].describe()))
        elif in_oracle and not in_crash:
            out.append(DiffEntry(path, "missing", oracle[path].describe()))
        elif crash[path] != oracle[path]:
            out.append(
                DiffEntry(
                    path,
                    "differs",
                    f"crash={crash[path].describe()} expected={oracle[path].describe()}",
                )
            )
    return out
