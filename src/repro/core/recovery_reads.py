"""Vinter-style recovery-read heuristic (paper section 6.2).

Vinter reduces its state space by focusing on crash states whose in-flight
writes are *likely to be read during recovery*.  The paper notes Chipmunk
"could incorporate this heuristic by recording PM read functions" — this
module does exactly that: it mounts the last persistent state on a
read-tracking device, records which byte ranges recovery touches, and lets
the replayer rank subsets by how much of their in-flight data recovery
would actually observe.

This is an *ordering* heuristic, not a filter: with a subset cap in place it
changes which states are generated first, which matters when a campaign is
stopped early (time-boxed fuzzing).  The ablation bench
(`benchmarks/bench_vinter_heuristic.py`) measures how many crash states a
campaign checks before the first report, with and without the heuristic.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.pm.device import PMDevice
from repro.pm.log import WriteEntry
from repro.vfs.interface import MountError


class ReadTrackingDevice(PMDevice):
    """A device that records every byte range read from it."""

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self.read_ranges: List[Tuple[int, int]] = []

    @classmethod
    def from_snapshot(cls, snap: bytes) -> "ReadTrackingDevice":
        if not isinstance(snap, (bytes, bytearray)):
            snap = bytes(snap)  # lazy CrashImage → flat bytes
        dev = cls(len(snap))
        dev.image = bytearray(snap)
        dev.read_ranges.clear()
        return dev

    def read(self, addr: int, length: int) -> bytes:
        if length > 0:
            self.read_ranges.append((addr, length))
        return super().read(addr, length)


def recovery_read_set(fs_class, image: bytes, bugs=None, granularity: int = 64) -> Set[int]:
    """Cache lines recovery reads when mounting ``image``.

    A failed mount still yields the ranges read up to the failure — those
    are precisely the locations recovery trusted.
    """
    device = ReadTrackingDevice.from_snapshot(image)
    try:
        fs_class.mount(device, bugs=bugs)
    except (MountError, Exception):  # noqa: BLE001 - any recovery failure is fine
        pass
    lines: Set[int] = set()
    for addr, length in device.read_ranges:
        first = addr // granularity
        last = (addr + length - 1) // granularity
        lines.update(range(first, last + 1))
    return lines


def write_overlap(entry: WriteEntry, read_lines: Set[int], granularity: int = 64) -> int:
    """How many of the entry's cache lines recovery would read."""
    first = entry.addr // granularity
    last = (entry.addr + max(entry.length, 1) - 1) // granularity
    return sum(1 for line in range(first, last + 1) if line in read_lines)


def rank_units(
    units: List[List[WriteEntry]], read_lines: Set[int]
) -> List[List[WriteEntry]]:
    """Order replay units so recovery-visible writes come first."""
    scored = [
        (sum(write_overlap(e, read_lines) for e in unit), i, unit)
        for i, unit in enumerate(units)
    ]
    scored.sort(key=lambda t: (-t[0], t[1]))
    return [unit for _, _, unit in scored]
