"""Vinter-style recovery-read heuristic (paper section 6.2).

Vinter reduces its state space by focusing on crash states whose in-flight
writes are *likely to be read during recovery*.  The paper notes Chipmunk
"could incorporate this heuristic by recording PM read functions" — this
module does exactly that: it mounts the last persistent state on a
read-tracking device, records which byte ranges recovery touches, and lets
the replayer rank subsets by how much of their in-flight data recovery
would actually observe.

This is an *ordering* heuristic, not a filter: with a subset cap in place it
changes which states are generated first, which matters when a campaign is
stopped early (time-boxed fuzzing).  The ablation bench
(`benchmarks/bench_vinter_heuristic.py`) measures how many crash states a
campaign checks before the first report, with and without the heuristic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.pm.device import CACHE_LINE, PMDevice, PMDeviceError
from repro.pm.log import WriteEntry
from repro.vfs.interface import MountError


class ReadTrackingDevice(PMDevice):
    """A device that records every byte range read from it."""

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self.read_ranges: List[Tuple[int, int]] = []

    @classmethod
    def from_snapshot(cls, snap: bytes) -> "ReadTrackingDevice":
        if not isinstance(snap, (bytes, bytearray)):
            snap = bytes(snap)  # lazy CrashImage → flat bytes
        dev = cls(len(snap))
        dev.image = bytearray(snap)
        dev.read_ranges.clear()
        return dev

    def read(self, addr: int, length: int) -> bytes:
        if length > 0:
            self.read_ranges.append((addr, length))
        return super().read(addr, length)


class OverlayReadTrackingDevice(PMDevice):
    """Read-tracking device over ``base`` plus a sparse write overlay.

    Construction takes the shared fence-base bytes *by reference* and an
    ordered list of overlay writes; nothing is copied up front.  Chunks of
    the image are materialized copy-on-access — base slice plus the overlay
    writes that land in the chunk, applied in log order — so a recovery pass
    that reads a few kilobytes costs a few kilobytes, not a device copy.
    Mount-time recovery writes land in the same materialized chunks and are
    observed by later reads, exactly as on a flat device.
    """

    CHUNK = 4096

    def __init__(self, base, writes: Iterable[Tuple[int, bytes]] = ()) -> None:
        # ``base`` is flat bytes or any sliceable fence base (including the
        # numpy backend's LazyFenceBase) — only accessed chunks are read.
        size = len(base)
        if size <= 0 or size % CACHE_LINE != 0:
            raise PMDeviceError(
                f"device size must be a positive multiple of {CACHE_LINE}, got {size}"
            )
        # Deliberately skip PMDevice.__init__: no full-image allocation.
        self.size = size
        self._base = base
        self._chunks: Dict[int, bytearray] = {}
        self._pending: Dict[int, List[Tuple[int, bytes]]] = {}
        for addr, data in writes:
            if not data:
                continue
            self.check_range(addr, len(data))
            first = addr // self.CHUNK
            last = (addr + len(data) - 1) // self.CHUNK
            for ci in range(first, last + 1):
                self._pending.setdefault(ci, []).append((addr, data))
        self.read_ranges: List[Tuple[int, int]] = []
        self._undo = None
        self._c_reads = self._c_read_bytes = None
        self._c_writes = self._c_write_bytes = None

    def _chunk(self, ci: int) -> bytearray:
        buf = self._chunks.get(ci)
        if buf is None:
            lo = ci * self.CHUNK
            hi = min(lo + self.CHUNK, self.size)
            buf = bytearray(self._base[lo:hi])
            for addr, data in self._pending.pop(ci, ()):
                s = max(addr, lo)
                e = min(addr + len(data), hi)
                if s < e:
                    buf[s - lo : e - lo] = data[s - addr : e - addr]
            self._chunks[ci] = buf
        return buf

    def read(self, addr: int, length: int) -> bytes:
        self.check_range(addr, length)
        if length <= 0:
            return b""
        self.read_ranges.append((addr, length))
        first = addr // self.CHUNK
        last = (addr + length - 1) // self.CHUNK
        parts = []
        for ci in range(first, last + 1):
            lo = ci * self.CHUNK
            buf = self._chunk(ci)
            s = max(addr, lo) - lo
            e = min(addr + length, lo + len(buf)) - lo
            parts.append(bytes(buf[s:e]))
        return parts[0] if len(parts) == 1 else b"".join(parts)

    def write(self, addr: int, data: bytes) -> None:
        self.check_range(addr, len(data))
        if not data:
            return
        first = addr // self.CHUNK
        last = (addr + len(data) - 1) // self.CHUNK
        for ci in range(first, last + 1):
            lo = ci * self.CHUNK
            buf = self._chunk(ci)
            s = max(addr, lo)
            e = min(addr + len(data), lo + len(buf))
            buf[s - lo : e - lo] = data[s - addr : e - addr]

    def snapshot(self) -> bytes:
        # Slicing (not buffer conversion) so lazy fence bases — sliceable
        # but not buffer-protocol objects — work as the base too.
        buf = bytearray(self._base[0 : self.size])
        for ci in sorted(set(self._pending) | set(self._chunks)):
            if ci in self._chunks:
                lo = ci * self.CHUNK
                buf[lo : lo + len(self._chunks[ci])] = self._chunks[ci]
            else:
                for addr, data in self._pending[ci]:
                    lo = ci * self.CHUNK
                    hi = min(lo + self.CHUNK, self.size)
                    s = max(addr, lo)
                    e = min(addr + len(data), hi)
                    if s < e:
                        buf[s:e] = data[s - addr : e - addr]
        return bytes(buf)


def recovery_read_set(
    fs_class,
    image: bytes,
    bugs=None,
    granularity: int = 64,
    writes: Iterable[Tuple[int, bytes]] | None = None,
) -> Set[int]:
    """Cache lines recovery reads when mounting ``image``.

    A failed mount still yields the ranges read up to the failure — those
    are precisely the locations recovery trusted.

    With ``writes``, ``image`` is treated as the shared fence base and the
    mount runs against ``base + writes`` on an
    :class:`OverlayReadTrackingDevice` — no flat copy of the device is ever
    built, so the cost is proportional to the overlay plus the bytes
    recovery actually reads.
    """
    if writes is not None:
        device: PMDevice = OverlayReadTrackingDevice(image, writes)
    else:
        device = ReadTrackingDevice.from_snapshot(image)
    try:
        fs_class.mount(device, bugs=bugs)
    except (MountError, Exception):  # noqa: BLE001 - any recovery failure is fine
        pass
    lines: Set[int] = set()
    for addr, length in device.read_ranges:
        first = addr // granularity
        last = (addr + length - 1) // granularity
        lines.update(range(first, last + 1))
    return lines


def write_overlap(entry: WriteEntry, read_lines: Set[int], granularity: int = 64) -> int:
    """How many of the entry's cache lines recovery would read."""
    first = entry.addr // granularity
    last = (entry.addr + max(entry.length, 1) - 1) // granularity
    return sum(1 for line in range(first, last + 1) if line in read_lines)


def rank_units(
    units: List[List[WriteEntry]], read_lines: Set[int]
) -> List[List[WriteEntry]]:
    """Order replay units so recovery-visible writes come first."""
    scored = [
        (sum(write_overlap(e, read_lines) for e in unit), i, unit)
        for i, unit in enumerate(units)
    ]
    scored.sort(key=lambda t: (-t[0], t[1]))
    return [unit for _, _, unit in scored]
