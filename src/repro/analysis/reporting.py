"""Campaign reporting: render triaged findings as a markdown document.

The paper's Figure 1 ends in "bug reports with enough detail to reproduce
the bug"; this module is the last-mile formatting — a campaign summary a
developer can file upstream, with one section per triaged cluster including
the workload, the crash point, and the divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.harness import TestResult
from repro.core.triage import Cluster, Triage


@dataclass
class CampaignSummary:
    """Aggregated outcome of a testing campaign."""

    fs_name: str
    generator: str
    workloads_tested: int = 0
    crash_states: int = 0
    unique_states: int = 0
    wall_time: float = 0.0
    truncated_workloads: int = 0
    #: Check-memoization counters (``checker.memo.*``) summed over workloads.
    memo_hits: int = 0
    memo_misses: int = 0
    memo_noop_dropped: int = 0
    #: Hits served by the campaign-wide shared memo service (subset of
    #: :attr:`memo_hits`) and clean-entry LRU evictions from local memos.
    memo_shared_hits: int = 0
    memo_evictions: int = 0
    #: ``checker.memo.miss.{reason}`` attribution, summed over workloads.
    memo_miss_reasons: Dict[str, int] = field(default_factory=dict)
    #: Distinct recovered-outcome digests summed over workloads — the
    #: WITCHER output-equivalence pruning headroom denominator.
    unique_outcomes: int = 0
    #: Mechanism-aware crash planning (``mech.*``): epochs per recognized
    #: kind, targeted states emitted, and subset-fallback epochs.
    crash_plans: str = "?"
    mech_recognized: Dict[str, int] = field(default_factory=dict)
    mech_plans_emitted: int = 0
    mech_fallback_epochs: int = 0
    #: Provenance-guided triage by default: reports carrying a culprit site
    #: set cluster by (fs, consequence, sites) — one bug seen through
    #: different syscalls merges — and the rest fall back to the lexical
    #: procedure.  Campaigns run with forensics disabled therefore behave
    #: exactly as before.
    triage: Triage = field(default_factory=lambda: Triage(provenance=True))
    #: workload index at which each cluster was first seen
    first_seen: Dict[int, int] = field(default_factory=dict)
    #: per-stage wall time summed over workloads (telemetry satellite data)
    stage_totals: Dict[str, float] = field(default_factory=dict)

    def add_result(self, result: TestResult) -> None:
        self.workloads_tested += 1
        self.crash_states += result.n_crash_states
        self.unique_states += result.n_unique_states
        self.wall_time += result.elapsed
        self.memo_hits += getattr(result, "memo_hits", 0)
        self.memo_misses += getattr(result, "memo_misses", 0)
        self.memo_noop_dropped += getattr(result, "memo_noop_dropped", 0)
        self.memo_shared_hits += getattr(result, "memo_shared_hits", 0)
        self.memo_evictions += getattr(result, "memo_evictions", 0)
        for reason, n in getattr(result, "memo_miss_reasons", {}).items():
            self.memo_miss_reasons[reason] = (
                self.memo_miss_reasons.get(reason, 0) + n
            )
        self.unique_outcomes += getattr(result, "n_unique_outcomes", 0)
        mode = getattr(result, "crash_plans", "subset")
        self.crash_plans = mode if self.crash_plans in ("?", mode) else "mixed"
        for kind, n in getattr(result, "mech_recognized", {}).items():
            self.mech_recognized[kind] = self.mech_recognized.get(kind, 0) + n
        self.mech_plans_emitted += getattr(result, "mech_plans_emitted", 0)
        self.mech_fallback_epochs += getattr(result, "mech_fallback_epochs", 0)
        if getattr(result, "truncated", False):
            self.truncated_workloads += 1
        for stage, dt in getattr(result, "stage_times", {}).items():
            self.stage_totals[stage] = self.stage_totals.get(stage, 0.0) + dt
        new = self.triage.add_new(result.reports)
        base = len(self.triage.clusters) - len(new)
        for offset in range(len(new)):
            self.first_seen[base + offset] = self.workloads_tested

    @property
    def clusters(self) -> List[Cluster]:
        return self.triage.clusters


def run_campaign(chipmunk, workloads, generator: str = "ace") -> CampaignSummary:
    """Run a batch of workloads and aggregate a :class:`CampaignSummary`.

    ``workloads`` may yield plain op lists or ACE workloads (with ``setup``
    and ``core`` attributes).
    """
    summary = CampaignSummary(fs_name=chipmunk.fs_class.name, generator=generator)
    for workload in workloads:
        setup = getattr(workload, "setup", ())
        core = getattr(workload, "core", workload)
        summary.add_result(chipmunk.test_workload(core, setup=setup))
    return summary


def _telemetry_section(summary: CampaignSummary) -> List[str]:
    """Markdown telemetry block: per-stage timings, throughput, dedup rate."""
    if not summary.stage_totals:
        return []
    lines: List[str] = ["## Telemetry", ""]
    if summary.wall_time > 0:
        lines.append(
            f"- **throughput:** {summary.crash_states / summary.wall_time:.1f} "
            f"crash states/sec"
        )
    if summary.crash_states:
        rate = 1.0 - summary.unique_states / summary.crash_states
        lines.append(f"- **dedup hit-rate:** {rate * 100:.1f}%")
    memo_total = summary.memo_hits + summary.memo_misses
    if memo_total:
        noop = (
            f"; {summary.memo_noop_dropped} no-op write(s) dropped"
            if summary.memo_noop_dropped else ""
        )
        shared = (
            f"; {summary.memo_shared_hits} served by the shared service"
            if summary.memo_shared_hits else ""
        )
        evict = (
            f"; {summary.memo_evictions} clean eviction(s)"
            if summary.memo_evictions else ""
        )
        lines.append(
            f"- **check memo hit-rate:** "
            f"{summary.memo_hits / memo_total * 100:.1f}% "
            f"({summary.memo_hits} hit(s), {summary.memo_misses} miss(es); "
            f"`checker.memo.*`{shared}{evict}{noop})"
        )
    if summary.memo_miss_reasons:
        parts = ", ".join(
            f"`{reason}` {n}"
            for reason, n in sorted(
                summary.memo_miss_reasons.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        lines.append(f"- **memo misses by reason:** {parts}")
    if summary.unique_states and summary.unique_outcomes:
        headroom = 1.0 - summary.unique_outcomes / summary.unique_states
        lines.append(
            f"- **recovered outcomes:** {summary.unique_outcomes} distinct of "
            f"{summary.unique_states} checked "
            f"({headroom * 100:.1f}% output-equivalence pruning headroom)"
        )
    if summary.mech_recognized:
        parts = ", ".join(
            f"`{kind}` {n}"
            for kind, n in sorted(
                summary.mech_recognized.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
        lines.append(
            f"- **mechanism recognition** (`--crash-plans "
            f"{summary.crash_plans}`): {parts}"
        )
        lines.append(
            f"- **mech plans:** {summary.mech_plans_emitted} targeted "
            f"state(s) emitted, {summary.mech_fallback_epochs} epoch(s) fell "
            f"back to subset enumeration"
        )
    lines.append("")
    lines.append("| stage | total (ms) | share |")
    lines.append("| --- | ---: | ---: |")
    total = sum(summary.stage_totals.values()) or 1.0
    for stage in ("record", "oracle", "enumerate", "check", "triage", "analyze"):
        if stage in summary.stage_totals:
            dt = summary.stage_totals[stage]
            lines.append(
                f"| {stage} | {dt * 1000:.1f} | {dt / total * 100:.1f}% |"
            )
    lines.append("")
    return lines


def _engine_section(engine_meta: Optional[Dict[str, object]],
                    quarantined: Optional[List[dict]]) -> List[str]:
    """Markdown block for the parallel campaign engine's run metadata."""
    lines: List[str] = []
    if engine_meta:
        lines += ["## Campaign engine", ""]
        lines.append(f"- **workers:** {engine_meta.get('workers', '?')}")
        if engine_meta.get("wall_clock") is not None:
            lines.append(
                f"- **wall clock:** {float(engine_meta['wall_clock']):.1f}s"
            )
        lines.append(
            f"- **scheduling:** {engine_meta.get('dispatched', 0)} dispatched, "
            f"{engine_meta.get('steals', 0)} stolen, "
            f"{engine_meta.get('requeues', 0)} requeued"
        )
        if engine_meta.get("workers_killed"):
            lines.append(
                f"- **workers killed:** {engine_meta['workers_killed']} "
                f"(crash or per-workload timeout)"
            )
        if engine_meta.get("items_resumed"):
            lines.append(
                f"- **resumed:** {engine_meta['items_resumed']} workload(s) "
                f"restored from the checkpoint journal, not re-executed"
            )
        if engine_meta.get("interrupted"):
            lines.append(
                "- **interrupted:** campaign stopped early; findings are a "
                "lower bound (resume with `--resume`)"
            )
        lines.append("")
    if quarantined:
        lines += ["## Quarantined workloads", ""]
        lines.append(
            f"{len(quarantined)} workload(s) exhausted their retry budget "
            f"and were excluded; their coverage is missing from this report."
        )
        lines.append("")
        lines.append("| workload | retries | last error |")
        lines.append("| --- | ---: | --- |")
        for record in quarantined:
            lines.append(
                f"| `{record.get('id', '?')}` | {record.get('retries', '?')} "
                f"| {record.get('error', '?')} |"
            )
        lines.append("")
    return lines


def _forensics_section(exemplar, finding_index: int) -> List[str]:
    """Markdown forensics block for one cluster exemplar's provenance.

    Shows the crash-region store lineage (the fence epoch the crash
    interrupted, with each store's persistence fate) and points at
    ``repro explain`` for the full timeline, minimization, and image diff.
    """
    prov = exemplar.provenance
    if prov is None:
        return []
    counts = prov.counts()
    lines: List[str] = ["**Forensics**", ""]
    lines.append(
        f"Crash {prov.where()} (fence epoch {prov.fence_index} of "
        f"{prov.n_epochs}, state `{prov.state_kind}`): "
        f"{counts['replayed']} in-flight store(s) persisted, "
        f"{counts['dropped']} dropped, {counts['durable']} already durable."
    )
    region = [e for e in prov.crash_region() if e.kind in ("store", "flush")]
    if region:
        lines.append("")
        lines.append("```")
        for e in region:
            lines.append(
                f"seq {e.seq:>4}  {e.kind:<6} {e.status:<9} {e.func:<28} "
                f"addr={e.addr:#08x} len={e.length}"
            )
        lines.append("```")
    lines.append("")
    lines.append(
        f"Full timeline, store-set minimization, and image diff: "
        f"`python -m repro explain bugs.json --index "
        f"{finding_index - 1} --minimize`"
    )
    lines.append("")
    return lines


def render_markdown(
    summary: CampaignSummary,
    title: Optional[str] = None,
    engine_meta: Optional[Dict[str, object]] = None,
    quarantined: Optional[List[dict]] = None,
) -> str:
    """Render a campaign summary as a markdown report.

    ``engine_meta`` and ``quarantined`` come from the parallel campaign
    engine (:mod:`repro.campaign`); serial callers omit them and get the
    original report shape.
    """
    lines: List[str] = []
    lines.append(f"# {title or f'Crash-consistency report: {summary.fs_name}'}")
    lines.append("")
    lines.append(f"- **file system:** `{summary.fs_name}`")
    lines.append(f"- **workload generator:** {summary.generator}")
    lines.append(f"- **workloads tested:** {summary.workloads_tested}")
    lines.append(
        f"- **crash states:** {summary.crash_states} generated, "
        f"{summary.unique_states} unique checked"
    )
    lines.append(f"- **wall time:** {summary.wall_time:.1f}s")
    if summary.truncated_workloads:
        lines.append(
            f"- **truncated workloads:** {summary.truncated_workloads} "
            f"(hit the per-workload report cap; findings are a lower bound)"
        )
    lines.append(f"- **findings:** {len(summary.clusters)} triaged cluster(s)")
    lines.append("")
    lines.extend(_engine_section(engine_meta, quarantined))
    lines.extend(_telemetry_section(summary))
    if not summary.clusters:
        lines.append("No crash-consistency violations found.")
        lines.append("")
        return "\n".join(lines)
    for index, cluster in enumerate(summary.clusters, 1):
        exemplar = cluster.exemplar
        lines.append(f"## Finding {index}: {exemplar.consequence.value}")
        lines.append("")
        lines.append(f"*{cluster.count} report(s) in this cluster; first seen at "
                     f"workload #{summary.first_seen.get(index - 1, '?')}.*")
        lines.append("")
        if cluster.prov_key is not None and cluster.sites:
            lines.append(
                f"*Clustered by culprit sites: {cluster.describe_sites()}.*"
            )
            lines.append("")
        lines.append("**Reproduction workload**")
        lines.append("")
        lines.append("```")
        lines.append(exemplar.workload_desc)
        lines.append("```")
        lines.append("")
        lines.append("**Crash point**")
        lines.append("")
        lines.append("```")
        lines.append(exemplar.crash_desc)
        lines.append("```")
        lines.append("")
        lines.append("**Observed divergence**")
        lines.append("")
        lines.append(exemplar.detail)
        if exemplar.paths:
            lines.append("")
            lines.append(f"Affected paths: {', '.join(f'`{p}`' for p in exemplar.paths)}")
        lines.append("")
        lines.extend(_forensics_section(exemplar, index))
    return "\n".join(lines)
