"""Campaign reporting: render triaged findings as a markdown document.

The paper's Figure 1 ends in "bug reports with enough detail to reproduce
the bug"; this module is the last-mile formatting — a campaign summary a
developer can file upstream, with one section per triaged cluster including
the workload, the crash point, and the divergence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.harness import TestResult
from repro.core.triage import Cluster, Triage


@dataclass
class CampaignSummary:
    """Aggregated outcome of a testing campaign."""

    fs_name: str
    generator: str
    workloads_tested: int = 0
    crash_states: int = 0
    unique_states: int = 0
    wall_time: float = 0.0
    triage: Triage = field(default_factory=Triage)
    #: workload index at which each cluster was first seen
    first_seen: Dict[int, int] = field(default_factory=dict)

    def add_result(self, result: TestResult) -> None:
        self.workloads_tested += 1
        self.crash_states += result.n_crash_states
        self.unique_states += result.n_unique_states
        self.wall_time += result.elapsed
        before = len(self.triage.clusters)
        self.triage.add_all(result.reports)
        for index in range(before, len(self.triage.clusters)):
            self.first_seen[index] = self.workloads_tested

    @property
    def clusters(self) -> List[Cluster]:
        return self.triage.clusters


def run_campaign(chipmunk, workloads, generator: str = "ace") -> CampaignSummary:
    """Run a batch of workloads and aggregate a :class:`CampaignSummary`.

    ``workloads`` may yield plain op lists or ACE workloads (with ``setup``
    and ``core`` attributes).
    """
    summary = CampaignSummary(fs_name=chipmunk.fs_class.name, generator=generator)
    for workload in workloads:
        setup = getattr(workload, "setup", ())
        core = getattr(workload, "core", workload)
        summary.add_result(chipmunk.test_workload(core, setup=setup))
    return summary


def render_markdown(summary: CampaignSummary, title: Optional[str] = None) -> str:
    """Render a campaign summary as a markdown report."""
    lines: List[str] = []
    lines.append(f"# {title or f'Crash-consistency report: {summary.fs_name}'}")
    lines.append("")
    lines.append(f"- **file system:** `{summary.fs_name}`")
    lines.append(f"- **workload generator:** {summary.generator}")
    lines.append(f"- **workloads tested:** {summary.workloads_tested}")
    lines.append(
        f"- **crash states:** {summary.crash_states} generated, "
        f"{summary.unique_states} unique checked"
    )
    lines.append(f"- **wall time:** {summary.wall_time:.1f}s")
    lines.append(f"- **findings:** {len(summary.clusters)} triaged cluster(s)")
    lines.append("")
    if not summary.clusters:
        lines.append("No crash-consistency violations found.")
        lines.append("")
        return "\n".join(lines)
    for index, cluster in enumerate(summary.clusters, 1):
        exemplar = cluster.exemplar
        lines.append(f"## Finding {index}: {exemplar.consequence.value}")
        lines.append("")
        lines.append(f"*{cluster.count} report(s) in this cluster; first seen at "
                     f"workload #{summary.first_seen.get(index - 1, '?')}.*")
        lines.append("")
        lines.append("**Reproduction workload**")
        lines.append("")
        lines.append("```")
        lines.append(exemplar.workload_desc)
        lines.append("```")
        lines.append("")
        lines.append("**Crash point**")
        lines.append("")
        lines.append("```")
        lines.append(exemplar.crash_desc)
        lines.append("```")
        lines.append("")
        lines.append("**Observed divergence**")
        lines.append("")
        lines.append(exemplar.detail)
        if exemplar.paths:
            lines.append("")
            lines.append(f"Affected paths: {', '.join(f'`{p}`' for p in exemplar.paths)}")
        lines.append("")
    return "\n".join(lines)
