"""Bug catalogue analysis: Table 1 rows, Table 2 observations, trigger sets."""

from repro.analysis.bugdb import (
    SHARED_PAIRS,
    paper_table1_rows,
    unique_bug_count,
)
from repro.analysis.observations import PAPER_OBSERVATIONS, Observation

__all__ = [
    "SHARED_PAIRS",
    "unique_bug_count",
    "paper_table1_rows",
    "PAPER_OBSERVATIONS",
    "Observation",
]
