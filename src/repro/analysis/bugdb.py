"""Table-1 bug catalogue helpers.

The machine-readable catalogue lives in :mod:`repro.fs.bugs` (the file
systems import their flags from there); this module adds the paper-level
bookkeeping: shared-fix pairs, unique counts, and workloads known to trigger
each bug (used by the Table-1 and Figure-3 benches).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fs.bugs import BUG_REGISTRY, BugSpec
from repro.workloads.ops import Op

#: Bug rows that are one shared fix across PMFS and WineFS ("Two bugs are
#: found in both WineFS and PMFS for a total of 25", section 4.4).
SHARED_PAIRS: Tuple[Tuple[int, int], ...] = ((14, 15), (17, 18))


def unique_bug_count() -> int:
    """Unique fixes (the paper's 23) from the 25 catalogue rows."""
    return len(BUG_REGISTRY) - len(SHARED_PAIRS)


def canonical_bug_id(bug_id: int) -> int:
    """Map shared-pair members to their canonical (lower) id."""
    for a, b in SHARED_PAIRS:
        if bug_id == b:
            return a
    return bug_id


def paper_table1_rows() -> List[BugSpec]:
    """All catalogue rows in paper order."""
    return [BUG_REGISTRY[i] for i in sorted(BUG_REGISTRY)]


def bugs_by_fs() -> Dict[str, List[int]]:
    out: Dict[str, List[int]] = {}
    for spec in BUG_REGISTRY.values():
        for fs in spec.filesystems:
            out.setdefault(fs, []).append(spec.bug_id)
    return {fs: sorted(ids) for fs, ids in out.items()}


# ---------------------------------------------------------------------------
# Known trigger workloads.  These are ACE-shaped (aligned, short) for the
# ACE-findable bugs and unaligned/fuzzer-shaped for the four fuzzer-only
# bugs; the benches use them for detection and cap experiments.
# ---------------------------------------------------------------------------


def _w(*ops: Op) -> List[Op]:
    return list(ops)


def _c(path: str) -> Op:
    return Op("creat", (path,))


def _wr(path: str, offset: int, fill: int, length: int) -> Op:
    return Op("write", (path, offset, fill, length))


TRIGGERS: Dict[int, List[List[Op]]] = {
    1: [_w(_c("/a"), _c("/b"), _c("/d"), _c("/e"), _c("/f"))],
    2: [_w(_c("/foo")), _w(Op("mkdir", ("/A",)))],
    3: [
        _w(_c("/foo"), _wr("/foo", 0, 0x41, 512)),
        _w(_c("/foo"), Op("unlink", ("/foo",))),
    ],
    4: [_w(Op("mkdir", ("/A",)), _c("/foo"), Op("rename", ("/foo", "/A/bar")))],
    5: [_w(_c("/foo"), Op("rename", ("/foo", "/bar")))],
    6: [_w(_c("/foo"), Op("link", ("/foo", "/bar")))],
    7: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 1000), Op("truncate", ("/foo", 500)))],
    8: [_w(_c("/foo"), _wr("/foo", 0, 0x42, 600), Op("fallocate", ("/foo", 500, 600)))],
    9: [
        _w(_c("/foo"), Op("unlink", ("/foo",))),
        _w(_c("/foo"), _wr("/foo", 0, 0x41, 512), Op("truncate", ("/foo", 100))),
    ],
    10: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 512), Op("unlink", ("/foo",)))],
    11: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 1500), Op("truncate", ("/foo", 100)))],
    12: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 1000), Op("truncate", ("/foo", 500)))],
    13: [
        _w(_c("/foo"), _wr("/foo", 0, 0x41, 1000), Op("truncate", ("/foo", 100))),
        _w(_c("/foo"), _wr("/foo", 0, 0x41, 512), Op("unlink", ("/foo",))),
    ],
    14: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 512))],
    15: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 512))],
    16: [_w(_c("/foo"), _c("/bar"))],
    17: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 512), _wr("/foo", 0, 0x42, 30))],
    18: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 512), _wr("/foo", 0, 0x42, 30))],
    19: [_w(_c("/foo"), _c("/bar"), _c("/baz"))],
    20: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 1536), _wr("/foo", 100, 0x42, 900))],
    21: [_w(_c("/foo"), Op("mkdir", ("/A",)))],
    22: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 512))],
    23: [_w(_c("/foo"), _wr("/foo", 0, 0x41, 515))],
    24: [_w(_c("/foo"), _c("/bar"))],
    25: [_w(_c("/foo"), Op("rename", ("/foo", "/bar")))],
}
