"""Table 2: observations and their associated bugs.

The mapping below is the paper's Table 2 verbatim.  The Table-2 bench
re-derives each association from this reproduction (bug metadata plus
measured detection behaviour) and prints both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.fs.bugs import BUG_REGISTRY


@dataclass(frozen=True)
class Observation:
    key: str
    text: str
    #: Bug ids the paper's Table 2 associates with the observation.
    paper_bugs: FrozenSet[int]


def _bugs(*ids: int) -> FrozenSet[int]:
    return frozenset(ids)


PAPER_OBSERVATIONS: Tuple[Observation, ...] = (
    Observation(
        "logic",
        "Many bugs are logic/design issues, not PM programming errors.",
        _bugs(1, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 16, 19, 20, 21, 22, 23, 24, 25),
    ),
    Observation(
        "inplace",
        "The complexity of performing in-place updates leads to bugs.",
        _bugs(4, 5, 6, 7, 14, 15),
    ),
    Observation(
        "rebuild",
        "Recovery related to rebuilding in-DRAM state is a significant "
        "source of bugs.",
        _bugs(1, 3, 7, 11, 13, 16, 19, 24, 25),
    ),
    Observation(
        "resilience",
        "Complex features for increasing resilience can introduce crash "
        "consistency bugs.",
        _bugs(2, 9, 10, 11, 12),
    ),
    Observation(
        "midsyscall",
        "Many can only be exposed by simulating crashes during system calls.",
        _bugs(3, 4, 5, 6, 9, 10, 11, 12, 13, 19, 20),
    ),
    Observation(
        "short",
        "Short workloads were sufficient to expose many crash consistency bugs.",
        _bugs(*(set(range(1, 26)) - {7, 8})) ,
    ),
    Observation(
        "fewwrites",
        "Many bugs are exposed by replaying a few small writes onto "
        "previously persistent state.",
        _bugs(3, 4, 5, 6, 9, 10, 11, 12, 13, 19, 20),
    ),
)


def derived_associations() -> Dict[str, FrozenSet[int]]:
    """The same associations derived from this reproduction's metadata."""
    logic = frozenset(
        b for b, s in BUG_REGISTRY.items() if s.bug_type == "logic"
    )
    midsyscall = frozenset(
        b for b, s in BUG_REGISTRY.items() if s.needs_mid_syscall
    )
    short = frozenset(BUG_REGISTRY)  # every bug has a <=3-op trigger here
    fewwrites = frozenset(
        b for b, s in BUG_REGISTRY.items() if s.min_replay_writes <= 2
    )
    return {
        "logic": logic,
        "midsyscall": midsyscall,
        "short": short,
        "fewwrites": fewwrites,
    }


def observation_table() -> List[Tuple[str, str, List[int]]]:
    """(key, text, sorted paper bug list) rows for rendering."""
    return [(o.key, o.text, sorted(o.paper_bugs)) for o in PAPER_OBSERVATIONS]
