"""Abstract file-system interface.

Every simulated PM file system implements this path-based POSIX-ish API.  The
operation set matches the ten syscalls the paper tests (section 4.1): creat,
mkdir, fallocate, write, link, unlink, remove, rename, truncate, rmdir —
plus open/close bookkeeping, fsync-family calls, and the xattr calls used
only on ext4-DAX/XFS-DAX.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.pm.device import PMDevice
from repro.pm.persistence import PersistenceOps
from repro.vfs.errors import EINVAL, ENOENT
from repro.vfs.types import FileType, Stat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fs.bugs import BugConfig
    from repro.workloads.coverage import CoverageMap


class MountError(Exception):
    """The file system failed to mount a (possibly corrupt) image.

    A crash image that cannot be mounted is itself a crash-consistency bug
    (Table 1 bugs 1, 3, 13); the checker turns this exception into a report.
    """


class FileSystem(abc.ABC):
    """Base class for all simulated PM file systems."""

    #: Short identifier used in reports and registries (e.g. ``"nova"``).
    name: str = "abstract"

    #: True when the FS guarantees synchronous, (mostly) atomic operations
    #: without fsync — NOVA-family, PMFS, WineFS, SplitFS-strict.  False for
    #: ext4-DAX/XFS-DAX, whose guarantees only attach to fsync.
    strong_guarantees: bool = True

    #: True when ``write`` data updates are guaranteed atomic (section 3.3:
    #: "many systems provide the option to make write atomic").
    atomic_data_writes: bool = False

    #: True when the FS supports setxattr/removexattr.
    supports_xattr: bool = False

    def __init__(self, device: PMDevice, ops: PersistenceOps) -> None:
        self.device = device
        self.ops = ops
        self.coverage: Optional["CoverageMap"] = None
        self.bugcfg: Optional["BugConfig"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def mkfs(cls, device: PMDevice, **kwargs) -> "FileSystem":
        """Format ``device`` and return a mounted instance."""

    @classmethod
    @abc.abstractmethod
    def mount(cls, device: PMDevice, **kwargs) -> "FileSystem":
        """Mount an existing image, running crash recovery.

        Raises :class:`MountError` when the image cannot be recovered.
        """

    @classmethod
    def layout_map(cls, image: bytes):
        """Named-region map of ``image`` for forensic annotation.

        File systems with a parseable on-PM geometry override this so
        timelines and image diffs can say ``inode_table[3]+0x40`` instead
        of a raw byte address; the default is a single anonymous region.
        Implementations must tolerate corrupt images (a crash state's
        superblock may be torn) and fall back to this default.
        """
        from repro.fs.common.layout import single_region_map

        return single_region_map(len(image))

    @classmethod
    def mechanism_hints(cls):
        """Persistence-mechanism hints for ``--crash-plans mech``.

        Concrete file systems return a
        :class:`repro.mech.recognize.MechanismHints` declaring which
        ``layout_map()`` regions host journals, log appends, commit
        pointers, and replicas — declared next to the layout they refine.
        ``None`` (the default) means "no claims": mechanism-aware planning
        degrades to plain subset enumeration for this file system.
        """
        return None

    # ------------------------------------------------------------------
    # Core operations (paper section 4.1)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def creat(self, path: str, mode: int = 0o644) -> None:
        """Create an empty regular file."""

    @abc.abstractmethod
    def mkdir(self, path: str, mode: int = 0o755) -> None:
        """Create a directory."""

    @abc.abstractmethod
    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""

    @abc.abstractmethod
    def link(self, oldpath: str, newpath: str) -> None:
        """Create a hard link ``newpath`` to the file at ``oldpath``."""

    @abc.abstractmethod
    def unlink(self, path: str) -> None:
        """Remove a directory entry (and the file when nlink drops to 0)."""

    @abc.abstractmethod
    def rename(self, oldpath: str, newpath: str) -> None:
        """Atomically rename ``oldpath`` to ``newpath`` (POSIX semantics)."""

    @abc.abstractmethod
    def truncate(self, path: str, length: int) -> None:
        """Set the file size, zero-filling on extension."""

    @abc.abstractmethod
    def fallocate(self, path: str, offset: int, length: int) -> None:
        """Preallocate (and logically zero) the byte range, growing the file."""

    @abc.abstractmethod
    def write(self, path: str, offset: int, data: bytes) -> int:
        """pwrite: store ``data`` at ``offset``, returning the byte count."""

    @abc.abstractmethod
    def read(self, path: str, offset: int, length: int) -> bytes:
        """pread: return up to ``length`` bytes from ``offset``."""

    @abc.abstractmethod
    def stat(self, path: str) -> Stat:
        """Return the metadata of the object at ``path``."""

    @abc.abstractmethod
    def readdir(self, path: str) -> List[str]:
        """Return the sorted entry names of the directory at ``path``."""

    # ------------------------------------------------------------------
    # Persistence-related operations
    # ------------------------------------------------------------------
    def fsync(self, path: str) -> None:
        """Flush the object at ``path``.

        Strong-guarantee file systems are already synchronous, so the default
        implementation only validates the path.
        """
        self.stat(path)

    def fdatasync(self, path: str) -> None:
        """Flush the data of the object at ``path`` (default: as fsync)."""
        self.fsync(path)

    def sync(self) -> None:
        """Flush the whole file system (default: no-op for synchronous FSs)."""

    # ------------------------------------------------------------------
    # Extended attributes (only ext4-DAX/XFS-DAX, paper section 4.1)
    # ------------------------------------------------------------------
    def setxattr(self, path: str, name: str, value: bytes) -> None:
        raise EINVAL(f"{self.name} does not support xattrs")

    def removexattr(self, path: str, name: str) -> None:
        raise EINVAL(f"{self.name} does not support xattrs")

    def getxattr(self, path: str, name: str) -> bytes:
        raise EINVAL(f"{self.name} does not support xattrs")

    def listxattr(self, path: str) -> List[str]:
        return []

    # ------------------------------------------------------------------
    # Conveniences shared by every implementation
    # ------------------------------------------------------------------
    def exists(self, path: str) -> bool:
        """True when ``path`` resolves to an object."""
        try:
            self.stat(path)
            return True
        except ENOENT:
            return False

    def remove(self, path: str) -> None:
        """POSIX ``remove``: unlink files, rmdir directories."""
        if self.stat(path).ftype is FileType.DIRECTORY:
            self.rmdir(path)
        else:
            self.unlink(path)

    def append(self, path: str, data: bytes) -> int:
        """O_APPEND-style write at the current end of file."""
        return self.write(path, self.stat(path).size, data)

    def read_all(self, path: str) -> bytes:
        """Read the complete contents of a regular file."""
        return self.read(path, 0, self.stat(path).size)

    def cov(self, point: str) -> None:
        """Record a coverage point (no-op unless a fuzzer attached a map)."""
        if self.coverage is not None:
            self.coverage.hit(f"{self.name}.{point}")

    # ------------------------------------------------------------------
    # Whole-tree observation (used by the oracle and the checker)
    # ------------------------------------------------------------------
    def walk(self) -> Dict[str, "FileObservation"]:
        """Observe every object in the tree, keyed by path."""
        out: Dict[str, FileObservation] = {}
        self._walk_into("/", out)
        return out

    def _walk_into(self, path: str, out: Dict[str, "FileObservation"]) -> None:
        st = self.stat(path)
        if st.ftype is FileType.DIRECTORY:
            entries = self.readdir(path)
            out[path] = FileObservation.for_dir(st, entries)
            for entry in entries:
                child = path.rstrip("/") + "/" + entry
                self._walk_into(child, out)
        else:
            out[path] = FileObservation.for_file(st, self.read(path, 0, st.size))


class FileObservation:
    """Checker-comparable view of one file or directory.

    For regular files: stat fields plus content.  For directories: stat
    fields plus the entry list — exactly what the paper's checker compares
    (section 3.3).
    """

    __slots__ = ("ftype", "size", "nlink", "mode", "content", "entries")

    def __init__(
        self,
        ftype: FileType,
        size: int,
        nlink: int,
        mode: int,
        content: Optional[bytes],
        entries: Optional[tuple],
    ) -> None:
        self.ftype = ftype
        self.size = size
        self.nlink = nlink
        self.mode = mode
        self.content = content
        self.entries = entries

    @classmethod
    def for_file(cls, st: Stat, content: bytes) -> "FileObservation":
        return cls(st.ftype, st.size, st.nlink, st.mode, content, None)

    @classmethod
    def for_dir(cls, st: Stat, entries: List[str]) -> "FileObservation":
        return cls(st.ftype, st.size, st.nlink, st.mode, None, tuple(sorted(entries)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FileObservation):
            return NotImplemented
        return (
            self.ftype == other.ftype
            and self.size == other.size
            and self.nlink == other.nlink
            and self.mode == other.mode
            and self.content == other.content
            and self.entries == other.entries
        )

    def __hash__(self) -> int:
        return hash((self.ftype, self.size, self.nlink, self.mode, self.content, self.entries))

    def matches_metadata(self, other: "FileObservation") -> bool:
        """Compare only stat-visible metadata (used for non-atomic writes)."""
        return (
            self.ftype == other.ftype
            and self.nlink == other.nlink
            and self.mode == other.mode
        )

    def describe(self) -> str:
        if self.ftype is FileType.DIRECTORY:
            return f"dir nlink={self.nlink} entries={list(self.entries or ())}"
        content = self.content or b""
        preview = content[:32].hex()
        return f"file size={self.size} nlink={self.nlink} content[:32]={preview}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FileObservation {self.describe()}>"
