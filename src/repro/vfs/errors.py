"""POSIX-style error codes raised by the simulated file systems."""

from __future__ import annotations


class FsError(Exception):
    """A POSIX error returned by a file-system operation.

    Carries an ``errno`` name so tests and the consistency checker can match
    on the specific failure, exactly as a C caller would check ``errno``.
    """

    errno_name = "EIO"

    def __init__(self, message: str = "") -> None:
        super().__init__(f"{self.errno_name}: {message}" if message else self.errno_name)
        self.message = message


class ENOENT(FsError):
    """No such file or directory."""

    errno_name = "ENOENT"


class EEXIST(FsError):
    """File exists."""

    errno_name = "EEXIST"


class ENOTDIR(FsError):
    """Not a directory."""

    errno_name = "ENOTDIR"


class EISDIR(FsError):
    """Is a directory."""

    errno_name = "EISDIR"


class ENOTEMPTY(FsError):
    """Directory not empty."""

    errno_name = "ENOTEMPTY"


class EINVAL(FsError):
    """Invalid argument."""

    errno_name = "EINVAL"


class ENOSPC(FsError):
    """No space left on device."""

    errno_name = "ENOSPC"


class EBADF(FsError):
    """Bad file descriptor."""

    errno_name = "EBADF"


class EMLINK(FsError):
    """Too many links."""

    errno_name = "EMLINK"


class EFBIG(FsError):
    """File too large."""

    errno_name = "EFBIG"


class EXDEV(FsError):
    """Cross-device link (unused placeholder for API completeness)."""

    errno_name = "EXDEV"
