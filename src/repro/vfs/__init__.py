"""POSIX-ish virtual file system interface shared by all PM file systems."""

from repro.vfs.errors import (
    EEXIST,
    EINVAL,
    EISDIR,
    ENOENT,
    ENOSPC,
    ENOTDIR,
    ENOTEMPTY,
    EBADF,
    FsError,
)
from repro.vfs.types import FileType, OpenFlags, Stat
from repro.vfs.interface import FileSystem, MountError
from repro.vfs.path import basename, dirname, normalize, split_path

__all__ = [
    "FsError",
    "ENOENT",
    "EEXIST",
    "ENOTDIR",
    "EISDIR",
    "ENOTEMPTY",
    "EINVAL",
    "ENOSPC",
    "EBADF",
    "FileType",
    "OpenFlags",
    "Stat",
    "FileSystem",
    "MountError",
    "normalize",
    "split_path",
    "dirname",
    "basename",
]
