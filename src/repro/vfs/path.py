"""Path handling helpers shared by all file systems.

Paths are absolute, ``/``-separated, with no ``.``/``..`` resolution (the
workload generators never produce those, matching ACE's path model).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.vfs.errors import EINVAL


def normalize(path: str) -> str:
    """Normalize a path to a canonical absolute form.

    Collapses duplicate slashes and strips a trailing slash (except for the
    root itself).  Raises :class:`EINVAL` for relative or empty paths.
    """
    if not path or not path.startswith("/"):
        raise EINVAL(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise EINVAL(f"path may not contain {part!r}: {path!r}")
    return "/" + "/".join(parts)


def split_path(path: str) -> List[str]:
    """Split a normalized path into its components (root → ``[]``)."""
    norm = normalize(path)
    if norm == "/":
        return []
    return norm[1:].split("/")


def dirname(path: str) -> str:
    """Parent directory of ``path`` (the root is its own parent)."""
    parts = split_path(path)
    if not parts:
        return "/"
    return "/" + "/".join(parts[:-1])


def basename(path: str) -> str:
    """Final component of ``path``; empty string for the root."""
    parts = split_path(path)
    return parts[-1] if parts else ""


def split_parent(path: str) -> Tuple[str, str]:
    """Return ``(dirname, basename)`` in one pass."""
    parts = split_path(path)
    if not parts:
        raise EINVAL("operation on root directory")
    return "/" + "/".join(parts[:-1]), parts[-1]


def is_ancestor(a: str, b: str) -> bool:
    """True when ``a`` is ``b`` or an ancestor directory of ``b``."""
    na, nb = normalize(a), normalize(b)
    if na == "/":
        return True
    return nb == na or nb.startswith(na + "/")
