"""Common value types for the VFS interface."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FileType(enum.Enum):
    """Kind of a file-system object."""

    REGULAR = "reg"
    DIRECTORY = "dir"


class OpenFlags(enum.IntFlag):
    """Subset of POSIX open(2) flags the simulated file systems honour."""

    O_RDONLY = 0x0
    O_WRONLY = 0x1
    O_RDWR = 0x2
    O_CREAT = 0x40
    O_EXCL = 0x80
    O_TRUNC = 0x200
    O_APPEND = 0x400


@dataclass(frozen=True)
class Stat:
    """Result of ``stat``: the metadata the consistency checker compares.

    The paper's checker compares "whether metadata provided by stat differs"
    between crash state and oracle (section 3.3); we expose the fields that
    are meaningful in the simulation.
    """

    ino: int
    ftype: FileType
    size: int
    nlink: int
    mode: int

    def describe(self) -> str:
        return (
            f"ino={self.ino} type={self.ftype.value} size={self.size} "
            f"nlink={self.nlink} mode={self.mode:o}"
        )
