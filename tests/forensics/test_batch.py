"""Batch forensics pipeline: ``explain --all``, the cross-report cache,
workload ddmin, and provenance-guided triage.

The acceptance properties of the pipeline:

* explaining a campaign's ``bugs.json`` with K reports sharing one repro
  context performs exactly 1 session rebuild (session cache-hit counter is
  K-1);
* provenance-guided triage merges a same-culprit/different-syscall pair
  into one cluster while keeping different-culprit reports apart;
* ``explain --all`` output (forensics.md + cluster assignment) is
  byte-identical between a ``--workers 1`` and a ``--workers 4`` campaign
  over the same spec.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.analysis.reporting import CampaignSummary, render_markdown
from repro.campaign import CampaignEngine, CampaignSpec, EngineConfig
from repro.core.harness import Chipmunk
from repro.core.report import BugReport, Consequence
from repro.core.triage import layout_map_for, provenance_sites, triage_reports
from repro.forensics.batch import explain_all, explain_campaign
from repro.forensics.cache import ForensicsCache
from repro.forensics.explain import explain_report
from repro.forensics.minimize import minimize_dropped_set, minimize_workload
from repro.forensics.provenance import CrashProvenance, ProvEntry
from repro.forensics.timeline import render_timeline
from repro.obs import Telemetry
from repro.workloads import ace


@pytest.fixture(scope="module")
def nova_seq2_reports():
    """Every provenance-carrying report of one nova seq-2 workload — K
    reports sharing a single reproduction context."""
    w = ace.workload_at(2, 9)  # creat('/foo'); write('/bar', 0, 66, 1024)
    result = Chipmunk("nova").test_workload(w.core, setup=w.setup)
    reports = [r for r in result.reports if r.provenance is not None]
    assert len(reports) >= 2, "fixture needs several reports in one context"
    return reports


@pytest.fixture(scope="module")
def nova_campaign_dir(tmp_path_factory, nova_seq2_reports):
    d = tmp_path_factory.mktemp("campaign")
    (d / "bugs.json").write_text(json.dumps(
        {"reports": [r.to_dict() for r in nova_seq2_reports]}, sort_keys=True
    ))
    return str(d)


# ----------------------------------------------------------------------
# Minimization cache
# ----------------------------------------------------------------------
class TestMinimizationCache:
    def test_k_reports_share_one_rebuild(self, nova_seq2_reports):
        batch = explain_all(nova_seq2_reports, minimize=False)
        k = len(nova_seq2_reports)
        stats = batch.cache.stats()
        assert stats["recordings"] == 1
        assert stats["session_misses"] == 1
        assert stats["session_hits"] == k - 1

    def test_sessions_stay_crash_point_specific(self, nova_seq2_reports):
        # A cache hit must never leak another report's crash point: each
        # returned session reflects its own provenance exactly.
        cache = ForensicsCache()
        for report in nova_seq2_reports:
            session = cache.session(report.provenance)
            assert session.prov is report.provenance
            assert session.region.positions_of(session.original_units) == \
                report.provenance.replayed_entries

    def test_verdict_cache_shares_ddmin_replays(self, nova_seq2_reports):
        report = next(
            r for r in nova_seq2_reports if r.provenance.dropped()
        )
        target = report.consequence.name
        cache = ForensicsCache()
        session = cache.session(report.provenance)
        first = minimize_dropped_set(session, target, cache=cache)
        misses = cache.verdict_counters.misses.value
        assert misses > 0
        # The same minimization again costs zero new checker replays.
        second = minimize_dropped_set(session, target, cache=cache)
        assert second.minimal_dropped == first.minimal_dropped
        assert cache.verdict_counters.misses.value == misses
        assert cache.verdict_counters.hits.value >= misses

    def test_cached_minimization_matches_uncached(self, nova_seq2_reports):
        report = next(
            r for r in nova_seq2_reports if r.provenance.dropped()
        )
        target = report.consequence.name
        cache = ForensicsCache()
        cached = minimize_dropped_set(
            cache.session(report.provenance), target, cache=cache
        )
        from repro.forensics.replay import rebuild_session

        plain = minimize_dropped_set(rebuild_session(report.provenance), target)
        assert cached.minimal_dropped == plain.minimal_dropped
        assert cached.culprit_seqs == plain.culprit_seqs

    def test_counters_thread_into_metrics_registry(self, nova_seq2_reports):
        telemetry = Telemetry()
        explain_all(nova_seq2_reports, minimize=False, telemetry=telemetry)
        names = {
            r["name"]: r["value"]
            for r in telemetry.metrics.snapshot()
            if r["kind"] == "counter"
        }
        k = len(nova_seq2_reports)
        assert names["forensics.cache.session.misses"] == 1
        assert names["forensics.cache.session.hits"] == k - 1


# ----------------------------------------------------------------------
# Workload minimization (ddmin over the op sequence)
# ----------------------------------------------------------------------
class TestWorkloadMinimization:
    def test_shrinks_to_essential_ops(self, nova_seq2_reports):
        report = nova_seq2_reports[0]
        result = minimize_workload(
            report.provenance, report.consequence.name
        )
        assert result.reproduced
        assert 1 <= len(result.minimal_ops) <= len(result.original_ops)
        assert result.minimal_indices == tuple(sorted(result.minimal_indices))
        assert result.n_runs >= 2

    def test_minimal_subsequence_actually_reproduces(self, nova_seq2_reports):
        from repro.forensics.provenance import ops_from_tuples

        report = nova_seq2_reports[0]
        prov = report.provenance
        result = minimize_workload(prov, report.consequence.name)
        workload = ops_from_tuples(prov.workload)
        minimal = [workload[i] for i in result.minimal_indices]
        rerun = Chipmunk(prov.fs_name).test_workload(
            minimal, setup=ops_from_tuples(prov.setup)
        )
        assert any(
            r.consequence.name == report.consequence.name
            for r in rerun.reports
        )

    def test_timeline_header_renders_minimal_workload(self, nova_seq2_reports):
        report = nova_seq2_reports[0]
        prov = report.provenance
        result = minimize_workload(prov, report.consequence.name)
        plain = render_timeline(prov)
        with_min = render_timeline(prov, workload_min=result)
        # The header line is added; the default rendering is untouched
        # (golden compatibility).
        assert result.headline() in with_min
        assert result.headline() not in plain
        assert with_min.splitlines()[3:] == plain.splitlines()[2:]

    def test_explain_report_carries_workload_minimization(
        self, nova_seq2_reports
    ):
        report = nova_seq2_reports[0]
        explanation = explain_report(report, minimize_ops=True)
        wm = explanation.workload_minimization
        assert wm is not None and wm.reproduced
        assert wm.headline() in explanation.text


# ----------------------------------------------------------------------
# Provenance-guided triage
# ----------------------------------------------------------------------
def _seeded_report(syscall_name, func, addr, detail):
    """A synthetic provenance-carrying report with one dropped culprit."""
    entries = (
        ProvEntry(seq=0, kind="store", status="dropped", epoch=0,
                  func=func, addr=addr, length=8),
        ProvEntry(seq=1, kind="fence", status="fence", epoch=0,
                  func="nova_fence"),
    )
    prov = CrashProvenance(
        fs_name="nova", fence_index=0, log_pos=2, mid_syscall=True,
        syscall=0, syscall_name=syscall_name, after_syscall=-1,
        state_kind="subset", replayed_entries=(), entries=entries,
        workload=((syscall_name, ("/foo",)),),
    )
    return BugReport(
        fs_name="nova", consequence=Consequence.ATOMICITY,
        workload_desc=f"{syscall_name}('/foo')",
        crash_desc=f"crash during {syscall_name}",
        detail=detail, syscall_name=syscall_name, mid_syscall=True,
        provenance=prov,
    )


class TestProvenanceTriage:
    @pytest.fixture(scope="class")
    def seeded(self):
        layout = layout_map_for("nova", 256 * 1024)
        offsets = {r.name: r.region.offset for r in layout.regions}
        same_a = _seeded_report(
            "creat", "nova_memcpy_nt", offsets["journal"] + 8,
            "dentry for /foo missing from the parent directory log",
        )
        same_b = _seeded_report(
            "unlink", "nova_memcpy_nt", offsets["journal"] + 24,
            "stale link count persisted for the unlinked inode",
        )
        other = _seeded_report(
            "creat", "nova_memcpy_nt", offsets["inode_table"] + 8,
            "root inode log head points at an unwritten page",
        )
        return same_a, same_b, other

    def test_sites_key_on_func_and_region(self, seeded):
        same_a, same_b, other = seeded
        assert provenance_sites(same_a) == provenance_sites(same_b)
        assert provenance_sites(same_a) != provenance_sites(other)
        ((func, region),) = provenance_sites(same_a)
        assert func == "nova_memcpy_nt" and region == "journal"

    def test_merges_same_culprit_across_syscalls(self, seeded):
        same_a, same_b, other = seeded
        # The lexical procedure keeps all three apart (the report text
        # differs); the provenance mode merges the same-culprit pair and
        # keeps the different-culprit report separate.
        assert len(triage_reports([same_a, same_b, other])) == 3
        clusters = triage_reports([same_a, same_b, other], provenance=True)
        assert len(clusters) == 2
        assert clusters[0].members == [same_a, same_b]
        assert clusters[1].members == [other]

    def test_report_without_provenance_falls_back_to_lexical(self, seeded):
        same_a, _, _ = seeded
        bare = BugReport(
            fs_name="nova", consequence=Consequence.ATOMICITY,
            workload_desc=same_a.workload_desc,
            crash_desc=same_a.crash_desc, detail=same_a.detail,
            syscall_name=same_a.syscall_name, mid_syscall=True,
        )
        clusters = triage_reports([same_a, bare], provenance=True)
        # Identical text, but one keyed by sites and one lexically — the
        # two populations never cross-contaminate.
        assert len(clusters) == 2
        assert clusters[0].prov_key is not None
        assert clusters[1].prov_key is None

    def test_campaign_summary_defaults_to_provenance_triage(self, seeded):
        same_a, same_b, other = seeded
        summary = CampaignSummary(fs_name="nova", generator="ace")
        assert summary.triage.provenance
        summary.triage.add_all([same_a, same_b, other])
        summary.first_seen = {0: 1, 1: 1}
        text = render_markdown(summary)
        assert "Clustered by culprit sites: nova_memcpy_nt@journal" in text


# ----------------------------------------------------------------------
# explain --all (batch driver + CLI)
# ----------------------------------------------------------------------
class TestExplainAll:
    def test_batch_document_shape(self, nova_seq2_reports):
        batch = explain_all(nova_seq2_reports, minimize=True)
        assert batch.reproduced == len(batch.explanations)
        assert "# Batch forensics" in batch.text
        assert "## Cluster assignment (provenance-guided)" in batch.text
        assert "## Report 0:" in batch.text
        assert "ordering timeline: nova" in batch.text
        assert "## Cache" in batch.text
        assert "forensics.cache.session:" in batch.text

    def test_cli_writes_forensics_md(self, nova_campaign_dir, capsys):
        code = main(["explain", nova_campaign_dir, "--all", "--minimize"])
        out = capsys.readouterr().out
        assert code == 0
        assert "report(s) explained" in out
        md_path = os.path.join(nova_campaign_dir, "forensics.md")
        assert os.path.exists(md_path)
        with open(md_path, encoding="utf-8") as fh:
            md = fh.read()
        assert "# Batch forensics: bugs.json" in md
        assert "minimal culprit set" in md

    def test_cli_directory_without_all_rejected(self, nova_campaign_dir,
                                                capsys):
        assert main(["explain", nova_campaign_dir]) == 2
        assert "--all" in capsys.readouterr().err

    def test_cli_missing_bugs_json(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path), "--all"]) == 2
        assert "no bugs.json" in capsys.readouterr().err

    def test_skips_reports_without_provenance(self, nova_seq2_reports):
        bare = BugReport(
            fs_name="nova", consequence=Consequence.ATOMICITY,
            workload_desc="w", crash_desc="c", detail="d",
        )
        batch = explain_all([bare] + nova_seq2_reports, minimize=False)
        assert batch.skipped == [0]
        assert len(batch.explanations) == len(nova_seq2_reports)
        assert "skipped (no provenance)" in batch.text


# ----------------------------------------------------------------------
# Determinism: --workers 1 == --workers 4
# ----------------------------------------------------------------------
class TestBatchDeterminism:
    N = 8

    def _campaign_forensics(self, out_dir, workers):
        spec = CampaignSpec(fs="nova", seq=1, max_workloads=self.N)
        engine = CampaignEngine(
            spec, str(out_dir),
            EngineConfig(workers=workers, item_timeout=60.0),
        )
        engine.run()
        batch = explain_campaign(str(out_dir), minimize=True)
        assignment = [
            (c.exemplar.consequence.name, c.count, sorted(c.sites))
            for c in batch.clusters
        ]
        return batch.text, assignment

    def test_workers_1_and_4_explain_identically(self, tmp_path):
        text_1, clusters_1 = self._campaign_forensics(tmp_path / "w1", 1)
        text_4, clusters_4 = self._campaign_forensics(tmp_path / "w4", 4)
        assert clusters_1 == clusters_4
        assert text_1 == text_4
        assert (tmp_path / "w1" / "forensics.md").read_bytes() == \
            (tmp_path / "w4" / "forensics.md").read_bytes()
