"""Timeline rendering, Chrome export, and image diffs — golden-pinned.

The renderers must be byte-stable: recording is deterministic, so the same
workload always produces the same lineage, and the goldens under
``tests/forensics/golden/`` pin the exact output.  Regenerate with::

    REGEN_GOLDENS=1 python -m pytest tests/forensics/test_timeline.py
"""

import json
import os

import pytest

from repro.core.harness import Chipmunk
from repro.forensics.timeline import (
    diff_ranges,
    provenance_to_chrome,
    render_image_diff,
    render_timeline,
)
from repro.fs.common.layout import LayoutMap, NamedRegion, Region
from repro.workloads.ops import Op

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

SEQ2 = [Op("creat", ("/foo",)), Op("creat", ("/foo",))]


def assert_matches_golden(name: str, text: str) -> None:
    path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("REGEN_GOLDENS"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    with open(path, "r", encoding="utf-8") as fh:
        golden = fh.read()
    assert text == golden, f"{name} drifted from its golden; see module docstring"


@pytest.fixture(scope="module")
def nova_report():
    result = Chipmunk("nova").test_workload(SEQ2)
    return next(r for r in result.reports if r.provenance.dropped())


class TestTimelineGolden:
    def test_timeline_matches_golden(self, nova_report):
        prov = nova_report.provenance
        culprits = [e.seq for e in prov.dropped()][:1]
        from repro.fs.nova.fs import NovaFS
        from repro.pm.device import PMDevice

        dev = PMDevice(prov.device_size)
        NovaFS.mkfs(dev)
        layout = NovaFS.layout_map(dev.snapshot())
        text = render_timeline(prov, layout, culprits)
        assert_matches_golden("timeline_nova_seq2.txt", text + "\n")

    def test_timeline_is_deterministic(self, nova_report):
        prov = nova_report.provenance
        assert render_timeline(prov) == render_timeline(prov)

    def test_culprit_stars_and_legend(self, nova_report):
        prov = nova_report.provenance
        culprit = prov.dropped()[0].seq
        text = render_timeline(prov, culprit_seqs=[culprit])
        starred = [l for l in text.splitlines() if f"seq {culprit:>4} *" in l]
        assert len(starred) == 1
        assert "minimal culprit store set" in text

    def test_crash_region_marked(self, nova_report):
        text = render_timeline(nova_report.provenance)
        assert "<<< crash region >>>" in text
        assert "crash point: log position" in text


class TestForensicsSectionGolden:
    def test_report_section_matches_golden(self, nova_report):
        from repro.analysis.reporting import _forensics_section

        text = "\n".join(_forensics_section(nova_report, 1))
        assert "**Forensics**" in text
        assert "repro explain" in text
        assert_matches_golden("forensics_section_nova_seq2.md", text + "\n")


class TestChromeExport:
    def test_document_shape(self, nova_report):
        doc = provenance_to_chrome(nova_report.provenance)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "i"}

    def test_crash_marker_and_syscall_span(self, nova_report):
        doc = provenance_to_chrome(nova_report.provenance)
        names = [e["name"] for e in doc["traceEvents"]]
        assert "CRASH" in names
        assert any(n.startswith("syscall #0") for n in names)

    def test_culprit_flag_lands_in_args(self, nova_report):
        prov = nova_report.provenance
        culprit = prov.dropped()[0].seq
        doc = provenance_to_chrome(prov, [culprit])
        flagged = [
            e for e in doc["traceEvents"]
            if e.get("args", {}).get("culprit")
        ]
        assert len(flagged) == 1
        assert flagged[0]["args"]["seq"] == culprit

    def test_json_serializable(self, nova_report):
        json.dumps(provenance_to_chrome(nova_report.provenance))


class TestDiffRanges:
    def test_equal_images(self):
        assert diff_ranges(b"abcd", b"abcd") == []

    def test_single_range(self):
        assert diff_ranges(b"aXYd", b"abcd") == [(1, 2)]

    def test_two_ranges(self):
        assert diff_ranges(b"Xbcd" + b"eY", b"abcd" + b"ez") == [(0, 1), (5, 1)]

    def test_length_mismatch_is_trailing_range(self):
        assert diff_ranges(b"ab", b"abcd") == [(2, 2)]


class TestImageDiffRender:
    LAYOUT = LayoutMap((
        NamedRegion("superblock", Region(0, 8)),
        NamedRegion("inode_table", Region(8, 16), slot_size=4),
    ))

    def test_no_difference(self):
        out = render_image_diff(b"ab", b"ab", self.LAYOUT)
        assert "0 range(s), 0 byte(s)" in out

    def test_annotated_range(self):
        a = bytearray(24)
        b = bytearray(24)
        b[10] = 0xFF
        out = render_image_diff(bytes(a), bytes(b), self.LAYOUT, label="oracle")
        assert "vs oracle" in out
        assert "inode_table[0]+0x2" in out
        assert "00 -> ff" in out

    def test_cap_elides(self):
        a = b"\xff\x00" * 20  # 20 separate one-byte differing ranges
        b = bytes(40)
        out = render_image_diff(a, b, self.LAYOUT, max_ranges=2)
        assert "18 more range(s) elided" in out
