"""Property tests for the forensics cache keys.

Two invariants keep the cross-report cache sound:

* the ddmin **verdict** key is a pure function of the persisted *set* —
  stable under any reordering (or duplication) of an equal store list, so
  ddmin chunks, complements, and re-splits presenting the same subset share
  one checker replay;
* the **session** key separates reproduction contexts — any differing
  context field yields a different key, so the cache can never hand a
  session built from one workload/fs/bug-set to a report from another.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.forensics.cache as cache_mod
from repro.forensics.cache import ForensicsCache, context_key, subset_key
from repro.forensics.provenance import CrashProvenance


def make_prov(**overrides):
    fields = dict(
        fs_name="nova",
        fence_index=1,
        log_pos=6,
        mid_syscall=False,
        syscall=None,
        syscall_name=None,
        after_syscall=0,
        state_kind="subset",
        replayed_entries=(0,),
        entries=(),
        workload=(("creat", ("/foo",)),),
        setup=(),
        bug_ids=(5,),
        cap=2,
        coalesce_threshold=256,
        device_size=256 * 1024,
        crash_points="fence",
        usability_check=True,
    )
    fields.update(overrides)
    return CrashProvenance(**fields)


#: Context-field perturbations: each must change the context key.
CONTEXT_VARIANTS = [
    {"fs_name": "pmfs"},
    {"workload": (("creat", ("/bar",)),)},
    {"workload": (("creat", ("/foo",)), ("unlink", ("/foo",)))},
    {"setup": (("mkdir", ("/A",)),)},
    {"bug_ids": ()},
    {"bug_ids": (5, 7)},
    {"cap": 3},
    {"cap": None},
    {"coalesce_threshold": 64},
    {"device_size": 512 * 1024},
    {"crash_points": "syscall"},
    {"usability_check": False},
]

#: Crash-point-only perturbations: the context key must NOT change (that is
#: the whole point of sharing recordings across crash points).
CRASH_POINT_VARIANTS = [
    {"log_pos": 9},
    {"fence_index": 2},
    {"replayed_entries": (0, 1)},
    {"mid_syscall": True, "syscall": 1, "syscall_name": "creat"},
    {"state_kind": "post"},
]


class TestSubsetKey:
    @given(
        positions=st.lists(st.integers(0, 63), max_size=16, unique=True),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=100)
    def test_stable_under_reordering(self, positions, seed):
        shuffled = positions[:]
        random.Random(seed).shuffle(shuffled)
        prov = make_prov()
        assert subset_key(prov, shuffled) == subset_key(prov, positions)

    @given(positions=st.lists(st.integers(0, 63), min_size=1, max_size=16,
                              unique=True))
    @settings(max_examples=50)
    def test_stable_under_duplication(self, positions):
        prov = make_prov()
        assert subset_key(prov, positions + positions) == \
            subset_key(prov, positions)

    @given(
        a=st.sets(st.integers(0, 15), max_size=8),
        b=st.sets(st.integers(0, 15), max_size=8),
    )
    @settings(max_examples=100)
    def test_distinct_sets_get_distinct_keys(self, a, b):
        prov = make_prov()
        keys_equal = subset_key(prov, sorted(a)) == subset_key(prov, sorted(b))
        assert keys_equal == (a == b)

    def test_crash_point_is_part_of_the_key(self):
        prov = make_prov()
        other = make_prov(log_pos=9)
        assert subset_key(prov, (0, 1)) != subset_key(other, (0, 1))


class TestContextKey:
    @pytest.mark.parametrize("variant", CONTEXT_VARIANTS,
                             ids=lambda v: next(iter(v)))
    def test_any_context_field_separates(self, variant):
        assert context_key(make_prov()) != context_key(make_prov(**variant))

    @pytest.mark.parametrize("variant", CRASH_POINT_VARIANTS,
                             ids=lambda v: next(iter(v)))
    def test_crash_point_fields_share_the_key(self, variant):
        assert context_key(make_prov()) == context_key(make_prov(**variant))

    def test_bug_id_order_is_canonical(self):
        assert context_key(make_prov(bug_ids=(7, 5))) == \
            context_key(make_prov(bug_ids=(5, 7)))


class _FakeRecording:
    def __init__(self, prov):
        self.prov = prov


class TestSessionCacheIsolation:
    """The session cache never returns a session for a mismatched context.

    The expensive rebuild is stubbed out; what is under test is purely the
    cache's keying discipline.
    """

    def _patched_cache(self):
        cache = ForensicsCache()
        originals = (
            cache_mod.rebuild_recording,
            cache_mod.session_from_recording,
        )
        cache_mod.rebuild_recording = (
            lambda prov, telemetry=None: _FakeRecording(prov)
        )
        cache_mod.session_from_recording = (
            lambda prov, recording: (prov, recording)
        )
        return cache, originals

    def _restore(self, originals):
        cache_mod.rebuild_recording, cache_mod.session_from_recording = \
            originals

    @given(
        base_index=st.integers(0, len(CONTEXT_VARIANTS) - 1),
        other_index=st.integers(0, len(CONTEXT_VARIANTS) - 1),
    )
    @settings(max_examples=60)
    def test_recordings_shared_iff_contexts_match(self, base_index,
                                                  other_index):
        prov_a = make_prov(**CONTEXT_VARIANTS[base_index])
        prov_b = make_prov(**CONTEXT_VARIANTS[other_index])
        cache, originals = self._patched_cache()
        try:
            _, rec_a = cache.session(prov_a)
            _, rec_b = cache.session(prov_b)
        finally:
            self._restore(originals)
        same_context = context_key(prov_a) == context_key(prov_b)
        assert (rec_a is rec_b) == same_context
        # A shared recording is only ever one that was rebuilt from an
        # equal-context provenance.
        assert context_key(rec_b.prov) == context_key(prov_b)

    def test_different_crash_points_share_one_recording(self):
        prov_a = make_prov(log_pos=6)
        prov_b = make_prov(log_pos=9, fence_index=2)
        cache, originals = self._patched_cache()
        try:
            returned_a, rec_a = cache.session(prov_a)
            returned_b, rec_b = cache.session(prov_b)
        finally:
            self._restore(originals)
        assert rec_a is rec_b
        # ...but each session is derived from its own provenance.
        assert returned_a is prov_a
        assert returned_b is prov_b
        assert cache.session_counters.hits.value == 1
        assert cache.session_counters.misses.value == 1
