"""``repro explain`` end-to-end: saved report -> timeline with culprits."""

import json

import pytest

from repro.__main__ import main
from repro.core.harness import Chipmunk
from repro.core.report import BugReport
from repro.forensics.explain import explain_report, load_report_dicts
from repro.workloads import ace


@pytest.fixture(scope="module")
def saved_nova_seq2_report(tmp_path_factory):
    """A NOVA seq-2 bug report with a non-trivial culprit set, saved as
    ``repro test --save-reports`` would write it."""
    w = ace.workload_at(2, 9)  # creat('/foo'); write('/bar', 0, 66, 1024)
    result = Chipmunk("nova").test_workload(w.core, setup=w.setup)
    report = next(
        r for r in result.reports
        if r.consequence.name == "UNMOUNTABLE" and len(r.provenance.dropped()) >= 2
    )
    path = tmp_path_factory.mktemp("reports") / "bugs.json"
    path.write_text(json.dumps({"reports": [report.to_dict()]}))
    return str(path)


class TestLoadReportDicts:
    def test_reports_document(self, tmp_path):
        p = tmp_path / "r.json"
        p.write_text('{"reports": [{"a": 1}, {"a": 2}]}')
        assert len(load_report_dicts(str(p))) == 2

    def test_bare_list_and_single_object(self, tmp_path):
        p = tmp_path / "r.json"
        p.write_text('[{"a": 1}]')
        assert len(load_report_dicts(str(p))) == 1
        p.write_text('{"fs_name": "nova"}')
        assert len(load_report_dicts(str(p))) == 1

    def test_rejects_scalars(self, tmp_path):
        p = tmp_path / "r.json"
        p.write_text('42')
        with pytest.raises(ValueError):
            load_report_dicts(str(p))


class TestExplainEndToEnd:
    def test_cli_prints_timeline_with_culprits(self, saved_nova_seq2_report,
                                               capsys, tmp_path):
        chrome = tmp_path / "bug.trace.json"
        code = main([
            "explain", saved_nova_seq2_report,
            "--minimize", "--chrome", str(chrome),
        ])
        out = capsys.readouterr().out
        assert code == 0
        # The fence-epoch ordering timeline...
        assert "ordering timeline: nova" in out
        assert "<<< crash region >>>" in out
        assert "epoch" in out
        # ...with the minimal culprit store set highlighted.
        assert "minimal culprit set: 1 of 2 dropped unit(s)" in out
        assert "* = minimal culprit store set" in out
        # Offline replay confirmed the saved consequence.
        assert "offline replay reproduces UNMOUNTABLE" in out
        # Layout-annotated image diff against the fully-persisted image.
        assert "image diff vs image with all in-flight stores persisted" in out
        # The Chrome trace landed on disk and parses.
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_api_reports_minimization(self, saved_nova_seq2_report):
        report = BugReport.from_dict(
            load_report_dicts(saved_nova_seq2_report)[0]
        )
        explanation = explain_report(report, minimize=True)
        assert explanation.reproduced
        m = explanation.minimization
        assert m is not None and m.reproduced
        assert set(m.minimal_dropped) < set(m.original_dropped)

    def test_without_minimize_no_stars(self, saved_nova_seq2_report, capsys):
        assert main(["explain", saved_nova_seq2_report]) == 0
        out = capsys.readouterr().out
        assert "ordering timeline" in out
        assert "* = minimal culprit store set" not in out

    def test_index_out_of_range(self, saved_nova_seq2_report, capsys):
        assert main(["explain", saved_nova_seq2_report, "--index", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["explain", "/nonexistent/bugs.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_report_without_provenance_rejected(self, tmp_path, capsys):
        report = BugReport.from_dict({
            "fs_name": "nova", "consequence": "ATOMICITY",
            "workload_desc": "w", "crash_desc": "c", "detail": "d",
        })
        p = tmp_path / "bare.json"
        p.write_text(json.dumps(report.to_dict()))
        assert main(["explain", str(p)]) == 2
        assert "no provenance" in capsys.readouterr().err
