"""Forensics regression: memoized campaigns feed ``repro explain`` unchanged.

Check memoization and delta images alter how crash states are built and
checked, not what the saved provenance describes — so a report produced by
a memoized run, serialized through the campaign's ``bugs.json`` shape and
rebuilt offline, must render the exact golden timeline the pre-memoization
pipeline pinned.
"""

import json
import os

import pytest

from repro.core.harness import Chipmunk, ChipmunkConfig
from repro.core.report import BugReport
from repro.forensics.explain import load_report_dicts
from repro.forensics.replay import rebuild_session
from repro.forensics.timeline import render_timeline
from repro.fs.nova.fs import NovaFS
from repro.pm.device import PMDevice
from repro.workloads.ops import Op

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

SEQ2 = [Op("creat", ("/foo",)), Op("creat", ("/foo",))]


@pytest.fixture(scope="module")
def memoized_bugs_json(tmp_path_factory):
    """A ``bugs.json`` written from a memoize-on run (the default)."""
    config = ChipmunkConfig(memoize=True)
    result = Chipmunk("nova", config=config).test_workload(SEQ2)
    assert result.memo_hits > 0, "fixture must actually exercise the memo"
    report = next(r for r in result.reports if r.provenance.dropped())
    path = tmp_path_factory.mktemp("memoized") / "bugs.json"
    path.write_text(json.dumps({"reports": [report.to_dict()]}, sort_keys=True))
    return str(path)


class TestMemoizedExplainGolden:
    def test_timeline_matches_pre_memoization_golden(self, memoized_bugs_json):
        report = BugReport.from_dict(load_report_dicts(memoized_bugs_json)[0])
        prov = report.provenance
        culprits = [e.seq for e in prov.dropped()][:1]
        dev = PMDevice(prov.device_size)
        NovaFS.mkfs(dev)
        layout = NovaFS.layout_map(dev.snapshot())
        text = render_timeline(prov, layout, culprits) + "\n"
        with open(os.path.join(GOLDEN_DIR, "timeline_nova_seq2.txt"),
                  encoding="utf-8") as fh:
            assert text == fh.read()

    def test_offline_replay_reproduces_from_memoized_report(
        self, memoized_bugs_json
    ):
        report = BugReport.from_dict(load_report_dicts(memoized_bugs_json)[0])
        session = rebuild_session(report.provenance)
        outcome = {r.consequence.name for r in session.original_reports()}
        assert report.consequence.name in outcome

    def test_rematerialized_state_byte_identical(self, memoized_bugs_json):
        """The offline CrashImage must materialize to the same bytes as the
        state the memoized run checked (pinned via the provenance's
        replayed positions)."""
        report = BugReport.from_dict(load_report_dicts(memoized_bugs_json)[0])
        session = rebuild_session(report.provenance)
        state = session.original_state()
        assert state.replayed_entries == report.provenance.replayed_entries
        # Rebuilding twice yields byte-identical images and equal digests.
        again = rebuild_session(report.provenance).original_state()
        assert bytes(state.image) == bytes(again.image)
        assert state.image.digest() == again.image.digest()
