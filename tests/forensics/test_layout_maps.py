"""Real layout maps for splitfs and ext4-dax — golden-pinned timelines.

Same regime as ``test_timeline.py``: recording is deterministic, so the
layout-annotated timelines are byte-stable and pinned under
``tests/forensics/golden/``.  Regenerate with::

    REGEN_GOLDENS=1 python -m pytest tests/forensics/test_layout_maps.py
"""

import os

import pytest

from repro.core.harness import Chipmunk
from repro.core.replayer import enumerate_crash_states
from repro.forensics.provenance import capture_provenance
from repro.forensics.timeline import render_timeline
from repro.fs.ext4dax.fs import Ext4DaxFS
from repro.fs.splitfs.fs import SplitFS
from repro.pm.device import PMDevice
from repro.workloads import ace
from repro.workloads.ops import Op

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def assert_matches_golden(name: str, text: str) -> None:
    path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("REGEN_GOLDENS"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    with open(path, "r", encoding="utf-8") as fh:
        golden = fh.read()
    assert text == golden, f"{name} drifted from its golden; see module docstring"


def fresh_layout(fs_class, device_size):
    device = PMDevice(device_size)
    fs_class.mkfs(device)
    return fs_class.layout_map(device.snapshot())


class TestSplitfsLayoutMap:
    def test_regions_cover_both_components(self):
        layout = fresh_layout(SplitFS, 256 * 1024)
        names = [r.name for r in layout.regions]
        assert names[:3] == ["superblock", "oplog", "staging"]
        assert "kernel.superblock" in names
        assert "kernel.journal" in names
        assert "kernel.data" in names

    def test_oplog_entries_are_slotted(self):
        layout = fresh_layout(SplitFS, 256 * 1024)
        oplog = next(r for r in layout.regions if r.name == "oplog")
        # Second op-log entry, a few bytes in.
        addr = oplog.region.offset + oplog.slot_size + 8
        assert layout.locate(addr) == "oplog[1]+0x8"
        assert layout.region_of(addr) == "oplog"

    def test_corrupt_superblock_falls_back(self):
        layout = SplitFS.layout_map(b"\x00" * 4096)
        assert [r.name for r in layout.regions] == ["device"]

    def test_torn_kernel_superblock_keeps_usplit_regions(self):
        device = PMDevice(256 * 1024)
        fs = SplitFS.mkfs(device)
        image = bytearray(device.snapshot())
        korigin = fs.geom.kernel_origin
        image[korigin : korigin + 8] = b"\x00" * 8  # tear K-Split's sb only
        layout = SplitFS.layout_map(bytes(image))
        names = [r.name for r in layout.regions]
        assert names == ["superblock", "oplog", "staging", "kernel"]

    def test_timeline_matches_golden(self):
        w = ace.workload_at(2, 1)  # creat('/foo'); creat('/bar')
        result = Chipmunk("splitfs").test_workload(w.core, setup=w.setup)
        report = next(r for r in result.reports if r.provenance.dropped())
        prov = report.provenance
        layout = fresh_layout(SplitFS, prov.device_size)
        culprits = [e.seq for e in prov.dropped()][:1]
        text = render_timeline(prov, layout, culprits)
        assert "oplog[" in text
        assert_matches_golden("timeline_splitfs_seq2.txt", text + "\n")


class TestExt4DaxLayoutMap:
    def test_region_names_and_slots(self):
        layout = fresh_layout(Ext4DaxFS, 256 * 1024)
        names = [r.name for r in layout.regions]
        assert names == [
            "superblock", "journal", "inode_table", "xattr_area",
            "bitmap", "data",
        ]
        inode_table = next(
            r for r in layout.regions if r.name == "inode_table"
        )
        addr = inode_table.region.offset + 64 + 4
        assert layout.locate(addr) == "inode_table[1]+0x4"

    def test_regions_tile_the_device(self):
        layout = fresh_layout(Ext4DaxFS, 256 * 1024)
        cursor = 0
        for named in layout.regions:
            assert named.region.offset == cursor
            cursor = named.region.end
        assert cursor == 256 * 1024

    def test_corrupt_superblock_falls_back(self):
        layout = Ext4DaxFS.layout_map(b"\xff" * 4096)
        assert [r.name for r in layout.regions] == ["device"]

    def test_timeline_matches_golden(self):
        # ext4-DAX has no crash-consistency bugs (the paper found none), so
        # no checker report carries provenance; capture the lineage of a
        # post-fsync crash state directly from the recorded log.
        workload = [
            Op("creat", ("/foo",)),
            Op("write", ("/foo", 0, 65, 64)),
            Op("fsync", ("/foo",)),
        ]
        chip = Chipmunk("ext4-dax")
        base, log, errnos = chip.record(workload)
        assert errnos == [None, None, None]
        states = list(enumerate_crash_states(base, log, cap=2))
        state = next(
            s for s in states
            if s.kind == "subset" and s.replayed_entries
        )
        prov = capture_provenance(
            log, state, fs_name="ext4-dax", workload=workload
        )
        layout = Ext4DaxFS.layout_map(base)
        text = render_timeline(prov, layout)
        assert "journal" in text
        assert_matches_golden("timeline_ext4dax_fsync.txt", text + "\n")
