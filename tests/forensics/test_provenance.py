"""Provenance capture: tagging, memoization, and the JSON round-trip."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.harness import Chipmunk
from repro.forensics.provenance import (
    DROPPED,
    PAYLOAD_CAP,
    DURABLE,
    REPLAYED,
    CrashProvenance,
    ProvEntry,
    ProvenanceRecorder,
    capture_provenance,
)
from repro.pm.log import PMLog
from repro.workloads.ops import Op

SEQ2 = [Op("creat", ("/foo",)), Op("creat", ("/foo",))]


def failing_reports(fs="nova", workload=SEQ2, setup=()):
    return Chipmunk(fs).test_workload(workload, setup=setup).reports


class TestCapture:
    def test_every_report_carries_provenance(self):
        reports = failing_reports()
        assert reports
        assert all(r.provenance is not None for r in reports)

    def test_store_fates_partition_the_log(self):
        prov = failing_reports()[0].provenance
        stores = prov.stores()
        assert stores
        assert all(e.status in (DURABLE, REPLAYED, DROPPED) for e in stores)
        counts = prov.counts()
        assert sum(counts.values()) == len(stores)

    def test_replayed_matches_state_identity(self):
        for report in failing_reports():
            prov = report.provenance
            n_replayed = sum(1 for e in prov.stores() if e.status == REPLAYED)
            assert n_replayed == len(prov.replayed_entries)

    def test_crash_region_is_last_epoch(self):
        prov = failing_reports()[0].provenance
        region = [e for e in prov.crash_region() if e.kind in ("store", "flush")]
        assert all(e.status in (REPLAYED, DROPPED) for e in region)
        durable = [e for e in prov.stores() if e.status == DURABLE]
        assert all(e.epoch < prov.fence_index for e in durable)

    def test_epochs_increment_at_fences(self):
        prov = failing_reports()[0].provenance
        epoch = 0
        for entry in prov.entries:
            assert entry.epoch == epoch
            if entry.kind == "fence":
                epoch += 1

    def test_syscall_markers_carry_labels(self):
        prov = failing_reports()[0].provenance
        begins = [e for e in prov.entries if e.kind == "syscall_begin"]
        assert begins and all("creat" in e.label for e in begins)

    def test_repro_context_recorded(self):
        prov = failing_reports()[0].provenance
        assert prov.fs_name == "nova"
        assert prov.workload == (("creat", ("/foo",)), ("creat", ("/foo",)))
        assert prov.bug_ids  # the default config injects NOVA's bugs

    def test_disabled_by_config(self):
        from repro.core.harness import ChipmunkConfig

        result = Chipmunk("nova", config=ChipmunkConfig(forensics=False)) \
            .test_workload(SEQ2)
        assert result.reports
        assert all(r.provenance is None for r in result.reports)


class TestRecorderMemoization:
    def test_same_state_captured_once(self):
        log = PMLog()
        log.syscall_begin(0, "creat", "'/f'")
        log.nt_store(0, b"x" * 16, "f")
        log.fence("b")
        log.syscall_end()

        class FakeState:
            log_pos = 3
            replayed_entries = ()
            fence_index = 1
            mid_syscall = True
            syscall = 0
            syscall_name = "creat"
            after_syscall = -1
            kind = "subset"

        recorder = ProvenanceRecorder(log, fs_name="nova")
        a = recorder.for_state(FakeState())
        b = recorder.for_state(FakeState())
        assert a is b


def roundtrip(prov: CrashProvenance) -> CrashProvenance:
    return CrashProvenance.from_dict(json.loads(json.dumps(prov.to_dict())))


class TestRoundTrip:
    def test_engine_emitted_provenance_roundtrips(self):
        for report in failing_reports():
            assert roundtrip(report.provenance) == report.provenance

    @given(
        seq=st.integers(0, 10_000),
        kind=st.sampled_from(["store", "flush", "fence", "syscall_begin"]),
        status=st.sampled_from([DURABLE, REPLAYED, DROPPED, "fence", "marker"]),
        epoch=st.integers(0, 500),
        func=st.text(max_size=30),
        addr=st.integers(-1, 2**31),
        length=st.integers(0, 4096),
        syscall=st.none() | st.integers(0, 50),
        label=st.text(max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_prov_entry_roundtrips(self, **fields):
        entry = ProvEntry(**fields)
        data = json.loads(json.dumps(entry.to_dict()))
        assert ProvEntry.from_dict(data) == entry


class TestCaptureFunction:
    def test_prefix_only(self):
        log = PMLog()
        log.nt_store(0, b"a" * 8, "w")
        log.fence("b")
        log.nt_store(8, b"b" * 8, "w")  # beyond the crash point

        class S:
            log_pos = 2
            replayed_entries = ()
            fence_index = 1
            mid_syscall = False
            syscall = None
            syscall_name = None
            after_syscall = -1
            kind = "subset"

        prov = capture_provenance(log, S(), fs_name="x")
        assert len(prov.entries) == 2
        assert [e.kind for e in prov.entries] == ["store", "fence"]
        assert prov.entries[0].status == DURABLE


class TestPayloadBudget:
    """Payload capture is bounded: a data-heavy campaign's ``bugs.json``
    stays within a fixed size budget.

    ACE seq-2 index 9 writes two 1 KiB extents; unbounded payloads would
    serialize every written byte into every report's lineage (~85 KB here,
    growing linearly with write sizes).  The :data:`PAYLOAD_CAP` prefix
    keeps the whole report set under 64 KiB while still carrying enough
    bytes to identify torn content.
    """

    BUDGET = 64 * 1024

    @classmethod
    def setup_class(cls):
        from repro.workloads import ace

        w = ace.workload_at(2, 9)  # ...; write('/bar', 0, 66, 1024)
        cls.reports = Chipmunk("nova").test_workload(
            w.core, setup=w.setup
        ).reports

    def test_bugs_json_stays_under_budget(self):
        blob = json.dumps(
            {"reports": [r.to_dict() for r in self.reports]}, sort_keys=True
        )
        assert self.reports, "data-heavy campaign found no reports"
        assert len(blob) <= self.BUDGET

    def test_large_stores_are_truncated_with_marker(self):
        truncated = [
            e
            for r in self.reports
            for e in r.provenance.entries
            if e.payload_truncated
        ]
        assert truncated, "1 KiB writes should exceed PAYLOAD_CAP"
        for entry in truncated:
            assert len(entry.payload) == 2 * PAYLOAD_CAP  # hex digits
            assert entry.length > PAYLOAD_CAP

    def test_small_stores_keep_full_payload(self):
        small = [
            e
            for r in self.reports
            for e in r.provenance.entries
            if e.kind == "store" and not e.payload_truncated
        ]
        assert small
        for entry in small:
            assert len(entry.payload) == 2 * entry.length

    def test_truncation_survives_the_roundtrip(self):
        entry = next(
            e
            for r in self.reports
            for e in r.provenance.entries
            if e.payload_truncated
        )
        data = json.loads(json.dumps(entry.to_dict()))
        restored = ProvEntry.from_dict(data)
        assert restored.payload == entry.payload
        assert restored.payload_truncated is True
