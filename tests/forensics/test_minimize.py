"""Store-set minimization: ddmin properties and end-to-end replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.harness import Chipmunk
from repro.forensics.minimize import DEFAULT_BUDGET, ddmin, minimize_dropped_set
from repro.forensics.replay import outcome_of, rebuild_session
from repro.workloads import ace

#: ACE seq-2 workload 9 on NOVA: ``creat('/foo'); write('/bar', ...)``.
#: Its UNMOUNTABLE crash states drop two write units of which exactly one
#: is the culprit — a non-trivial reduction.
NOVA_ACE_INDEX = 9


def nova_unmountable_report():
    w = ace.workload_at(2, NOVA_ACE_INDEX)
    result = Chipmunk("nova").test_workload(w.core, setup=w.setup)
    for report in result.reports:
        if (report.consequence.name == "UNMOUNTABLE"
                and len(report.provenance.dropped()) >= 2):
            return report
    pytest.fail("expected an UNMOUNTABLE report with >= 2 dropped stores")


class TestDdmin:
    def test_single_culprit_found(self):
        minimal, n, exhausted = ddmin(list(range(8)), lambda c: 3 in c)
        assert minimal == [3]
        assert not exhausted

    def test_pair_of_culprits(self):
        minimal, _, _ = ddmin(list(range(10)), lambda c: 2 in c and 7 in c)
        assert sorted(minimal) == [2, 7]

    def test_empty_when_predicate_holds_vacuously(self):
        minimal, n, _ = ddmin([1, 2, 3], lambda c: True)
        assert minimal == []
        assert n == 1

    def test_budget_returns_best_so_far(self):
        minimal, n, exhausted = ddmin(
            list(range(64)), lambda c: 5 in c, budget=3
        )
        assert exhausted
        assert n == 3
        assert 5 in minimal  # still a failing set, just not 1-minimal

    @given(
        n=st.integers(2, 24),
        culprits=st.sets(st.integers(0, 23), min_size=1, max_size=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_result_is_failing_subset(self, n, culprits):
        items = list(range(n))
        culprits = {c for c in culprits if c < n} or {0}

        def test_fn(candidate):
            return culprits <= set(candidate)

        minimal, _, exhausted = ddmin(items, test_fn, budget=DEFAULT_BUDGET * 4)
        assert set(minimal) <= set(items)
        assert test_fn(minimal)  # the returned set still fails
        if not exhausted:
            assert set(minimal) == culprits  # monotone predicate: exact


class TestMinimizeDroppedSet:
    @pytest.fixture(scope="class")
    def session_and_report(self):
        report = nova_unmountable_report()
        return rebuild_session(report.provenance), report

    def test_minimal_subset_of_original(self, session_and_report):
        session, report = session_and_report
        result = minimize_dropped_set(session, report.consequence.name)
        assert result.reproduced
        assert set(result.minimal_dropped) <= set(result.original_dropped)

    def test_reduction_is_nontrivial_and_reproduces(self, session_and_report):
        session, report = session_and_report
        target = report.consequence.name
        result = minimize_dropped_set(session, target)
        assert 0 < len(result.minimal_dropped) < len(result.original_dropped)
        assert result.culprit_seqs
        # Re-replay the minimized state: dropping only the minimal set
        # (persisting everything else) must trip the same checker outcome.
        persisted = [
            i for i in range(len(session.region.units))
            if i not in set(result.minimal_dropped)
        ]
        assert target in outcome_of(session.check_units(persisted))

    def test_culprit_seqs_are_dropped_stores(self, session_and_report):
        session, report = session_and_report
        result = minimize_dropped_set(session, report.consequence.name)
        region_seqs = {
            e.seq for e in report.provenance.crash_region()
            if e.kind in ("store", "flush")
        }
        assert set(result.culprit_seqs) <= region_seqs

    def test_budget_exhaustion_flagged(self, session_and_report):
        session, report = session_and_report
        result = minimize_dropped_set(session, report.consequence.name, budget=1)
        assert result.budget_exhausted
        assert result.reproduced

    def test_missing_flush_bug_yields_empty_culprit_set(self):
        # NOVA bug 2 never issues the inode flush at all: no dropped store
        # explains the failure, so the minimal set is empty — itself a
        # diagnosis (the persist is absent from the log).
        from repro.workloads.ops import Op

        result = Chipmunk("nova").test_workload(
            [Op("creat", ("/foo",)), Op("creat", ("/foo",))]
        )
        report = next(r for r in result.reports if r.provenance.dropped())
        session = rebuild_session(report.provenance)
        m = minimize_dropped_set(session, report.consequence.name)
        assert m.reproduced
        assert m.minimal_dropped == ()
        assert "0 of" in m.describe()
