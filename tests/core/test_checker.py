"""Consistency checker semantics on hand-crafted crash states."""

import pytest

from conftest import TEST_DEVICE_SIZE
from repro.core.checker import ConsistencyChecker
from repro.core.oracle import run_oracle
from repro.core.replayer import CrashState
from repro.core.report import Consequence
from repro.fs.bugs import BugConfig
from repro.fs.registry import fs_class
from repro.pm.device import PMDevice
from repro.workloads.ops import Op, execute_op

NOVA = fs_class("nova")
PMFS = fs_class("pmfs")
FIXED = BugConfig.fixed()


def build(fs_cls, workload, upto=None):
    """Run ``workload[:upto]`` on a fresh instance, return its image."""
    device = PMDevice(TEST_DEVICE_SIZE)
    fs = fs_cls.mkfs(device, bugs=FIXED)
    for op in (workload if upto is None else workload[:upto]):
        execute_op(fs, op)
    return device.snapshot()


def checker_for(fs_cls, workload):
    oracle = run_oracle(fs_cls, workload, TEST_DEVICE_SIZE, bugs=FIXED)
    return ConsistencyChecker(fs_cls, oracle, "test-workload", bugs=FIXED)


def state(image, syscall=None, name=None, mid=False, after=-1, n=0):
    return CrashState(
        image=image,
        fence_index=0,
        syscall=syscall,
        syscall_name=name,
        mid_syscall=mid,
        after_syscall=after,
        subset_desc=("<test>",),
        n_replayed=n,
    )


WORKLOAD = [Op("creat", ("/f",)), Op("write", ("/f", 0, 0x41, 512))]


class TestMountCheck:
    def test_unmountable_image_reported(self):
        checker = checker_for(NOVA, WORKLOAD)
        garbage = b"\xff" * TEST_DEVICE_SIZE
        reports = checker.check(state(garbage))
        assert len(reports) == 1
        assert reports[0].consequence is Consequence.UNMOUNTABLE


class TestSynchrony:
    def test_post_state_matching_oracle_is_clean(self):
        checker = checker_for(NOVA, WORKLOAD)
        image = build(NOVA, WORKLOAD, upto=1)
        assert checker.check(state(image, after=0)) == []

    def test_lost_syscall_reported(self):
        """A post-syscall state still showing the pre-state violates
        synchrony."""
        checker = checker_for(NOVA, WORKLOAD)
        image = build(NOVA, WORKLOAD, upto=0)  # /f never created
        reports = checker.check(state(image, after=0))
        assert reports
        assert reports[0].consequence is Consequence.SYNCHRONY

    def test_final_state_checked(self):
        checker = checker_for(NOVA, WORKLOAD)
        image = build(NOVA, WORKLOAD)
        assert checker.check(state(image, after=1)) == []


class TestAtomicity:
    def test_pre_state_accepted_mid_syscall(self):
        checker = checker_for(NOVA, WORKLOAD)
        image = build(NOVA, WORKLOAD, upto=1)
        assert checker.check(state(image, syscall=1, name="write", mid=True, after=0)) == []

    def test_post_state_accepted_mid_syscall(self):
        checker = checker_for(NOVA, WORKLOAD)
        image = build(NOVA, WORKLOAD, upto=2)
        assert checker.check(state(image, syscall=1, name="write", mid=True, after=0)) == []

    def test_intermediate_state_rejected_for_atomic_fs(self):
        """NOVA writes are atomic: a half-written file is a violation."""
        checker = checker_for(NOVA, WORKLOAD)
        half = [Op("creat", ("/f",)), Op("write", ("/f", 0, 0x41, 256))]
        image = build(NOVA, half)
        reports = checker.check(state(image, syscall=1, name="write", mid=True, after=0))
        assert reports
        assert reports[0].consequence in (Consequence.ATOMICITY, Consequence.DATA_LOSS)

    def test_torn_write_allowed_for_non_atomic_fs(self):
        """PMFS write is not atomic: torn *content* inside the envelope
        passes (metadata is journaled, so the size is old or new)."""
        workload = [
            Op("creat", ("/f",)),
            Op("write", ("/f", 0, 0x41, 512)),
            Op("write", ("/f", 0, 0x42, 512)),
        ]
        checker = checker_for(PMFS, workload)
        torn = [
            Op("creat", ("/f",)),
            Op("write", ("/f", 0, 0x41, 512)),
            Op("write", ("/f", 0, 0x42, 256)),  # only half the new data hit PM
        ]
        image = build(PMFS, torn)
        assert checker.check(state(image, syscall=2, name="write", mid=True, after=1)) == []

    def test_torn_size_rejected_even_for_non_atomic_fs(self):
        """The file size is journaled on PMFS: a torn size is a violation."""
        checker = checker_for(PMFS, WORKLOAD)
        half = [Op("creat", ("/f",)), Op("write", ("/f", 0, 0x41, 256))]
        image = build(PMFS, half)
        reports = checker.check(state(image, syscall=1, name="write", mid=True, after=0))
        assert reports

    def test_torn_rename_rejected_even_for_non_atomic_fs(self):
        """The write envelope applies only to data ops, never rename."""
        workload = [Op("creat", ("/f",)), Op("rename", ("/f", "/g"))]
        checker = checker_for(PMFS, workload)
        # State with *neither* name: created then unlinked.
        other = [Op("creat", ("/f",)), Op("unlink", ("/f",))]
        image = build(PMFS, other)
        reports = checker.check(state(image, syscall=1, name="rename", mid=True, after=0))
        assert reports
        assert reports[0].consequence is Consequence.ATOMICITY
        assert "rename atomicity broken" in reports[0].detail

    def test_failed_syscall_must_not_mutate(self):
        workload = [Op("creat", ("/f",)), Op("creat", ("/f",))]
        checker = checker_for(NOVA, workload)
        image = build(NOVA, workload, upto=1)
        assert checker.check(state(image, syscall=1, name="creat", mid=True, after=0)) == []

    def test_rename_old_still_present_classified(self):
        workload = [Op("creat", ("/f",)), Op("rename", ("/f", "/g"))]
        checker = checker_for(NOVA, workload)
        both = [Op("creat", ("/f",)), Op("link", ("/f", "/g"))]
        image = build(NOVA, both)
        reports = checker.check(state(image, syscall=1, name="rename", mid=True, after=0))
        assert reports
        assert "still present" in reports[0].detail


class TestUsability:
    def test_clean_state_usable(self):
        checker = checker_for(NOVA, WORKLOAD)
        image = build(NOVA, WORKLOAD)
        reports = checker.check(state(image, after=1))
        assert reports == []

    def test_usability_check_mutations_do_not_leak(self):
        """Checking the same image twice gives identical results (fresh
        device copy per check — the undo-log equivalent)."""
        checker = checker_for(NOVA, WORKLOAD)
        image = build(NOVA, WORKLOAD)
        first = checker.check(state(image, after=1))
        second = checker.check(state(image, after=1))
        assert first == second == []


class TestWeakMode:
    def test_weak_fs_checked_against_post_state(self):
        EXT4 = fs_class("ext4-dax")
        workload = [Op("creat", ("/f",)), Op("fsync", ("/f",))]
        oracle = run_oracle(EXT4, workload, TEST_DEVICE_SIZE, bugs=FIXED)
        checker = ConsistencyChecker(EXT4, oracle, "w", bugs=FIXED)
        image = build(EXT4, workload)
        assert checker.check(state(image, after=1)) == []
