"""Vinter-style recovery-read heuristic (extension, paper section 6.2)."""

import pytest

from conftest import TEST_DEVICE_SIZE, make_fixed_fs
from repro.core.recovery_reads import (
    OverlayReadTrackingDevice,
    ReadTrackingDevice,
    rank_units,
    recovery_read_set,
    write_overlap,
)
from repro.fs.bugs import BugConfig
from repro.fs.nova.fs import NovaFS
from repro.pm.log import NTStore


class TestReadTrackingDevice:
    def test_reads_recorded(self):
        dev = ReadTrackingDevice(1024)
        dev.read(100, 8)
        dev.read(500, 64)
        assert dev.read_ranges == [(100, 8), (500, 64)]

    def test_zero_length_ignored(self):
        dev = ReadTrackingDevice(1024)
        dev.read(0, 0)
        assert dev.read_ranges == []

    def test_from_snapshot(self):
        dev = ReadTrackingDevice(1024)
        dev.write(7, b"data")
        clone = ReadTrackingDevice.from_snapshot(dev.snapshot())
        assert clone.read(7, 4) == b"data"
        assert clone.read_ranges == [(7, 4)]


class TestOverlayReadTrackingDevice:
    def test_reads_through_overlay(self):
        base = bytes(8192)
        dev = OverlayReadTrackingDevice(base, [(100, b"abcd"), (102, b"XY")])
        assert dev.read(100, 4) == b"abXY"  # later writes win, in log order
        assert dev.read_ranges == [(100, 4)]

    def test_base_never_mutated(self):
        base = bytes(8192)
        dev = OverlayReadTrackingDevice(base, [(0, b"hello")])
        dev.write(4096, b"recovery-write")
        assert dev.read(4096, 14) == b"recovery-write"
        assert base == bytes(8192)

    def test_cross_chunk_read(self):
        chunk = OverlayReadTrackingDevice.CHUNK
        data = b"Z" * 16
        dev = OverlayReadTrackingDevice(bytes(4 * chunk), [(chunk - 8, data)])
        assert dev.read(chunk - 8, 16) == data
        assert dev.read(0, 2 * chunk) == bytes(chunk - 8) + data + bytes(chunk - 8)

    def test_mount_writes_visible_to_later_reads(self):
        dev = OverlayReadTrackingDevice(bytes(8192))
        dev.write(64, b"\x01" * 8)
        assert dev.read(64, 8) == b"\x01" * 8

    def test_snapshot_matches_flat_application(self):
        chunk = OverlayReadTrackingDevice.CHUNK
        base = bytes(range(256)) * (2 * chunk // 256)
        writes = [(10, b"aa"), (chunk - 1, b"bb"), (chunk + 5, b"c" * 70)]
        flat = bytearray(base)
        for addr, data in writes:
            flat[addr : addr + len(data)] = data
        dev = OverlayReadTrackingDevice(base, writes)
        dev.read(0, 16)  # materialize one chunk, leave the other pending
        assert dev.snapshot() == bytes(flat)

    def test_matches_flat_device_read_set(self):
        fs = make_fixed_fs("nova")
        base = fs.device.snapshot()
        fs.creat("/f")
        fs.write("/f", 0, b"x" * 512)
        final = fs.device.snapshot()
        overlay = []
        for off in range(0, len(base), 64):
            if final[off : off + 64] != base[off : off + 64]:
                overlay.append((off, final[off : off + 64]))
        flat = recovery_read_set(NovaFS, final, bugs=BugConfig.fixed())
        lazy = recovery_read_set(
            NovaFS, base, bugs=BugConfig.fixed(), writes=overlay
        )
        assert flat == lazy


class TestRecoveryReadSet:
    def test_mount_reads_metadata_regions(self):
        fs = make_fixed_fs("nova")
        fs.creat("/f")
        fs.write("/f", 0, b"x" * 512)
        lines = recovery_read_set(NovaFS, fs.device.snapshot(), bugs=BugConfig.fixed())
        assert lines
        # Recovery reads the inode table...
        table = fs.geom.inode_table
        assert any(table.offset // 64 <= line < table.end // 64 for line in lines)
        # ...but not the file's data blocks (NOVA rebuilds metadata only).
        data_block = next(iter(fs.inodes[fs.inodes[0].children["f"]].blockmap.values()))
        data_line = fs.geom.block_addr(data_block) // 64
        assert data_line not in lines

    def test_failed_mount_still_yields_reads(self):
        lines = recovery_read_set(NovaFS, bytes(TEST_DEVICE_SIZE))
        assert lines  # at least the superblock read


class TestRanking:
    def _unit(self, addr, length=8):
        return [NTStore(addr, b"\x01" * length, "f", 0)]

    def test_overlap_counts_lines(self):
        entry = NTStore(0, b"\x01" * 130, "f", 0)
        assert write_overlap(entry, {0, 1, 2}) == 3
        assert write_overlap(entry, {1}) == 1
        assert write_overlap(entry, set()) == 0

    def test_recovery_visible_units_first(self):
        cold, hot = self._unit(4096), self._unit(0)
        ranked = rank_units([cold, hot], read_lines={0})
        assert ranked[0] is hot

    def test_stable_for_equal_scores(self):
        a, b = self._unit(4096), self._unit(8192)
        assert rank_units([a, b], read_lines=set()) == [a, b]


class TestReplayerIntegration:
    def test_ranker_changes_order_not_results(self):
        """With and without the ranker, the same set of crash-state images
        is produced — only the order differs."""
        from repro.core.harness import Chipmunk
        from repro.core.replayer import enumerate_crash_states
        from repro.workloads.ops import Op

        cm = Chipmunk("nova", bugs=BugConfig.fixed())
        base, log, _ = cm.record(
            [Op("creat", ("/f",)), Op("write", ("/f", 0, 0x41, 512))]
        )

        def reverse_ranker(units):
            return list(reversed(units))

        plain = [s.image for s in enumerate_crash_states(base, log, cap=None)]
        ranked = [
            s.image
            for s in enumerate_crash_states(
                base, log, cap=None, unit_ranker=reverse_ranker
            )
        ]
        assert sorted(plain) == sorted(ranked)

    def test_heuristic_end_to_end(self):
        """Using the recovery-read ranker still detects a real bug."""
        from repro.core.checker import ConsistencyChecker
        from repro.core.harness import Chipmunk
        from repro.core.oracle import run_oracle
        from repro.core.replayer import enumerate_crash_states
        from repro.workloads.ops import Op

        bugs = BugConfig.only(5)
        cm = Chipmunk("nova", bugs=bugs)
        workload = [Op("creat", ("/f",)), Op("rename", ("/f", "/g"))]
        base, log, _ = cm.record(workload)
        read_lines = recovery_read_set(NovaFS, base, bugs=bugs)
        oracle = run_oracle(NovaFS, workload, cm.config.device_size, bugs=bugs)
        checker = ConsistencyChecker(NovaFS, oracle, "w", bugs=bugs)
        found = False
        for state in enumerate_crash_states(
            base, log, cap=2, unit_ranker=lambda u: rank_units(u, read_lines)
        ):
            if checker.check(state):
                found = True
                break
        assert found
